//! A lightweight structural parse of one lexed file: function extents
//! (with test-ness and impl qualification), struct field types, and
//! expression-level queries (method calls, path calls, `let` bindings,
//! `for` loops) over token ranges.
//!
//! This is not a full Rust parser — it tracks exactly the structure the
//! audit passes need and degrades gracefully (by finding nothing) on
//! constructs it does not model.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::lex::{Lexed, Tok, Token};

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct Func {
    /// The bare function name.
    pub name: String,
    /// `Type::name` for methods in `impl` blocks, else the bare name.
    pub qual: String,
    /// Whether the function (or an enclosing module/impl) is test-only.
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the parameter list (between the signature parens).
    pub params: Range<usize>,
    /// Token range of the body (between the body braces, exclusive).
    pub body: Range<usize>,
}

/// The parsed shape of one source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path, `/`-separated.
    pub path: String,
    /// The token stream and waivers.
    pub lexed: Lexed,
    /// Every function with a body, in source order.
    pub functions: Vec<Func>,
    /// Struct fields whose declared type mentions `HashMap`/`HashSet`.
    pub map_fields: BTreeSet<String>,
    /// Struct fields whose declared type mentions `Mutex`/`RwLock`.
    pub lock_fields: BTreeSet<String>,
    /// Struct fields whose declared type mentions `Condvar`.
    pub cv_fields: BTreeSet<String>,
    /// Struct field name → innermost declared type identifier (the last
    /// identifier of the type, so `sim: Arc<Sim>` maps `sim` to `Sim`).
    /// Used to resolve method calls like `self.sim.submit(..)` to
    /// `Sim::submit`.
    pub field_types: BTreeMap<String, String>,
}

impl SourceFile {
    /// Tokens of this file.
    pub fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }
}

/// Parses one file.
pub fn parse(path: &str, lexed: Lexed) -> SourceFile {
    let toks = lexed.tokens.clone();
    let mut functions: Vec<Func> = Vec::new();
    let mut map_fields = BTreeSet::new();
    let mut lock_fields = BTreeSet::new();
    let mut cv_fields = BTreeSet::new();
    let mut field_types = BTreeMap::new();

    // scope stack entries: (kind, test) — kind is the impl type name for
    // impl blocks, empty otherwise
    #[derive(Debug)]
    struct Scope {
        impl_type: Option<String>,
        test: bool,
        /// index into `functions` when this scope is a function body
        func: Option<usize>,
    }
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending_test = false;

    let mut i = 0;
    while i < toks.len() {
        match &toks[i].kind {
            Tok::Punct('#') if toks.get(i + 1).is_some_and(|t| t.kind.is_punct('[')) => {
                let close = match_bracket(&toks, i + 1, '[', ']');
                let attr = &toks[i + 2..close];
                if attr_is_test(attr) {
                    pending_test = true;
                }
                i = close + 1;
            }
            Tok::Punct('{') => {
                scopes.push(Scope {
                    impl_type: None,
                    test: scopes.iter().any(|s| s.test) || pending_test,
                    func: None,
                });
                pending_test = false;
                i += 1;
            }
            Tok::Punct('}') => {
                if let Some(sc) = scopes.pop() {
                    if let Some(fi) = sc.func {
                        functions[fi].body.end = i;
                    }
                }
                i += 1;
            }
            Tok::Ident(kw) if kw == "impl" => {
                // scan to the block open brace; the type is the last path
                // segment before `{` (after `for`, when present)
                let test = scopes.iter().any(|s| s.test) || pending_test;
                pending_test = false;
                let mut j = i + 1;
                let mut after_for: Option<usize> = None;
                while j < toks.len() && !toks[j].kind.is_punct('{') {
                    if toks[j].kind.is_ident("for") {
                        after_for = Some(j);
                    }
                    j += 1;
                }
                let seg_start = after_for.map_or(i + 1, |f| f + 1);
                let ty = last_type_ident(&toks[seg_start..j.min(toks.len())]);
                if j < toks.len() {
                    scopes.push(Scope {
                        impl_type: ty,
                        test,
                        func: None,
                    });
                    i = j + 1;
                } else {
                    i = j;
                }
            }
            Tok::Ident(kw) if kw == "struct" => {
                pending_test = false;
                // struct Name { field: Type, … } — collect field types
                if let Some(open) = toks[i..]
                    .iter()
                    .position(|t| {
                        t.kind.is_punct('{') || t.kind.is_punct(';') || t.kind.is_punct('(')
                    })
                    .map(|o| i + o)
                {
                    if toks[open].kind.is_punct('{') {
                        let close = match_bracket(&toks, open, '{', '}');
                        collect_fields(
                            &toks[open + 1..close],
                            &mut map_fields,
                            &mut lock_fields,
                            &mut cv_fields,
                            &mut field_types,
                        );
                        // fall through: the block is still walked normally so
                        // scope depth stays consistent
                    }
                }
                i += 1;
            }
            Tok::Ident(kw) if kw == "fn" => {
                let test = scopes.iter().any(|s| s.test) || pending_test;
                pending_test = false;
                let Some(Tok::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) else {
                    i += 1;
                    continue;
                };
                let name = name.clone();
                let line = toks[i].line;
                // parameter list: first `(` after the name (skipping generics)
                let mut j = i + 2;
                let mut angle = 0i32;
                while j < toks.len() {
                    match &toks[j].kind {
                        Tok::Punct('<') => angle += 1,
                        Tok::Punct('>') => angle -= 1,
                        Tok::Punct('(') if angle <= 0 => break,
                        Tok::Punct('{') | Tok::Punct(';') => break,
                        _ => {}
                    }
                    j += 1;
                }
                if j >= toks.len() || !toks[j].kind.is_punct('(') {
                    i += 1;
                    continue;
                }
                let params_close = match_bracket(&toks, j, '(', ')');
                let params = j + 1..params_close;
                // body: the next `{` before a `;` at this level
                let mut k = params_close + 1;
                let mut body_open = None;
                while k < toks.len() {
                    match &toks[k].kind {
                        Tok::Punct('{') => {
                            body_open = Some(k);
                            break;
                        }
                        Tok::Punct(';') => break,
                        _ => {}
                    }
                    k += 1;
                }
                let Some(open) = body_open else {
                    i = k.min(toks.len());
                    continue;
                };
                let impl_type = scopes.iter().rev().find_map(|s| s.impl_type.clone());
                let qual = match &impl_type {
                    Some(t) => format!("{t}::{name}"),
                    None => name.clone(),
                };
                functions.push(Func {
                    name,
                    qual,
                    is_test: test,
                    line,
                    params,
                    body: open + 1..open + 1, // end patched when the brace closes
                });
                scopes.push(Scope {
                    impl_type: None,
                    test,
                    func: Some(functions.len() - 1),
                });
                i = open + 1;
            }
            _ => i += 1,
        }
    }
    // unterminated function bodies (lexer confusion): close at EOF
    for f in &mut functions {
        if f.body.end < f.body.start {
            f.body.end = toks.len();
        }
    }

    SourceFile {
        path: path.to_string(),
        lexed,
        functions,
        map_fields,
        lock_fields,
        cv_fields,
        field_types,
    }
}

/// The impl type name: the last identifier outside generic args in
/// `impl Foo`, `impl foo::Bar<T>`, `impl Trait for Baz<'a>`.
fn last_type_ident(toks: &[Token]) -> Option<String> {
    let mut angle = 0i32;
    let mut last = None;
    for t in toks {
        match &t.kind {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Ident(s) if angle == 0 && !matches!(s.as_str(), "dyn" | "mut" | "const") => {
                last = Some(s.clone());
            }
            _ => {}
        }
    }
    last
}

/// Whether an attribute token slice marks test-only code:
/// `#[cfg(test)]`, `#[test]`, or `#[cfg(all(test, …))]` — but not
/// `#[cfg(not(test))]`.
fn attr_is_test(attr: &[Token]) -> bool {
    let ids: Vec<&str> = attr.iter().filter_map(|t| t.kind.ident()).collect();
    if ids == ["test"] {
        return true;
    }
    ids.first() == Some(&"cfg") && ids.contains(&"test") && !ids.contains(&"not")
}

/// Finds the matching close bracket for the opener at `open`.
fn match_bracket(toks: &[Token], open: usize, oc: char, cc: char) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].kind.is_punct(oc) {
            depth += 1;
        } else if toks[i].kind.is_punct(cc) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1).max(open)
}

/// Collects struct field names with map- or lock-typed declarations from
/// the tokens of a struct body.
fn collect_fields(
    body: &[Token],
    maps: &mut BTreeSet<String>,
    locks: &mut BTreeSet<String>,
    cvs: &mut BTreeSet<String>,
    types: &mut BTreeMap<String, String>,
) {
    // fields are `name : Type ,` at brace depth 0 within the body
    let mut depth = 0i32;
    let mut i = 0;
    while i < body.len() {
        match &body[i].kind {
            Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Ident(name)
                if depth == 0
                    && body.get(i + 1).is_some_and(|t| t.kind.is_punct(':'))
                    && !body.get(i + 2).is_some_and(|t| t.kind.is_punct(':')) =>
            {
                // type tokens: up to the next `,` at depth 0 (angle depth too)
                let mut j = i + 2;
                let mut angle = 0i32;
                let mut ty = Vec::new();
                while j < body.len() {
                    match &body[j].kind {
                        Tok::Punct('<') => angle += 1,
                        Tok::Punct('>') => angle -= 1,
                        Tok::Punct(',') if angle <= 0 => break,
                        Tok::Ident(t) => ty.push(t.as_str()),
                        _ => {}
                    }
                    j += 1;
                }
                if ty.iter().any(|t| *t == "HashMap" || *t == "HashSet") {
                    maps.insert(name.clone());
                }
                if ty.iter().any(|t| *t == "Mutex" || *t == "RwLock") {
                    locks.insert(name.clone());
                }
                if ty.contains(&"Condvar") {
                    cvs.insert(name.clone());
                }
                if let Some(last) = ty.last() {
                    types.insert(name.clone(), (*last).to_string());
                }
                i = j;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// expression-level queries over token ranges
// ---------------------------------------------------------------------------

/// One `recv.name(args)` method call (turbofish tolerated).
#[derive(Debug, Clone)]
pub struct MethodCall {
    /// The method name.
    pub name: String,
    /// Turbofish type arguments, as identifier list (empty without one).
    pub turbofish: Vec<String>,
    /// Token range of the receiver chain (best effort).
    pub recv: Range<usize>,
    /// Token range of the argument list (between the parens, exclusive).
    pub args: Range<usize>,
    /// 1-based line of the method name.
    pub line: u32,
}

impl MethodCall {
    /// The leftmost identifier of the receiver chain (the root variable),
    /// if the chain starts at a plain identifier.
    pub fn root<'t>(&self, toks: &'t [Token]) -> Option<&'t str> {
        toks[self.recv.clone()].first().and_then(|t| t.kind.ident())
    }

    /// The identifier immediately before the method's dot — the field (or
    /// variable) the method is invoked on, e.g. `status` in
    /// `self.status.lock()`.
    pub fn field<'t>(&self, toks: &'t [Token]) -> Option<&'t str> {
        toks[self.recv.clone()].last().and_then(|t| t.kind.ident())
    }

    /// Every identifier in the receiver chain.
    pub fn recv_idents<'t>(&self, toks: &'t [Token]) -> Vec<&'t str> {
        toks[self.recv.clone()]
            .iter()
            .filter_map(|t| t.kind.ident())
            .collect()
    }
}

/// One `a::b::f(args)` path call.
#[derive(Debug, Clone)]
pub struct PathCall {
    /// The `::`-separated path segments.
    pub path: Vec<String>,
    /// Token range of the argument list.
    pub args: Range<usize>,
    /// 1-based line of the final segment.
    pub line: u32,
}

impl PathCall {
    /// The path joined with `::`.
    pub fn joined(&self) -> String {
        self.path.join("::")
    }
}

/// One `let` binding.
#[derive(Debug, Clone)]
pub struct LetBinding {
    /// Identifiers bound by the pattern (tuple patterns bind several).
    pub names: Vec<String>,
    /// Token range of the type annotation (empty without one).
    pub ty: Range<usize>,
    /// Token range of the initializer (empty for `let x;`).
    pub init: Range<usize>,
    /// 1-based line of the `let`.
    pub line: u32,
}

/// One `for pat in expr { … }` loop.
#[derive(Debug, Clone)]
pub struct ForLoop {
    /// Identifiers bound by the loop pattern.
    pub names: Vec<String>,
    /// Token range of the iterated expression.
    pub iter: Range<usize>,
    /// Token range of the loop body (between braces, exclusive).
    pub body: Range<usize>,
    /// 1-based line of the `for`.
    pub line: u32,
}

/// Scans a token range for method calls: `.name(`, `.name::<T>(`.
pub fn method_calls(toks: &[Token], range: Range<usize>) -> Vec<MethodCall> {
    let mut out = Vec::new();
    let mut i = range.start;
    while i < range.end {
        if toks[i].kind.is_punct('.') {
            if let Some(Tok::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) {
                let mut j = i + 2;
                let mut turbofish = Vec::new();
                // `.name::<T>(…)`
                if toks.get(j).is_some_and(|t| t.kind.is_punct(':'))
                    && toks.get(j + 1).is_some_and(|t| t.kind.is_punct(':'))
                    && toks.get(j + 2).is_some_and(|t| t.kind.is_punct('<'))
                {
                    let mut angle = 0i32;
                    j += 2;
                    while j < toks.len() {
                        match &toks[j].kind {
                            Tok::Punct('<') => angle += 1,
                            Tok::Punct('>') => {
                                angle -= 1;
                                if angle == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            Tok::Ident(t) => turbofish.push(t.clone()),
                            _ => {}
                        }
                        j += 1;
                    }
                }
                if toks.get(j).is_some_and(|t| t.kind.is_punct('(')) {
                    let close = match_bracket(toks, j, '(', ')');
                    let recv_start = receiver_start(toks, i, range.start);
                    out.push(MethodCall {
                        name: name.clone(),
                        turbofish,
                        recv: recv_start..i,
                        args: j + 1..close,
                        line: toks[i + 1].line,
                    });
                }
            }
        }
        i += 1;
    }
    out
}

/// Walks backwards from the dot at `dot` to the start of the receiver's
/// postfix chain.
fn receiver_start(toks: &[Token], dot: usize, floor: usize) -> usize {
    let mut j = dot;
    loop {
        if j == floor {
            return j;
        }
        let prev = j - 1;
        match &toks[prev].kind {
            Tok::Ident(_) | Tok::Num(_) | Tok::Str | Tok::Punct('?') => {
                j = prev;
                // continue the chain through `.` or `::`
                if j > floor && toks[j - 1].kind.is_punct('.') {
                    j -= 1;
                } else if j + 1 > floor + 1
                    && j >= 2
                    && toks[j - 1].kind.is_punct(':')
                    && toks[j - 2].kind.is_punct(':')
                {
                    j -= 2;
                } else {
                    return j;
                }
            }
            Tok::Punct(')') => {
                // balance back to the opening paren, then keep walking the
                // chain (method call or call expression result)
                let mut depth = 0i32;
                let mut k = prev;
                loop {
                    match &toks[k].kind {
                        Tok::Punct(')') => depth += 1,
                        Tok::Punct('(') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if k == floor {
                        break;
                    }
                    k -= 1;
                }
                j = k;
            }
            Tok::Punct(']') => {
                let mut depth = 0i32;
                let mut k = prev;
                loop {
                    match &toks[k].kind {
                        Tok::Punct(']') => depth += 1,
                        Tok::Punct('[') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if k == floor {
                        break;
                    }
                    k -= 1;
                }
                j = k;
            }
            _ => return j,
        }
    }
}

/// Scans a token range for path calls: `a::b::f(`. Single-identifier
/// calls (`f(`) are included when the identifier is not a method name
/// (no preceding dot) and not a keyword-ish construct.
pub fn path_calls(toks: &[Token], range: Range<usize>) -> Vec<PathCall> {
    let mut out = Vec::new();
    let mut i = range.start;
    while i < range.end {
        if let Tok::Ident(first) = &toks[i].kind {
            let preceded_by_dot = i > 0 && toks[i - 1].kind.is_punct('.');
            let preceded_by_path =
                i >= 2 && toks[i - 1].kind.is_punct(':') && toks[i - 2].kind.is_punct(':');
            if preceded_by_dot || preceded_by_path {
                i += 1;
                continue;
            }
            if matches!(
                first.as_str(),
                "if" | "while" | "for" | "match" | "return" | "fn" | "let" | "loop" | "move"
            ) {
                i += 1;
                continue;
            }
            // accumulate path segments
            let mut path = vec![first.clone()];
            let mut j = i + 1;
            while j + 2 < range.end && toks[j].kind.is_punct(':') && toks[j + 1].kind.is_punct(':')
            {
                match &toks[j + 2].kind {
                    Tok::Ident(seg) => {
                        path.push(seg.clone());
                        j += 3;
                    }
                    Tok::Punct('<') => break, // turbofish on a path call
                    _ => break,
                }
            }
            if j < range.end && toks[j].kind.is_punct('(') {
                let close = match_bracket(toks, j, '(', ')');
                out.push(PathCall {
                    line: toks[j - 1].line,
                    path,
                    args: j + 1..close,
                });
                i = j + 1;
                continue;
            }
            i = j.max(i + 1);
            continue;
        }
        i += 1;
    }
    out
}

/// Scans a token range for `let` bindings.
pub fn lets(toks: &[Token], range: Range<usize>) -> Vec<LetBinding> {
    let mut out = Vec::new();
    let mut i = range.start;
    while i < range.end {
        if toks[i].kind.is_ident("let") {
            let line = toks[i].line;
            // pattern: up to `:` (annotation), `=` or `;` at depth 0
            let mut j = i + 1;
            let mut depth = 0i32;
            let mut names = Vec::new();
            let mut ty = 0..0;
            let mut init = 0..0;
            while j < range.end {
                match &toks[j].kind {
                    Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                    Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                    Tok::Punct(':') if depth == 0 => {
                        // annotation: up to `=` or `;` at depth 0 (angle-aware)
                        let ty_start = j + 1;
                        let mut angle = 0i32;
                        let mut k = ty_start;
                        while k < range.end {
                            match &toks[k].kind {
                                Tok::Punct('<') => angle += 1,
                                Tok::Punct('>') => angle -= 1,
                                Tok::Punct('=') if angle <= 0 => break,
                                Tok::Punct(';') if angle <= 0 => break,
                                _ => {}
                            }
                            k += 1;
                        }
                        ty = ty_start..k;
                        j = k;
                        continue;
                    }
                    Tok::Punct('=') if depth == 0 => {
                        // initializer: to `;` at depth 0
                        let init_start = j + 1;
                        let mut k = init_start;
                        let mut d2 = 0i32;
                        while k < range.end {
                            match &toks[k].kind {
                                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => d2 += 1,
                                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => d2 -= 1,
                                Tok::Punct(';') if d2 <= 0 => break,
                                _ => {}
                            }
                            k += 1;
                        }
                        init = init_start..k;
                        j = k;
                        break;
                    }
                    Tok::Punct(';') if depth == 0 => break,
                    Tok::Ident(id)
                        if !matches!(
                            id.as_str(),
                            "mut" | "ref" | "else" | "Some" | "Ok" | "Err"
                        ) =>
                    {
                        names.push(id.clone());
                    }
                    _ => {}
                }
                j += 1;
            }
            out.push(LetBinding {
                names,
                ty,
                init,
                line,
            });
            i = j;
        }
        i += 1;
    }
    out
}

/// Scans a token range for `for` loops.
pub fn for_loops(toks: &[Token], range: Range<usize>) -> Vec<ForLoop> {
    let mut out = Vec::new();
    let mut i = range.start;
    while i < range.end {
        if toks[i].kind.is_ident("for")
            && !(i > 0 && (toks[i - 1].kind.is_punct('<') || toks[i - 1].kind.is_ident("impl")))
        {
            let line = toks[i].line;
            // pattern until `in` at depth 0
            let mut j = i + 1;
            let mut depth = 0i32;
            let mut names = Vec::new();
            while j < range.end {
                match &toks[j].kind {
                    Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                    Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                    Tok::Ident(id) if id == "in" && depth == 0 => break,
                    Tok::Ident(id) if !matches!(id.as_str(), "mut" | "ref") => {
                        names.push(id.clone());
                    }
                    _ => {}
                }
                j += 1;
            }
            if j >= range.end {
                i += 1;
                continue;
            }
            // iterated expression until the body `{` at depth 0
            let iter_start = j + 1;
            let mut k = iter_start;
            let mut d2 = 0i32;
            while k < range.end {
                match &toks[k].kind {
                    Tok::Punct('(') | Tok::Punct('[') => d2 += 1,
                    Tok::Punct(')') | Tok::Punct(']') => d2 -= 1,
                    Tok::Punct('{') if d2 <= 0 => break,
                    _ => {}
                }
                k += 1;
            }
            if k >= range.end {
                i += 1;
                continue;
            }
            let close = match_bracket(toks, k, '{', '}');
            out.push(ForLoop {
                names,
                iter: iter_start..k,
                body: k + 1..close.min(range.end),
                line,
            });
            i = k + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// The identifiers present in a token range.
pub fn idents_in(toks: &[Token], range: Range<usize>) -> Vec<&str> {
    toks[range].iter().filter_map(|t| t.kind.ident()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn parse_src(src: &str) -> SourceFile {
        parse("test.rs", lex(src))
    }

    #[test]
    fn functions_modules_and_impls_are_qualified() {
        let src = "
            struct Foo { m: HashMap<String, u32>, st: Mutex<u8> }
            impl Foo {
                fn get(&self) -> u32 { 1 }
            }
            fn free() { }
            #[cfg(test)]
            mod tests {
                fn helper() {}
                #[test]
                fn t() {}
            }
        ";
        let sf = parse_src(src);
        let names: Vec<(&str, bool)> = sf
            .functions
            .iter()
            .map(|f| (f.qual.as_str(), f.is_test))
            .collect();
        assert_eq!(
            names,
            vec![
                ("Foo::get", false),
                ("free", false),
                ("helper", true),
                ("t", true)
            ]
        );
        assert!(sf.map_fields.contains("m"));
        assert!(sf.lock_fields.contains("st"));
    }

    #[test]
    fn method_calls_track_receivers_and_turbofish() {
        let sf = parse_src(
            "fn f(m: &HashMap<u32, u32>) { let s = m.values().sum::<f64>(); self.state.lock(); }",
        );
        let f = &sf.functions[0];
        let calls = method_calls(sf.tokens(), f.body.clone());
        let names: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["values", "sum", "lock"]);
        assert_eq!(calls[0].root(sf.tokens()), Some("m"));
        assert_eq!(calls[1].turbofish, vec!["f64"]);
        // receiver of .sum() is the whole m.values() chain, rooted at m
        assert_eq!(calls[1].root(sf.tokens()), Some("m"));
        assert_eq!(calls[2].field(sf.tokens()), Some("state"));
        assert_eq!(calls[2].root(sf.tokens()), Some("self"));
    }

    #[test]
    fn lets_and_for_loops_are_extracted() {
        let sf = parse_src(
            "fn f() {
                let mut keys: Vec<String> = m.keys().cloned().collect();
                for (k, v) in map.iter() { use_it(k, v); }
            }",
        );
        let f = &sf.functions[0];
        let ls = lets(sf.tokens(), f.body.clone());
        assert_eq!(ls.len(), 1);
        assert_eq!(ls[0].names, vec!["keys"]);
        assert!(idents_in(sf.tokens(), ls[0].ty.clone()).contains(&"Vec"));
        assert!(idents_in(sf.tokens(), ls[0].init.clone()).contains(&"keys"));
        let fl = for_loops(sf.tokens(), f.body.clone());
        assert_eq!(fl.len(), 1);
        assert_eq!(fl[0].names, vec!["k", "v"]);
        assert!(idents_in(sf.tokens(), fl[0].iter.clone()).contains(&"map"));
    }

    #[test]
    fn path_calls_have_full_paths() {
        let sf = parse_src("fn f() { let t = Instant::now(); std::mem::take(&mut x); g(); }");
        let f = &sf.functions[0];
        let calls = path_calls(sf.tokens(), f.body.clone());
        let joined: Vec<String> = calls.iter().map(PathCall::joined).collect();
        assert_eq!(joined, vec!["Instant::now", "std::mem::take", "g"]);
    }

    #[test]
    fn cfg_not_test_is_not_test() {
        let sf = parse_src("#[cfg(not(test))]\nfn prod() {}\n#[cfg(test)]\nfn t() {}");
        assert!(!sf.functions[0].is_test);
        assert!(sf.functions[1].is_test);
    }
}
