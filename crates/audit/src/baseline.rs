//! The audit baseline + ratchet, mirroring the xtask unwrap ratchet:
//! `audit-baseline.txt` grandfathers known error-severity findings, new
//! errors fail the build, and entries that stop matching must be removed
//! (`--update-baseline`) so the count only ever ratchets down.
//!
//! Baseline keys deliberately omit line numbers — `SA006 path fn` — so
//! unrelated edits shifting a file do not invalidate the baseline, while
//! fixing the finding does.

use std::collections::BTreeSet;

use stacksim_lint::{Diagnostic, Severity};

/// The stable baseline key of a diagnostic: code + file + function. The
/// function name is extracted from the message's `fn \`name\`` fragment;
/// graph-level findings (SA004) key on the full span.
pub fn key(d: &Diagnostic) -> String {
    let path = d.span.split(':').next().unwrap_or(&d.span);
    let func = d
        .message
        .split("fn `")
        .nth(1)
        .and_then(|rest| rest.split('`').next())
        .unwrap_or("-");
    format!("{} {} {}", d.code, path, func)
}

/// Parses baseline text: one key per line, `#` comments and blanks
/// ignored.
pub fn parse(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Renders a baseline file for the given error-severity diagnostics.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut out = String::from(
        "# stacksim audit baseline — grandfathered SA-pass errors.\n\
         # One `CODE path function` key per line; regenerate with\n\
         # `cargo xtask audit --update-baseline`. New errors must be fixed\n\
         # or waived in code, not added here by hand.\n",
    );
    let keys: BTreeSet<String> = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(key)
        .collect();
    for k in keys {
        out.push_str(&k);
        out.push('\n');
    }
    out
}

/// The ratchet verdict for one audit run against a baseline.
pub struct Verdict {
    /// Error diagnostics not covered by the baseline (fail).
    pub new_errors: Vec<Diagnostic>,
    /// Baseline entries that no longer match any error (fail: shrink).
    pub stale: Vec<String>,
}

impl Verdict {
    pub fn is_ok(&self) -> bool {
        self.new_errors.is_empty() && self.stale.is_empty()
    }
}

/// Compares a run's diagnostics against the baseline.
pub fn compare(diags: &[Diagnostic], baseline: &BTreeSet<String>) -> Verdict {
    let errors: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    let present: BTreeSet<String> = errors.iter().map(|d| key(d)).collect();
    Verdict {
        new_errors: errors
            .iter()
            .filter(|d| !baseline.contains(&key(d)))
            .map(|d| (*d).clone())
            .collect(),
        stale: baseline.difference(&present).cloned().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(code: &'static str, span: &str, message: &str) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            span: span.to_string(),
            message: message.to_string(),
        }
    }

    #[test]
    fn keys_are_line_stable() {
        let a = diag("SA001", "crates/x/src/lib.rs:10", "digest in fn `f` is bad");
        let b = diag("SA001", "crates/x/src/lib.rs:99", "digest in fn `f` is bad");
        assert_eq!(key(&a), key(&b));
        assert_eq!(key(&a), "SA001 crates/x/src/lib.rs f");
    }

    #[test]
    fn ratchet_flags_new_and_stale() {
        let d = diag("SA006", "a.rs:1", "`.unwrap()` in fn `g`; fix");
        let empty = parse("# nothing\n");
        let v = compare(std::slice::from_ref(&d), &empty);
        assert_eq!(v.new_errors.len(), 1);
        assert!(v.stale.is_empty());

        let grandfathered = parse(&render(std::slice::from_ref(&d)));
        let v = compare(&[d], &grandfathered);
        assert!(v.is_ok());

        let v = compare(&[], &grandfathered);
        assert_eq!(v.stale.len(), 1);
    }
}
