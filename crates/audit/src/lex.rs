//! A minimal Rust lexer: just enough token structure for the audit
//! passes, with line numbers on every token and waiver comments kept
//! aside.
//!
//! The lexer understands the constructs that would confuse a textual
//! scanner — string literals (including raw strings), char literals,
//! lifetimes, line and (nested) block comments — so the passes can match
//! on real identifiers instead of substrings. It does not try to be a
//! full lexer: numeric literals are swallowed as single tokens without
//! suffix splitting, and multi-character operators are left as single
//! punctuation tokens (`::` is two `:` tokens; the parser re-joins paths).

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Token kinds, deliberately coarse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `let`, `HashMap`, …).
    Ident(String),
    /// A lifetime (`'a`) or labelled-loop label.
    Lifetime(String),
    /// Any numeric literal, verbatim.
    Num(String),
    /// A string literal (content discarded — the passes never match
    /// inside strings, which is the point).
    Str,
    /// A char literal.
    Char,
    /// Single punctuation character: `{ } ( ) [ ] < > . , ; : # ! & = …`.
    Punct(char),
}

impl Tok {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tok::Punct(p) if *p == c)
    }

    /// Whether this token is the given identifier/keyword.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(self, Tok::Ident(i) if i == s)
    }
}

/// A waiver comment: `// audit:allow(SA001[, SA004]) reason…`.
///
/// A waiver suppresses matching findings reported on its own line, or —
/// when the comment stands alone on its line — on the next line of code
/// (continuation comment lines in between are skipped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// 1-based line the comment appears on.
    pub line: u32,
    /// The line a standalone waiver covers: the next line holding code
    /// (equal to `line` for trailing same-line waivers).
    pub covers: u32,
    /// The SA codes listed inside `allow(…)`.
    pub codes: Vec<String>,
}

/// Everything the lexer produced for one file.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// The token stream, comments and whitespace dropped.
    pub tokens: Vec<Token>,
    /// Audit waiver comments, in line order.
    pub waivers: Vec<Waiver>,
}

impl Lexed {
    /// Whether a finding with `code` on `line` is waived.
    pub fn is_waived(&self, code: &str, line: u32) -> bool {
        self.waivers
            .iter()
            .any(|w| w.codes.iter().any(|c| c == code) && (w.line == line || w.covers == line))
    }
}

/// Extracts audit waiver codes from one comment body. The xtask unwrap
/// ratchet's `lint:allow(unwrap)` marker doubles as an SA006 waiver so
/// one annotation serves both tools.
fn parse_waiver(comment: &str) -> Option<Vec<String>> {
    if let Some(idx) = comment.find("audit:allow(") {
        let rest = &comment[idx + "audit:allow(".len()..];
        let close = rest.find(')')?;
        let codes: Vec<String> = rest[..close]
            .split(',')
            .map(|c| c.trim().to_string())
            .filter(|c| !c.is_empty())
            .collect();
        return (!codes.is_empty()).then_some(codes);
    }
    comment
        .contains("lint:allow(unwrap)")
        .then(|| vec!["SA006".to_string()])
}

/// Lexes one file's source.
pub fn lex(source: &str) -> Lexed {
    let b = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0;
    let mut line: u32 = 1;
    // whether a non-comment token has been seen on the current line
    let mut line_has_code = false;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                line_has_code = false;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let comment = &source[start..i];
                if let Some(codes) = parse_waiver(comment) {
                    out.waivers.push(Waiver {
                        line,
                        // standalone waivers cover the next code line,
                        // resolved after the whole file is lexed
                        covers: if line_has_code { line } else { u32::MAX },
                        codes,
                    });
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        line_has_code = false;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 1;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 1;
                    }
                    i += 1;
                }
            }
            b'"' => {
                line_has_code = true;
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                out.tokens.push(Token {
                    kind: Tok::Str,
                    line,
                });
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                line_has_code = true;
                // r"…", r#"…"#, br"…" etc.
                let mut j = i + 1;
                if b[j] == b'b' || b[j] == b'r' {
                    j += 1;
                }
                let mut hashes = 0;
                while b.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                j += 1; // opening quote
                loop {
                    match b.get(j) {
                        None => break,
                        Some(b'\n') => {
                            line += 1;
                            j += 1;
                        }
                        Some(b'"') => {
                            let mut k = j + 1;
                            let mut seen = 0;
                            while seen < hashes && b.get(k) == Some(&b'#') {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                j = k;
                                break;
                            }
                            j += 1;
                        }
                        Some(_) => j += 1,
                    }
                }
                i = j;
                out.tokens.push(Token {
                    kind: Tok::Str,
                    line,
                });
            }
            b'\'' => {
                line_has_code = true;
                // char literal or lifetime
                if let Some(&n) = b.get(i + 1) {
                    let is_lifetime =
                        (n.is_ascii_alphabetic() || n == b'_') && b.get(i + 2) != Some(&b'\'');
                    if is_lifetime {
                        let start = i + 1;
                        i += 1;
                        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                            i += 1;
                        }
                        out.tokens.push(Token {
                            kind: Tok::Lifetime(source[start..i].to_string()),
                            line,
                        });
                        continue;
                    }
                }
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'\'' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                out.tokens.push(Token {
                    kind: Tok::Char,
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                line_has_code = true;
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: Tok::Ident(source[start..i].to_string()),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                line_has_code = true;
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    // don't swallow `..` range punctuation or method calls on
                    // integer literals
                    if b[i] == b'.' && !b.get(i + 1).is_some_and(u8::is_ascii_digit) {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: Tok::Num(source[start..i].to_string()),
                    line,
                });
            }
            c => {
                line_has_code = true;
                out.tokens.push(Token {
                    kind: Tok::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }
    for w in &mut out.waivers {
        if w.covers == u32::MAX {
            w.covers = out
                .tokens
                .iter()
                .map(|t| t.line)
                .find(|l| *l > w.line)
                .unwrap_or(w.line);
        }
    }
    out
}

/// Whether position `i` starts a raw (or byte) string literal.
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    // only called when b[i] is 'r' or 'b'; look ahead for r", r#", br", b"
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if b.get(j) == Some(&b'"') {
            return true; // b"…"
        }
    }
    if b.get(j) == Some(&b'r') {
        j += 1;
        while b.get(j) == Some(&b'#') {
            j += 1;
        }
        return b.get(j) == Some(&b'"');
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            fn f() {
                let s = "HashMap::iter()"; // HashMap here too
                /* Instant::now() in /* nested */ comments */
                let r = r#"SystemTime"#;
            }
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"fn".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }").tokens;
        assert!(toks
            .iter()
            .any(|t| matches!(&t.kind, Tok::Lifetime(l) if l == "a")));
        assert!(toks.iter().any(|t| t.kind == Tok::Char));
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n\nc").tokens;
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn waivers_parse_codes_and_standalone() {
        let src = "\
fn f() {
    // audit:allow(SA001, SA004) deliberate
    m.iter();
    x.lock(); // audit:allow(SA004) same line
    // audit:allow(SA006) a multi-line justification whose
    // continuation sits between the waiver and the code
    y.unwrap();
}
";
        let lexed = lex(src);
        assert_eq!(lexed.waivers.len(), 3);
        assert_eq!(lexed.waivers[0].codes, vec!["SA001", "SA004"]);
        assert!(lexed.is_waived("SA001", 3)); // standalone covers next code line
        assert!(lexed.is_waived("SA004", 4));
        assert!(!lexed.is_waived("SA002", 3));
        assert!(lexed.is_waived("SA006", 7)); // skips the continuation comment
    }

    #[test]
    fn numeric_literals_do_not_eat_method_calls() {
        let toks = lex("1.0f64.sqrt(); 7.max(3); 0..n").tokens;
        assert!(toks.iter().any(|t| t.kind.is_ident("max")));
        assert!(toks.iter().any(|t| t.kind.is_ident("sqrt")));
        let dots = toks.iter().filter(|t| t.kind.is_punct('.')).count();
        assert_eq!(dots, 4); // .sqrt, .max, and the two dots of `..`
    }
}
