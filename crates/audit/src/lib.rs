//! `stacksim-audit`: an AST-based determinism & concurrency auditor for
//! the whole workspace, run as `cargo xtask audit`.
//!
//! Six stable `SA`-coded passes walk a lightweight parse of every `.rs`
//! file (excluding tests within them) and report through the same
//! diagnostics engine as `stacksim check`:
//!
//! | code  | invariant |
//! |-------|-----------|
//! | SA001 | no `HashMap`/`HashSet` iteration order into digests/artifacts |
//! | SA002 | no wall-clock/environment values into digests/artifacts |
//! | SA003 | no unordered float reductions in thermal/mem kernels |
//! | SA004 | no lock-order cycles (session slots, cache lock file, obs) |
//! | SA005 | every `Ordering::Relaxed` covered by the declared table |
//! | SA006 | no panic paths on the scheduler thread / serve worker pool |
//!
//! Findings can be waived in code with `// audit:allow(SAnnn) reason`;
//! error-severity findings are additionally ratcheted against the
//! committed `audit-baseline.txt` (see [`baseline`]).

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use stacksim_lint::Report;

pub mod ast;
pub mod baseline;
pub mod lex;
pub mod model;
pub mod passes;

/// Name of the committed baseline file at the repo root.
pub const BASELINE_FILE: &str = "audit-baseline.txt";

/// The pass codes, in run order.
pub const PASS_CODES: [&str; 6] = ["SA001", "SA002", "SA003", "SA004", "SA005", "SA006"];

/// Everything one audit run produced.
pub struct Audit {
    /// All diagnostics, waivers already applied.
    pub report: Report,
    /// Ratchet verdict against the committed baseline.
    pub verdict: baseline::Verdict,
    /// Number of files parsed.
    pub files_scanned: usize,
}

/// Collects, lexes and parses every workspace source file under
/// `src/` and `crates/*/src/`, in sorted (deterministic) path order.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<ast::SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    collect_rs(&root.join("src"), &mut paths)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            collect_rs(&member.join("src"), &mut paths)?;
        }
    }
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let source = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        files.push(ast::parse(&rel, lex::lex(&source)));
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs all six passes over a repo checkout and ratchets the errors
/// against its committed baseline. `update_baseline` rewrites the file
/// to match the current errors instead of failing on drift.
pub fn run(root: &Path, update_baseline: bool) -> io::Result<Audit> {
    let files = scan_workspace(root)?;
    let report = passes::run_all(&files);

    let baseline_path = root.join(BASELINE_FILE);
    if update_baseline {
        fs::write(&baseline_path, baseline::render(report.diagnostics()))?;
    }
    let base: BTreeSet<String> = match fs::read_to_string(&baseline_path) {
        Ok(text) => baseline::parse(&text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => BTreeSet::new(),
        Err(e) => return Err(e),
    };
    let verdict = baseline::compare(report.diagnostics(), &base);
    Ok(Audit {
        verdict,
        files_scanned: files.len(),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The auditor audits its own workspace clean: run the full pass set
    /// over this repo and require the ratchet to hold with the committed
    /// (empty) baseline. This is the same check CI runs via
    /// `cargo xtask audit`, kept here so `cargo test -p stacksim-audit`
    /// alone catches regressions.
    #[test]
    fn workspace_audits_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("repo root")
            .to_path_buf();
        let audit = run(&root, false).expect("audit runs");
        assert!(audit.files_scanned > 20);
        let pretty = audit.report.render_pretty();
        assert!(
            audit.verdict.is_ok(),
            "new: {:?}\nstale: {:?}\n{pretty}",
            audit
                .verdict
                .new_errors
                .iter()
                .map(|d| format!("{} {}", d.span, d.message))
                .collect::<Vec<_>>(),
            audit.verdict.stale,
        );
    }
}
