//! Shared semantic model used by the passes: per-function expression
//! indexes, variable classification (map-typed, digest-typed, ordered),
//! and a small intra-procedural taint engine.
//!
//! Everything here is a deliberate over/under-approximation tuned for the
//! stacksim codebase: precise enough to catch the determinism hazards the
//! passes exist for, conservative enough that a clean workspace audits
//! clean without a wall of waivers.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::ast::{self, ForLoop, Func, LetBinding, MethodCall, PathCall, SourceFile};
use crate::lex::{Tok, Token};

/// The crate a repo-relative path belongs to (`core`, `serve`, …); files
/// under the root package map to `stacksim`.
pub fn crate_of(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("stacksim")
}

/// The file stem (`session` for `crates/core/src/harness/session.rs`).
pub fn stem_of(path: &str) -> &str {
    path.rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or(path)
}

/// One parameter of a function: its name and the tokens of its type.
#[derive(Debug, Clone)]
pub struct Param {
    pub name: String,
    pub ty: Range<usize>,
}

/// Splits a parameter-list token range into (name, type) pairs. `self`
/// receivers are recorded with an empty type range.
pub fn params_of(toks: &[Token], params: Range<usize>) -> Vec<Param> {
    let mut out = Vec::new();
    let mut start = params.start;
    let mut depth = 0i32;
    let mut i = params.start;
    while i <= params.end {
        let split = i == params.end
            || (depth == 0 && toks[i].kind.is_punct(',') && !angle_context(toks, i, start));
        if split {
            if let Some(p) = parse_param(toks, start..i) {
                out.push(p);
            }
            start = i + 1;
        } else {
            match &toks.get(i).map(|t| &t.kind) {
                Some(Tok::Punct('(')) | Some(Tok::Punct('[')) | Some(Tok::Punct('<')) => depth += 1,
                Some(Tok::Punct(')')) | Some(Tok::Punct(']')) | Some(Tok::Punct('>')) => depth -= 1,
                _ => {}
            }
        }
        i += 1;
    }
    out
}

/// Whether the comma at `i` sits inside angle brackets opened after
/// `start` (a generic argument separator, not a parameter separator).
fn angle_context(toks: &[Token], i: usize, start: usize) -> bool {
    let mut angle = 0i32;
    for t in &toks[start..i] {
        match &t.kind {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            _ => {}
        }
    }
    angle > 0
}

/// Parses one `name: Type` (or `self`-ish) parameter slice.
fn parse_param(toks: &[Token], r: Range<usize>) -> Option<Param> {
    let name_idx = toks[r.clone()]
        .iter()
        .position(|t| matches!(&t.kind, Tok::Ident(s) if s != "mut" && s != "ref"))?;
    let name = toks[r.start + name_idx].kind.ident()?.to_string();
    let colon = toks[r.clone()]
        .iter()
        .position(|t| t.kind.is_punct(':'))
        .map(|c| r.start + c);
    let ty = match colon {
        Some(c) => c + 1..r.end,
        None => r.end..r.end,
    };
    Some(Param { name, ty })
}

/// All per-function expression indexes, computed once.
pub struct FnCtx<'a> {
    pub file: &'a SourceFile,
    pub func: &'a Func,
    pub calls: Vec<MethodCall>,
    pub pcalls: Vec<PathCall>,
    pub lets: Vec<LetBinding>,
    pub fors: Vec<ForLoop>,
    pub params: Vec<Param>,
}

impl<'a> FnCtx<'a> {
    pub fn new(file: &'a SourceFile, func: &'a Func) -> Self {
        let toks = file.tokens();
        FnCtx {
            calls: ast::method_calls(toks, func.body.clone()),
            pcalls: ast::path_calls(toks, func.body.clone()),
            lets: ast::lets(toks, func.body.clone()),
            fors: ast::for_loops(toks, func.body.clone()),
            params: params_of(toks, func.params.clone()),
            file,
            func,
        }
    }

    pub fn toks(&self) -> &'a [Token] {
        self.file.tokens()
    }

    pub fn idents(&self, r: Range<usize>) -> Vec<&'a str> {
        ast::idents_in(self.toks(), r)
    }
}

/// Whether any identifier in `ids` is a member of `set`.
pub fn mentions_any(ids: &[&str], set: &BTreeSet<String>) -> bool {
    ids.iter().any(|i| set.contains(*i))
}

/// Whether a token range mentions any of the given type names.
fn range_mentions(toks: &[Token], r: Range<usize>, names: &[&str]) -> bool {
    ast::idents_in(toks, r).iter().any(|i| names.contains(i))
}

const MAP_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// Variables of map/set type visible in a function: parameters and `let`
/// bindings whose annotation or initializer names `HashMap`/`HashSet`.
/// (`self` map fields are matched at call sites via
/// [`SourceFile::map_fields`].)
pub fn map_vars(cx: &FnCtx) -> BTreeSet<String> {
    let toks = cx.toks();
    let mut out = BTreeSet::new();
    for p in &cx.params {
        if range_mentions(toks, p.ty.clone(), &MAP_TYPES) {
            out.insert(p.name.clone());
        }
    }
    for l in &cx.lets {
        if range_mentions(toks, l.ty.clone(), &MAP_TYPES)
            || range_mentions(toks, l.init.clone(), &MAP_TYPES)
        {
            out.extend(l.names.iter().cloned());
        }
    }
    out
}

/// Iterator-producing methods whose order is arbitrary on hash maps/sets.
pub const UNORDERED_ITER: [&str; 9] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_keys",
    "into_values",
];

/// Whether `call` iterates an unordered map/set: the receiver is a known
/// map variable or a map-typed struct field.
pub fn is_unordered_iter(cx: &FnCtx, call: &MethodCall, maps: &BTreeSet<String>) -> bool {
    if !UNORDERED_ITER.contains(&call.name.as_str()) {
        return false;
    }
    let toks = cx.toks();
    let field = call.field(toks);
    let root = call.root(toks);
    field.is_some_and(|f| maps.contains(f) || cx.file.map_fields.contains(f))
        || root.is_some_and(|r| maps.contains(r))
}

/// Whether a token range contains an unordered-iteration expression: a
/// map-iterating method call, or a bare mention of a map variable with no
/// method calls at all (`for k in &m`).
pub fn range_has_unordered_iter(cx: &FnCtx, r: Range<usize>, maps: &BTreeSet<String>) -> bool {
    let toks = cx.toks();
    let calls = ast::method_calls(toks, r.clone());
    if calls.iter().any(|c| is_unordered_iter(cx, c, maps)) {
        return true;
    }
    let ids = ast::idents_in(toks, r);
    calls.is_empty()
        && (mentions_any(&ids, maps) || ids.iter().any(|i| cx.file.map_fields.contains(*i)))
}

/// Collect targets that restore a deterministic order.
const ORDERED_COLLECT: [&str; 3] = ["BTreeMap", "BTreeSet", "BinaryHeap"];

/// Terminal operations whose result does not depend on iteration order.
const ORDER_INSENSITIVE: [&str; 9] = [
    "count", "len", "min", "max", "min_by", "max_by", "any", "all", "contains",
];

/// Whether an expression range launders iteration order away: it collects
/// into an ordered container or ends in an order-insensitive terminal.
pub fn launders(cx: &FnCtx, r: Range<usize>) -> bool {
    let calls = ast::method_calls(cx.toks(), r);
    calls.iter().any(|c| {
        c.name == "collect"
            && c.turbofish
                .iter()
                .any(|t| ORDERED_COLLECT.contains(&t.as_str()))
    }) || calls
        .last()
        .is_some_and(|c| ORDER_INSENSITIVE.contains(&c.name.as_str()))
}

/// Collection-mutating methods that carry taint from arguments into the
/// receiver (`out.push(k)` taints `out` when `k` is tainted).
const MUTATORS: [&str; 4] = ["push", "insert", "extend", "push_str"];

/// Computes the variables carrying taint, by fixpoint over `let` bindings
/// and mutating calls. `initial` seeds the set (e.g. loop bindings over
/// unordered iterations); `seeded` decides whether an initializer range
/// introduces taint on its own. Variables later passed to a `sort*` call
/// are considered cleansed.
pub fn tainted_vars(
    cx: &FnCtx,
    initial: BTreeSet<String>,
    seeded: impl Fn(&FnCtx, Range<usize>) -> bool,
) -> BTreeSet<String> {
    let toks = cx.toks();
    let sorted_vars: BTreeSet<String> = cx
        .calls
        .iter()
        .filter(|c| c.name.starts_with("sort"))
        .filter_map(|c| c.root(toks).map(str::to_string))
        .collect();
    let mut tainted: BTreeSet<String> = initial
        .into_iter()
        .filter(|v| !sorted_vars.contains(v))
        .collect();
    loop {
        let mut changed = false;
        for l in &cx.lets {
            if l.init.is_empty() {
                continue;
            }
            let mentions = mentions_any(&cx.idents(l.init.clone()), &tainted);
            if (mentions || seeded(cx, l.init.clone())) && !launders(cx, l.init.clone()) {
                for n in &l.names {
                    if !sorted_vars.contains(n) {
                        changed |= tainted.insert(n.clone());
                    }
                }
            }
        }
        for c in &cx.calls {
            if MUTATORS.contains(&c.name.as_str())
                && mentions_any(&cx.idents(c.args.clone()), &tainted)
            {
                if let Some(root) = c.root(toks) {
                    if !sorted_vars.contains(root) {
                        changed |= tainted.insert(root.to_string());
                    }
                }
            }
        }
        if !changed {
            return tainted;
        }
    }
}

/// Digest-typed local variables (`let mut d = Digest::new()` or an
/// explicit `Digest` annotation), plus digest-typed parameters.
pub fn digest_vars(cx: &FnCtx) -> BTreeSet<String> {
    let toks = cx.toks();
    let mut out = BTreeSet::new();
    for p in &cx.params {
        if range_mentions(toks, p.ty.clone(), &["Digest"]) {
            out.insert(p.name.clone());
        }
    }
    for l in &cx.lets {
        if range_mentions(toks, l.ty.clone(), &["Digest"])
            || range_mentions(toks, l.init.clone(), &["Digest"])
        {
            out.extend(l.names.iter().cloned());
        }
    }
    out
}

/// Digest input methods (see `core/harness/digest.rs`).
const DIGEST_METHODS: [&str; 6] = ["bytes", "str", "u64", "usize", "f64", "finish"];

/// Free or associated functions whose arguments end up in digests, JSON
/// artifacts, or obs snapshots.
const SINK_FNS: [&str; 5] = [
    "encode",
    "to_json",
    "render_json",
    "json_str",
    "params_digest",
];

/// One call site whose arguments must stay order-clean.
pub struct Sink {
    pub line: u32,
    pub args: Range<usize>,
    /// Token position of the call (for body-containment checks).
    pub pos: usize,
    pub what: &'static str,
}

/// The sink call sites of a function: digest inputs and JSON/artifact
/// encoders.
pub fn sinks(cx: &FnCtx) -> Vec<Sink> {
    let toks = cx.toks();
    let dv = digest_vars(cx);
    let mut out = Vec::new();
    for c in &cx.calls {
        let digest_recv = c.root(toks).is_some_and(|r| dv.contains(r))
            || c.field(toks).is_some_and(|f| dv.contains(f))
            || c.recv_idents(toks)
                .iter()
                .any(|i| *i == "digest" || *i == "hasher");
        if DIGEST_METHODS.contains(&c.name.as_str()) && digest_recv {
            out.push(Sink {
                line: c.line,
                args: c.args.clone(),
                pos: c.recv.start,
                what: "digest input",
            });
        } else if SINK_FNS.contains(&c.name.as_str()) {
            out.push(Sink {
                line: c.line,
                args: c.args.clone(),
                pos: c.recv.start,
                what: "JSON/artifact encoding",
            });
        }
    }
    for p in &cx.pcalls {
        let last = p.path.last().map(String::as_str).unwrap_or("");
        if p.path.first().map(String::as_str) == Some("Json") || SINK_FNS.contains(&last) {
            out.push(Sink {
                line: p.line,
                args: p.args.clone(),
                pos: p.args.start,
                what: if p.path.first().map(String::as_str) == Some("Json") {
                    "JSON value construction"
                } else {
                    "JSON/artifact encoding"
                },
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lex::lex;

    fn ctxed(src: &str, f: impl FnOnce(&FnCtx)) {
        let sf = parse("t.rs", lex(src));
        let func = &sf.functions[0];
        f(&FnCtx::new(&sf, func));
    }

    #[test]
    fn params_and_map_vars() {
        ctxed(
            "fn f(&self, m: &HashMap<String, u32>, v: Vec<u32>) {
                let n: HashSet<u32> = HashSet::new();
                let w = vec![1];
            }",
            |cx| {
                let names: Vec<&str> = cx.params.iter().map(|p| p.name.as_str()).collect();
                assert_eq!(names, vec!["self", "m", "v"]);
                let maps = map_vars(cx);
                assert!(maps.contains("m") && maps.contains("n"));
                assert!(!maps.contains("v") && !maps.contains("w"));
            },
        );
    }

    #[test]
    fn taint_flows_through_lets_and_push() {
        ctxed(
            "fn f(m: &HashMap<String, u32>) {
                let ks = m.keys();
                let joined = ks;
                let mut out = Vec::new();
                out.push(joined);
                let n = m.len();
            }",
            |cx| {
                let maps = map_vars(cx);
                let t = tainted_vars(cx, BTreeSet::new(), |cx, r| {
                    range_has_unordered_iter(cx, r, &maps)
                });
                assert!(t.contains("ks") && t.contains("joined") && t.contains("out"));
                assert!(!t.contains("n"));
            },
        );
    }

    #[test]
    fn sort_and_btree_collect_launder() {
        ctxed(
            "fn f(m: &HashMap<String, u32>) {
                let mut names = m.keys().cloned().collect::<Vec<String>>();
                names.sort_unstable();
                let ordered = m.keys().collect::<BTreeSet<_>>();
                let n = m.values().count();
            }",
            |cx| {
                let maps = map_vars(cx);
                let t = tainted_vars(cx, BTreeSet::new(), |cx, r| {
                    range_has_unordered_iter(cx, r, &maps)
                });
                assert!(t.is_empty(), "unexpected taint: {t:?}");
            },
        );
    }

    #[test]
    fn digest_sinks_are_found() {
        ctxed(
            "fn f(xs: &[u64]) {
                let mut d = Digest::new();
                for x in xs { d.u64(*x); }
                let out = encode(&xs);
            }",
            |cx| {
                let s = sinks(cx);
                assert_eq!(s.len(), 2);
                assert_eq!(s[0].what, "digest input");
                assert_eq!(s[1].what, "JSON/artifact encoding");
            },
        );
    }
}
