//! The six audit passes. Each pass walks the parsed workspace and pushes
//! `SA`-coded diagnostics into a shared [`Report`]; waivers
//! (`// audit:allow(SAnnn)`) are honoured centrally in [`emit`].

use stacksim_lint::{Report, Severity};

use crate::ast::SourceFile;

pub mod sa001_iteration;
pub mod sa002_wallclock;
pub mod sa003_reduction;
pub mod sa004_lock_order;
pub mod sa005_atomics;
pub mod sa006_panic_path;

/// Pushes one finding unless a waiver comment covers it.
pub fn emit(
    report: &mut Report,
    file: &SourceFile,
    code: &'static str,
    severity: Severity,
    line: u32,
    message: String,
) {
    if file.lexed.is_waived(code, line) {
        return;
    }
    let span = format!("{}:{line}", file.path);
    match severity {
        Severity::Error => report.error(code, span, message),
        Severity::Warning => report.warn(code, span, message),
    }
}

/// Runs every pass over the parsed workspace, in code order.
pub fn run_all(files: &[SourceFile]) -> Report {
    let mut report = Report::new();
    sa001_iteration::run(files, &mut report);
    sa002_wallclock::run(files, &mut report);
    sa003_reduction::run(files, &mut report);
    sa004_lock_order::run(files, &mut report);
    sa005_atomics::run(files, &mut report);
    sa006_panic_path::run(files, &mut report);
    report
}
