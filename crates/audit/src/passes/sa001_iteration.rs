//! SA001 — nondeterministic iteration: `HashMap`/`HashSet` iteration
//! whose values flow (intra-procedurally, through `let` bindings and
//! collection mutations) into digest, JSON-artifact, or obs-snapshot
//! sinks.
//!
//! Replaces the retired token-window heuristic that lived in
//! `crates/xtask`: instead of "a map method within N lines of a digest
//! call", this pass tracks which *variables* carry unordered iteration
//! order and flags only sink calls actually fed by one. Ordering is
//! considered laundered by collecting into a `BTreeMap`/`BTreeSet`, by an
//! explicit `sort*` on the bound variable, or by an order-insensitive
//! terminal (`count`, `min`, `max`, …).

use std::collections::BTreeSet;

use stacksim_lint::{Report, Severity};

use crate::ast::SourceFile;
use crate::model::{map_vars, mentions_any, range_has_unordered_iter, sinks, tainted_vars, FnCtx};
use crate::passes::emit;

pub const CODE: &str = "SA001";

pub fn run(files: &[SourceFile], report: &mut Report) {
    for file in files {
        for func in files_funcs(file) {
            let cx = FnCtx::new(file, func);
            let maps = map_vars(&cx);
            if maps.is_empty() && file.map_fields.is_empty() {
                continue;
            }

            // seed taint with bindings of `for … in <unordered>` loops
            let mut initial = BTreeSet::new();
            let mut unordered_loops = Vec::new();
            for fl in &cx.fors {
                if range_has_unordered_iter(&cx, fl.iter.clone(), &maps) {
                    initial.extend(fl.names.iter().cloned());
                    unordered_loops.push(fl);
                }
            }
            let tainted =
                tainted_vars(&cx, initial, |cx, r| range_has_unordered_iter(cx, r, &maps));

            for sink in sinks(&cx) {
                let args = cx.idents(sink.args.clone());
                let direct = range_has_unordered_iter(&cx, sink.args.clone(), &maps)
                    && !crate::model::launders(&cx, sink.args.clone());
                let via_var = mentions_any(&args, &tainted);
                let in_unordered_loop =
                    unordered_loops.iter().any(|fl| fl.body.contains(&sink.pos));
                if direct || via_var || in_unordered_loop {
                    emit(
                        report,
                        file,
                        CODE,
                        Severity::Error,
                        sink.line,
                        format!(
                            "{} in fn `{}` is fed by HashMap/HashSet iteration order; \
                             iterate a sorted view (collect + sort, or BTreeMap) instead",
                            sink.what, cx.func.qual
                        ),
                    );
                }
            }
        }
    }
}

fn files_funcs(file: &SourceFile) -> impl Iterator<Item = &crate::ast::Func> {
    file.functions.iter().filter(|f| !f.is_test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lex::lex;

    fn findings(src: &str) -> Vec<String> {
        let sf = parse("crates/x/src/lib.rs", lex(src));
        let mut r = Report::new();
        run(&[sf], &mut r);
        r.diagnostics().iter().map(|d| d.span.clone()).collect()
    }

    #[test]
    fn map_iteration_into_digest_is_flagged() {
        let found = findings(
            "fn f(m: &HashMap<String, u64>) -> u64 {
                let mut d = Digest::new();
                for (k, v) in m.iter() {
                    d.str(k);
                    d.u64(*v);
                }
                d.finish()
            }",
        );
        // the two digest inputs inside the loop; `finish()` outside is clean
        assert_eq!(found.len(), 2, "{found:?}");
    }

    #[test]
    fn taint_through_let_into_encoder_is_flagged() {
        let found = findings(
            "fn g(m: &HashMap<String, u64>) -> String {
                let names: Vec<&String> = m.keys().collect();
                encode(&names)
            }",
        );
        assert_eq!(found.len(), 1, "{found:?}");
    }

    #[test]
    fn sorted_and_btree_views_are_clean() {
        let found = findings(
            "fn f(m: &HashMap<String, u64>) -> String {
                let mut names: Vec<&String> = m.keys().collect();
                names.sort();
                let ordered: BTreeSet<&String> = m.keys().collect::<BTreeSet<_>>();
                encode(&names)
            }
            fn g(m: &HashMap<String, u64>) -> u64 {
                let mut d = Digest::new();
                d.usize(m.len());
                d.finish()
            }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn waiver_suppresses() {
        let found = findings(
            "fn f(m: &HashSet<u64>) -> String {
                // audit:allow(SA001) order-insensitive joined set, checked upstream
                encode(&m.iter().collect::<Vec<_>>())
            }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn test_functions_are_ignored() {
        let found = findings(
            "#[cfg(test)]
            mod tests {
                fn helper(m: &HashMap<u32, u32>) { encode(&m.iter()); }
            }",
        );
        assert!(found.is_empty(), "{found:?}");
    }
}
