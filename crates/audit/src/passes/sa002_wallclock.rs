//! SA002 — wall-clock and ambient nondeterminism: values from
//! `Instant::now`, `SystemTime::now`, environment variables, or other
//! process-ambient sources flowing into digest or artifact sinks.
//!
//! Telemetry is allowed to read the clock — the invariant is that clock
//! values never feed anything digest- or artifact-shaped. Files in the
//! allowlisted telemetry/tooling set (obs, bench, xtask, the auditor
//! itself) are skipped entirely; everywhere else the pass taints
//! source-derived variables and checks the same sink set as SA001.

use std::collections::BTreeSet;

use stacksim_lint::{Report, Severity};

use crate::ast::{self, SourceFile};
use crate::model::{mentions_any, sinks, tainted_vars, FnCtx};
use crate::passes::emit;

pub const CODE: &str = "SA002";

/// Files whose whole business is timing/telemetry or repo tooling.
fn allowlisted(path: &str) -> bool {
    path.starts_with("crates/obs/")
        || path.starts_with("crates/bench/")
        || path.starts_with("crates/xtask/")
        || path.starts_with("crates/audit/")
        || path.ends_with("/obs.rs")
        || path.ends_with("/obs_report.rs")
}

/// Whether a path call reads an ambient-nondeterministic source.
fn is_source(path: &[String]) -> bool {
    let last = path.last().map(String::as_str).unwrap_or("");
    let prev = path
        .len()
        .checked_sub(2)
        .map(|i| path[i].as_str())
        .unwrap_or("");
    matches!(
        (prev, last),
        ("Instant", "now")
            | ("SystemTime", "now")
            | ("env", "var")
            | ("env", "vars")
            | ("env", "var_os")
            | ("env", "vars_os")
            | ("process", "id")
    ) || matches!(last, "temp_dir" | "available_parallelism")
}

/// Whether a token range contains a source call.
fn range_has_source(cx: &FnCtx, r: std::ops::Range<usize>) -> bool {
    ast::path_calls(cx.toks(), r)
        .iter()
        .any(|p| is_source(&p.path))
}

pub fn run(files: &[SourceFile], report: &mut Report) {
    for file in files {
        if allowlisted(&file.path) {
            continue;
        }
        for func in file.functions.iter().filter(|f| !f.is_test) {
            let cx = FnCtx::new(file, func);
            if !range_has_source(&cx, func.body.clone()) {
                continue;
            }
            let tainted = tainted_vars(&cx, BTreeSet::new(), range_has_source);
            for sink in sinks(&cx) {
                let direct = range_has_source(&cx, sink.args.clone());
                let via_var = mentions_any(&cx.idents(sink.args.clone()), &tainted);
                if direct || via_var {
                    emit(
                        report,
                        file,
                        CODE,
                        Severity::Error,
                        sink.line,
                        format!(
                            "{} in fn `{}` depends on wall-clock/environment state; \
                             digests and artifacts must be pure functions of the config",
                            sink.what, cx.func.qual
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lex::lex;

    fn findings(path: &str, src: &str) -> usize {
        let sf = parse(path, lex(src));
        let mut r = Report::new();
        run(&[sf], &mut r);
        r.diagnostics().len()
    }

    #[test]
    fn clock_into_digest_is_flagged() {
        let src = "fn f() -> u64 {
            let t = Instant::now();
            let nanos = t;
            let mut d = Digest::new();
            d.u64(nanos);
            d.finish()
        }";
        assert_eq!(findings("crates/core/src/x.rs", src), 1);
    }

    #[test]
    fn env_var_into_json_is_flagged() {
        let src = "fn f() -> String {
            let host = std::env::var(\"HOST\").unwrap_or_default();
            encode(&host)
        }";
        assert_eq!(findings("crates/core/src/x.rs", src), 1);
    }

    #[test]
    fn timing_without_sink_is_clean_and_obs_is_allowlisted() {
        let timed = "fn f() -> f64 {
            let t = Instant::now();
            run_things();
            t.elapsed().as_secs_f64()
        }";
        assert_eq!(findings("crates/core/src/x.rs", timed), 0);
        let obs = "fn f() -> String {
            let t = Instant::now();
            encode(&t)
        }";
        assert_eq!(findings("crates/obs/src/x.rs", obs), 0);
    }
}
