//! SA003 — unordered float reductions in the thermal/mem kernels.
//!
//! Float addition is not associative, so a `.sum::<f64>()` or `fold` is
//! only reproducible when its iteration order is fixed. Slice and `Vec`
//! iteration is ordered by construction — the solver's partial-table
//! sums (`dot_row`, per-row partial folds) are deterministic and not
//! flagged. What this pass rejects is:
//!
//! * **error** — any `sum`/`product`/`fold` whose receiver chain is
//!   rooted in `HashMap`/`HashSet` iteration (float or not for `fold`,
//!   float-typed for `sum`/`product`; integer wrapping sums over maps are
//!   order-insensitive and allowed);
//! * **warning** — a float-typed reduction over a `keys`/`values`/`drain`
//!   chain whose source container cannot be classified, outside the
//!   fixed-order helper allowlist (`dot_row`, `*partial*` functions).

use std::collections::BTreeSet;

use stacksim_lint::{Report, Severity};

use crate::ast::{MethodCall, SourceFile};
use crate::lex::Tok;
use crate::model::{map_vars, mentions_any, range_has_unordered_iter, tainted_vars, FnCtx};
use crate::passes::emit;

pub const CODE: &str = "SA003";

const REDUCTIONS: [&str; 3] = ["sum", "product", "fold"];

fn in_scope(path: &str) -> bool {
    path.starts_with("crates/thermal/src/") || path.starts_with("crates/mem/src/")
}

/// Fixed-order reduction helpers exempt from the warning tier.
fn allowlisted_fn(name: &str) -> bool {
    name == "dot_row" || name.contains("partial")
}

/// Whether the reduction is float-typed: `::<f64>` turbofish or a `fold`
/// seeded with a float literal.
fn is_float_reduction(cx: &FnCtx, call: &MethodCall) -> bool {
    if call.turbofish.iter().any(|t| t == "f64" || t == "f32") {
        return true;
    }
    call.name == "fold"
        && cx.toks()[call.args.clone()]
            .first()
            .is_some_and(|t| matches!(&t.kind, Tok::Num(n) if n.contains('.')))
}

pub fn run(files: &[SourceFile], report: &mut Report) {
    for file in files {
        if !in_scope(&file.path) {
            continue;
        }
        for func in file.functions.iter().filter(|f| !f.is_test) {
            let cx = FnCtx::new(file, func);
            let maps = map_vars(&cx);
            let tainted = tainted_vars(&cx, BTreeSet::new(), |cx, r| {
                range_has_unordered_iter(cx, r, &maps)
            });
            for call in &cx.calls {
                if !REDUCTIONS.contains(&call.name.as_str()) {
                    continue;
                }
                let toks = cx.toks();
                let recv_ids = call.recv_idents(toks);
                let float = is_float_reduction(&cx, call);
                let map_rooted = mentions_any(&recv_ids, &maps)
                    || recv_ids.iter().any(|i| cx.file.map_fields.contains(*i))
                    || mentions_any(&recv_ids, &tainted);
                if map_rooted && (float || call.name == "fold") {
                    emit(
                        report,
                        file,
                        CODE,
                        Severity::Error,
                        call.line,
                        format!(
                            "`.{}` in fn `{}` reduces over HashMap/HashSet iteration order; \
                             accumulate over a sorted view or use a fixed-order partial fold",
                            call.name, cx.func.qual
                        ),
                    );
                } else if float
                    && !allowlisted_fn(&cx.func.name)
                    && recv_ids
                        .iter()
                        .any(|i| matches!(*i, "keys" | "values" | "drain"))
                {
                    emit(
                        report,
                        file,
                        CODE,
                        Severity::Warning,
                        call.line,
                        format!(
                            "float `.{}` in fn `{}` over a keys/values chain of unknown order; \
                             prove the source ordered or move into a fixed-order helper",
                            call.name, cx.func.qual
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lex::lex;

    fn severities(src: &str) -> Vec<Severity> {
        let sf = parse("crates/thermal/src/x.rs", lex(src));
        let mut r = Report::new();
        run(&[sf], &mut r);
        r.diagnostics().iter().map(|d| d.severity).collect()
    }

    #[test]
    fn map_float_sum_errors_slice_sum_is_clean() {
        let sev = severities(
            "fn bad(m: &HashMap<u32, f64>) -> f64 { m.values().sum::<f64>() }
             fn good(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }
             fn dot_row(row: &[f64], x: &[f64]) -> f64 {
                 row.iter().zip(x).map(|(a, b)| a * b).sum::<f64>()
             }",
        );
        assert_eq!(sev, vec![Severity::Error]);
    }

    #[test]
    fn map_fold_errors_int_map_sum_is_clean() {
        let sev = severities(
            "fn bad(m: &HashMap<u32, f64>) -> f64 {
                 m.values().fold(0.0, |a, b| a + b)
             }
             fn ok(m: &HashMap<u32, u64>) -> u64 { m.values().sum() }",
        );
        assert_eq!(sev, vec![Severity::Error]);
    }

    #[test]
    fn out_of_scope_files_are_skipped() {
        let sf = parse(
            "crates/core/src/x.rs",
            lex("fn f(m: &HashMap<u32, f64>) -> f64 { m.values().sum::<f64>() }"),
        );
        let mut r = Report::new();
        run(&[sf], &mut r);
        assert!(r.is_clean());
    }
}
