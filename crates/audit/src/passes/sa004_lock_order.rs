//! SA004 — lock-order graph: collect `Mutex`/`RwLock`/cache-lock-file
//! acquisitions per function, propagate them over an (approximate) call
//! graph, and error on potential lock-order cycles.
//!
//! Lock classes are named `{crate}.{file-stem}.{binding}` — e.g. the
//! session state mutex is `core.session.state`, a slot's status mutex is
//! `core.session.status`, the multi-process cache lock file is the
//! special class `cache.lockfile`. A guard is considered held from the
//! end of its `let` initializer to the close of the enclosing block or an
//! explicit `drop(guard)`; temporaries (`x.lock().push(..)`) are held to
//! the end of their statement. Acquiring B while holding A adds the edge
//! A → B, including through calls resolved to workspace functions and
//! through guard-returning helpers (`let st = Inner::lock();` holds the
//! helper's lock for the binding's scope — recognised by a `Guard`-ish
//! return type). Any directed cycle — including a self-edge, which is a
//! std-`Mutex` self-deadlock — is an error.
//!
//! Call resolution is type-directed and deliberately under-approximate:
//! a method call resolves only when the receiver's type is known (from a
//! struct field declaration, a parameter/`let` annotation, or `self`'s
//! impl block) and `Type::method` names exactly one workspace function;
//! path calls resolve through `Self::` and by unique name. Unresolved
//! calls and `Condvar` waits contribute no edges, so the pass can miss
//! cycles through dynamic dispatch — but it will not invent edges no
//! call path realises in its model.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use stacksim_lint::Report;

use crate::ast::SourceFile;
use crate::lex::{Tok, Token};
use crate::model::{crate_of, stem_of, FnCtx};

pub const CODE: &str = "SA004";

/// One lock acquisition inside a function.
struct Acq {
    classes: Vec<String>,
    /// Token position of the acquiring call.
    pos: usize,
    /// Token range during which the guard is held.
    held: Range<usize>,
    line: u32,
}

/// One call site that resolves to a workspace function.
struct CallSite {
    callee: usize,
    pos: usize,
    /// Token index just past the call's closing paren.
    end: usize,
    line: u32,
}

/// Per-function lock facts.
struct FnFacts {
    file: usize,
    qual: String,
    body_end: usize,
    acqs: Vec<Acq>,
    calls: Vec<CallSite>,
    /// `let` bindings: (initializer range, guard-held range).
    guard_lets: Vec<(Range<usize>, Range<usize>)>,
}

/// Function lookup tables for call resolution.
struct Resolver<'a> {
    fn_ids: Vec<(usize, usize)>,
    by_name: BTreeMap<&'a str, Vec<usize>>,
    by_qual: BTreeMap<&'a str, Vec<usize>>,
}

impl Resolver<'_> {
    /// Resolves `Type::name`, preferring a same-file definition, else a
    /// workspace-unique one.
    fn by_qual(&self, qual: &str, from_file: usize) -> Option<usize> {
        let cands = self.by_qual.get(qual)?;
        let local: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|id| self.fn_ids[*id].0 == from_file)
            .collect();
        match (local.len(), cands.len()) {
            (1, _) => Some(local[0]),
            (0, 1) => Some(cands[0]),
            _ => None,
        }
    }

    /// Resolves a bare name: same-file-unique, else workspace-unique.
    fn by_name(&self, name: &str, from_file: usize) -> Option<usize> {
        let cands = self.by_name.get(name)?;
        let local: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|id| self.fn_ids[*id].0 == from_file)
            .collect();
        match (local.len(), cands.len()) {
            (1, _) => Some(local[0]),
            (0, 1) => Some(cands[0]),
            _ => None,
        }
    }
}

pub fn run(files: &[SourceFile], report: &mut Report) {
    let mut resolver = Resolver {
        fn_ids: Vec::new(),
        by_name: BTreeMap::new(),
        by_qual: BTreeMap::new(),
    };
    for (fi, file) in files.iter().enumerate() {
        for (gi, func) in file.functions.iter().enumerate() {
            if func.is_test {
                continue;
            }
            let id = resolver.fn_ids.len();
            resolver.fn_ids.push((fi, gi));
            resolver.by_name.entry(&func.name).or_default().push(id);
            resolver.by_qual.entry(&func.qual).or_default().push(id);
        }
    }

    let facts: Vec<FnFacts> = resolver
        .fn_ids
        .iter()
        .map(|&(fi, gi)| collect(files, fi, gi, &resolver))
        .collect();

    // which functions hand a live guard back to their caller
    let returns_guard: Vec<bool> = resolver
        .fn_ids
        .iter()
        .map(|&(fi, gi)| {
            let file = &files[fi];
            let func = &file.functions[gi];
            let sig = &file.tokens()[func.params.end..func.body.start.max(func.params.end)];
            sig.iter()
                .filter_map(|t| t.kind.ident())
                .any(|i| i.ends_with("Guard") || i == "CacheLock")
        })
        .collect();

    // transitive lock summaries over the call graph
    let mut summaries: Vec<Option<BTreeSet<String>>> = vec![None; facts.len()];
    for id in 0..facts.len() {
        summarize(id, &facts, &mut summaries, &mut Vec::new());
    }
    let summary = |id: usize| summaries[id].clone().unwrap_or_default();

    // guard-returning helper calls acquire the callee's locks at the call
    // site: held for the binding's scope when the call is the whole `let`
    // initializer (modulo `unwrap`-style adapters), else to the end of the
    // statement like any temporary guard
    let mut all_acqs: Vec<Vec<Acq>> = Vec::with_capacity(facts.len());
    for f in &facts {
        let toks = files[f.file].tokens();
        let mut acqs: Vec<Acq> = f
            .acqs
            .iter()
            .map(|a| Acq {
                classes: a.classes.clone(),
                pos: a.pos,
                held: a.held.clone(),
                line: a.line,
            })
            .collect();
        for cs in &f.calls {
            if !returns_guard[cs.callee] {
                continue;
            }
            let s = summary(cs.callee);
            if s.is_empty() {
                continue;
            }
            let held = match enclosing_let(&f.guard_lets, cs.pos) {
                Some((init, held)) if guard_suffix_ok(toks, cs.end, init.end) => held.clone(),
                _ => cs.end..statement_end(toks, cs.end, f.body_end),
            };
            acqs.push(Acq {
                classes: s.into_iter().collect(),
                pos: cs.pos,
                held,
                line: cs.line,
            });
        }
        all_acqs.push(acqs);
    }

    // edges: held class A -> acquired class B, with one example site
    let mut edges: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
    for (id, f) in facts.iter().enumerate() {
        let file = &files[f.file];
        let acqs = &all_acqs[id];
        for a in acqs {
            let mut acquired: Vec<(String, u32)> = Vec::new();
            for b in acqs {
                if a.held.contains(&b.pos) && b.pos != a.pos {
                    for c in &b.classes {
                        acquired.push((c.clone(), b.line));
                    }
                }
            }
            for cs in &f.calls {
                if a.held.contains(&cs.pos) && !returns_guard[cs.callee] {
                    for c in summary(cs.callee) {
                        acquired.push((c, cs.line));
                    }
                }
            }
            for ca in &a.classes {
                for (cb, line) in &acquired {
                    edges
                        .entry(ca.clone())
                        .or_default()
                        .entry(cb.clone())
                        .or_insert_with(|| format!("{}:{} in fn `{}`", file.path, line, f.qual));
                }
            }
        }
    }

    // self-edges: re-acquiring a held std Mutex deadlocks
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for (a, outs) in &edges {
        if let Some(site) = outs.get(a) {
            if seen.insert(format!("self:{a}")) {
                report.error(
                    CODE,
                    site.clone(),
                    format!("lock class `{a}` re-acquired while already held (self-deadlock risk)"),
                );
            }
        }
    }
    // directed cycles
    let mut color: BTreeMap<&str, u8> = BTreeMap::new();
    let mut stack: Vec<&str> = Vec::new();
    for start in edges.keys() {
        dfs_cycles(start, &edges, &mut color, &mut stack, &mut seen, report);
    }
}

fn dfs_cycles<'g>(
    node: &'g str,
    edges: &'g BTreeMap<String, BTreeMap<String, String>>,
    color: &mut BTreeMap<&'g str, u8>,
    stack: &mut Vec<&'g str>,
    seen: &mut BTreeSet<String>,
    report: &mut Report,
) {
    if color.contains_key(node) {
        return;
    }
    color.insert(node, 1);
    stack.push(node);
    if let Some(outs) = edges.get(node) {
        for (next, site) in outs {
            if next == node {
                continue; // self-edges reported separately
            }
            if color.get(next.as_str()) == Some(&1) {
                // back edge: the cycle is the stack suffix from `next`
                if let Some(i) = stack.iter().position(|n| *n == next.as_str()) {
                    let ring = &stack[i..];
                    let min = ring
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, n)| **n)
                        .map(|(k, _)| k)
                        .unwrap_or(0);
                    let canon: Vec<&str> = (0..ring.len())
                        .map(|k| ring[(min + k) % ring.len()])
                        .collect();
                    let key = canon.join(" -> ");
                    if seen.insert(key.clone()) {
                        report.error(
                            CODE,
                            site.clone(),
                            format!("lock-order cycle: {key} -> {}", canon[0]),
                        );
                    }
                }
            } else if !color.contains_key(next.as_str()) {
                dfs_cycles(next, edges, color, stack, seen, report);
            }
        }
    }
    stack.pop();
    color.insert(node, 2);
}

/// Depth-first summary: every lock class a function may acquire,
/// directly or through resolved calls.
fn summarize(
    id: usize,
    facts: &[FnFacts],
    summaries: &mut Vec<Option<BTreeSet<String>>>,
    visiting: &mut Vec<usize>,
) -> BTreeSet<String> {
    if let Some(s) = &summaries[id] {
        return s.clone();
    }
    if visiting.contains(&id) {
        return BTreeSet::new(); // recursion: fixpoint-lite
    }
    visiting.push(id);
    let mut out: BTreeSet<String> = BTreeSet::new();
    for a in &facts[id].acqs {
        out.extend(a.classes.iter().cloned());
    }
    let callees: Vec<usize> = facts[id].calls.iter().map(|c| c.callee).collect();
    for c in callees {
        out.extend(summarize(c, facts, summaries, visiting));
    }
    visiting.pop();
    summaries[id] = Some(out.clone());
    out
}

const LOCK_METHODS: [&str; 3] = ["lock", "read", "write"];
const LOCK_TYPES: [&str; 2] = ["Mutex", "RwLock"];

/// Collects acquisitions and resolved call sites for one function.
fn collect(files: &[SourceFile], fi: usize, gi: usize, resolver: &Resolver) -> FnFacts {
    let file = &files[fi];
    let func = &file.functions[gi];
    let cx = FnCtx::new(file, func);
    let toks = cx.toks();
    let prefix = format!("{}.{}", crate_of(&file.path), stem_of(&file.path));
    let impl_ty: Option<&str> = func.qual.split_once("::").map(|(ty, _)| ty);

    // names locally known to be mutex- or condvar-typed, and a best-effort
    // variable type environment (`let runner = Runner::new(..)` → Runner)
    let mut mutex_vars: BTreeSet<String> = BTreeSet::new();
    let mut cv_vars: BTreeSet<String> = file.cv_fields.iter().cloned().collect();
    let mut var_types: BTreeMap<String, String> = BTreeMap::new();
    for p in &cx.params {
        if mentions_types(toks, p.ty.clone(), &LOCK_TYPES) {
            mutex_vars.insert(p.name.clone());
        }
        if mentions_types(toks, p.ty.clone(), &["Condvar"]) {
            cv_vars.insert(p.name.clone());
        }
        if let Some(t) = crate::ast::idents_in(toks, p.ty.clone()).last() {
            var_types.insert(p.name.clone(), (*t).to_string());
        }
    }
    for l in &cx.lets {
        if mentions_types(toks, l.ty.clone(), &LOCK_TYPES)
            || mentions_types(toks, l.init.clone(), &LOCK_TYPES)
        {
            mutex_vars.extend(l.names.iter().cloned());
        }
        if mentions_types(toks, l.ty.clone(), &["Condvar"]) {
            cv_vars.extend(l.names.iter().cloned());
        }
        let ty = if !l.ty.is_empty() {
            crate::ast::idents_in(toks, l.ty.clone())
                .last()
                .map(|t| (*t).to_string())
        } else {
            // `let x = Type::ctor(..)` pins the variable's type
            constructor_type(toks, l.init.clone())
        };
        if let (Some(t), Some(n)) = (ty, l.names.first()) {
            var_types.insert(n.clone(), t);
        }
    }

    let guard_lets: Vec<(Range<usize>, Range<usize>)> = cx
        .lets
        .iter()
        .filter(|l| !l.init.is_empty())
        .map(|l| {
            let guard = l.names.first().map(String::as_str);
            let held = l.init.end..scope_end(toks, l.init.end, func.body.end, guard);
            (l.init.clone(), held)
        })
        .collect();

    // the receiver's type, when statically known: `self` → the impl type,
    // else a declared field or annotated/constructed variable
    let recv_type = |c: &crate::ast::MethodCall| -> Option<String> {
        let base = c.field(toks)?;
        if base == "self" {
            impl_ty.map(str::to_string)
        } else {
            var_types
                .get(base)
                .or_else(|| file.field_types.get(base))
                .cloned()
        }
    };

    let mut acqs: Vec<Acq> = Vec::new();
    let mut calls: Vec<CallSite> = Vec::new();

    for c in &cx.calls {
        let pos = c.recv.start;
        let end = c.args.end + 1;
        let field = c.field(toks);
        // Condvar waits/notifies re-lock internally; never resolve them
        if field.is_some_and(|f| cv_vars.contains(f)) {
            continue;
        }
        let typed = recv_type(c).and_then(|t| resolver.by_qual(&format!("{t}::{}", c.name), fi));
        if LOCK_METHODS.contains(&c.name.as_str()) {
            let lockish = field.is_some_and(|f| {
                file.lock_fields.contains(f) || mutex_vars.contains(f) || is_static_name(f)
            });
            if lockish {
                let name = field.unwrap_or("anon");
                acqs.push(Acq {
                    classes: vec![format!("{prefix}.{name}")],
                    pos,
                    held: held_range(&cx, &guard_lets, pos, end),
                    line: c.line,
                });
            } else if let Some(id) = typed {
                // a guard-returning helper method (e.g. `Inner::lock`)
                calls.push(CallSite {
                    callee: id,
                    pos,
                    end,
                    line: c.line,
                });
            } else if c.name == "lock" {
                // unknown receiver: best-effort mutex acquisition
                let name = field.unwrap_or("anon");
                acqs.push(Acq {
                    classes: vec![format!("{prefix}.{name}")],
                    pos,
                    held: held_range(&cx, &guard_lets, pos, end),
                    line: c.line,
                });
            }
            continue;
        }
        if let Some(id) = typed {
            calls.push(CallSite {
                callee: id,
                pos,
                end,
                line: c.line,
            });
        }
    }

    for p in &cx.pcalls {
        let last = p.path.last().map(String::as_str).unwrap_or("");
        let pos = p.args.start;
        let end = p.args.end + 1;
        if last == "acquire_lock" {
            acqs.push(Acq {
                classes: vec!["cache.lockfile".to_string()],
                pos,
                held: held_range(&cx, &guard_lets, pos, end),
                line: p.line,
            });
            continue;
        }
        if last == "drop" {
            continue; // handled by scope_end
        }
        if last == "lock" && p.path.len() == 1 {
            // free `lock(x)` helper (obs-style): the argument names the
            // lock, so the class comes from the call site, not the
            // helper's parameter
            let root = crate::ast::idents_in(toks, p.args.clone())
                .into_iter()
                .rfind(|s| *s != "self")
                .unwrap_or("anon")
                .to_string();
            acqs.push(Acq {
                classes: vec![format!("{prefix}.{root}")],
                pos,
                held: held_range(&cx, &guard_lets, pos, end),
                line: p.line,
            });
            continue;
        }
        let qual = if p.path.len() >= 2 {
            let owner = &p.path[p.path.len() - 2];
            let owner = if owner == "Self" {
                impl_ty.unwrap_or("Self")
            } else {
                owner
            };
            Some(format!("{owner}::{last}"))
        } else {
            None
        };
        let id = qual
            .as_deref()
            .and_then(|q| resolver.by_qual(q, fi))
            .or_else(|| resolver.by_name(last, fi));
        if let Some(id) = id {
            calls.push(CallSite {
                callee: id,
                pos,
                end,
                line: p.line,
            });
        }
    }

    FnFacts {
        file: fi,
        qual: func.qual.clone(),
        body_end: func.body.end,
        acqs,
        calls,
        guard_lets,
    }
}

/// `let x = Type::ctor(..)` — the constructed type, when the initializer
/// starts with an uppercase path segment.
fn constructor_type(toks: &[Token], init: Range<usize>) -> Option<String> {
    let first = toks.get(init.start)?;
    let name = first.kind.ident()?;
    if !name.chars().next().is_some_and(char::is_uppercase) {
        return None;
    }
    let sep = toks.get(init.start + 1)?.kind.is_punct(':')
        && toks
            .get(init.start + 2)
            .is_some_and(|t| t.kind.is_punct(':'));
    sep.then(|| name.to_string())
}

fn mentions_types(toks: &[Token], r: Range<usize>, names: &[&str]) -> bool {
    crate::ast::idents_in(toks, r)
        .iter()
        .any(|i| names.contains(i))
}

/// `SCREAMING_CASE` statics read as lock cells (`STATE.lock()`).
fn is_static_name(s: &str) -> bool {
    s.len() > 1 && s.chars().all(|c| !c.is_ascii_lowercase())
}

/// The innermost `let` whose initializer contains `pos`, so a lock taken
/// inside `let batch = { let st = inner.lock(); … };` binds to `st`, not
/// to the enclosing block expression.
fn enclosing_let(
    guard_lets: &[(Range<usize>, Range<usize>)],
    pos: usize,
) -> Option<&(Range<usize>, Range<usize>)> {
    guard_lets
        .iter()
        .filter(|(init, _)| init.contains(&pos))
        .min_by_key(|(init, _)| init.end - init.start)
}

/// Adapters that pass a lock guard through unchanged, so
/// `let g = m.lock().unwrap_or_else(PoisonError::into_inner);` still
/// binds a guard while `let v = m.lock().unwrap().clone();` does not.
const GUARD_ADAPTERS: [&str; 3] = ["unwrap", "expect", "unwrap_or_else"];

/// Whether the tokens from `from` (just past an acquiring call) to `to`
/// are only guard-preserving adapters — i.e. the binding is the guard.
fn guard_suffix_ok(toks: &[Token], mut from: usize, to: usize) -> bool {
    while from < to {
        match &toks[from].kind {
            Tok::Punct('?') => from += 1,
            Tok::Punct('.') => {
                let Some(Tok::Ident(name)) = toks.get(from + 1).map(|t| &t.kind) else {
                    return false;
                };
                if !GUARD_ADAPTERS.contains(&name.as_str()) {
                    return false;
                }
                if !toks.get(from + 2).is_some_and(|t| t.kind.is_punct('(')) {
                    return false;
                }
                let mut depth = 0i32;
                let mut i = from + 2;
                while i < to {
                    if toks[i].kind.is_punct('(') {
                        depth += 1;
                    } else if toks[i].kind.is_punct(')') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    i += 1;
                }
                from = i + 1;
            }
            _ => return false,
        }
    }
    true
}

/// The token range during which a guard obtained at `pos` is held: the
/// enclosing `let`'s scope when the binding is the guard itself, or the
/// rest of the statement for temporaries.
fn held_range(
    cx: &FnCtx,
    guard_lets: &[(Range<usize>, Range<usize>)],
    pos: usize,
    after: usize,
) -> Range<usize> {
    let toks = cx.toks();
    if let Some((init, held)) = enclosing_let(guard_lets, pos) {
        if guard_suffix_ok(toks, after, init.end) {
            return held.clone();
        }
    }
    pos..statement_end(toks, after, cx.func.body.end)
}

/// Scans forward for the end of the current statement: a `;` or closing
/// brace at the starting depth.
fn statement_end(toks: &[Token], from: usize, body_end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = from.min(body_end);
    while i < body_end {
        match &toks[i].kind {
            Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            Tok::Punct(';') if depth <= 0 => return i,
            _ => {}
        }
        i += 1;
    }
    body_end
}

/// Scans forward for the end of a binding's scope: the closing brace of
/// the enclosing block, or an explicit `drop(guard)`.
fn scope_end(toks: &[Token], from: usize, body_end: usize, guard: Option<&str>) -> usize {
    let mut depth = 0i32;
    let mut i = from;
    while i < body_end {
        match &toks[i].kind {
            Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            Tok::Ident(s) if s == "drop" => {
                if let (Some(g), Some(t1), Some(t2)) = (guard, toks.get(i + 1), toks.get(i + 2)) {
                    if t1.kind.is_punct('(') && t2.kind.is_ident(g) {
                        return i;
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    body_end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lex::lex;

    fn audit(sources: &[(&str, &str)]) -> Report {
        let files: Vec<SourceFile> = sources.iter().map(|(p, s)| parse(p, lex(s))).collect();
        let mut r = Report::new();
        run(&files, &mut r);
        r
    }

    #[test]
    fn nested_opposite_orders_cycle() {
        let r = audit(&[(
            "crates/core/src/a.rs",
            "struct S { a: Mutex<u32>, b: Mutex<u32> }
             impl S {
                 fn ab(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }
                 fn ba(&self) { let gb = self.b.lock(); let ga = self.a.lock(); }
             }",
        )]);
        assert!(r.has_errors(), "{}", r.render_pretty());
        assert!(r.render_pretty().contains("lock-order cycle"));
    }

    #[test]
    fn consistent_order_and_scoped_guards_are_clean() {
        let r = audit(&[(
            "crates/core/src/a.rs",
            "struct S { a: Mutex<u32>, b: Mutex<u32> }
             impl S {
                 fn ab(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }
                 fn scoped(&self) {
                     { let gb = self.b.lock(); }
                     let ga = self.a.lock();
                 }
                 fn dropped(&self) {
                     let gb = self.b.lock();
                     drop(gb);
                     let ga = self.a.lock();
                 }
             }",
        )]);
        assert!(!r.has_errors(), "{}", r.render_pretty());
    }

    #[test]
    fn cycle_through_a_called_function_is_found() {
        let r = audit(&[(
            "crates/core/src/a.rs",
            "struct S { a: Mutex<u32>, b: Mutex<u32> }
             impl S {
                 fn takes_b(&self) { let g = self.b.lock(); }
                 fn ab(&self) { let ga = self.a.lock(); self.takes_b(); }
                 fn ba(&self) { let gb = self.b.lock(); let ga = self.a.lock(); }
             }",
        )]);
        assert!(r.has_errors(), "{}", r.render_pretty());
    }

    #[test]
    fn guard_returning_helper_holds_through_binding() {
        let r = audit(&[(
            "crates/core/src/a.rs",
            "struct S { a: Mutex<u32>, b: Mutex<u32> }
             impl S {
                 fn lock_a(&self) -> MutexGuard<u32> { self.a.lock() }
                 fn ab(&self) { let ga = self.lock_a(); let gb = self.b.lock(); }
                 fn ba(&self) { let gb = self.b.lock(); let ga = self.lock_a(); }
             }",
        )]);
        assert!(r.has_errors(), "{}", r.render_pretty());
    }

    #[test]
    fn block_expression_let_does_not_extend_inner_guard() {
        // the guard taken inside `let v = { … };` ends with the inner
        // block, so the later re-acquisition is not a self-deadlock
        let r = audit(&[(
            "crates/core/src/a.rs",
            "struct S { a: Mutex<Vec<u32>> }
             impl S {
                 fn lock_a(&self) -> MutexGuard<Vec<u32>> { self.a.lock() }
                 fn f(&self) {
                     let v = {
                         let g = self.lock_a();
                         g.len()
                     };
                     let g2 = self.lock_a();
                 }
             }",
        )]);
        assert!(!r.has_errors(), "{}", r.render_pretty());
    }

    #[test]
    fn non_guard_binding_of_lock_result_is_a_temporary() {
        // `let v = m.lock().clone();` does not hold the guard, so locking
        // another mutex on the next line is not an ordering edge
        let r = audit(&[(
            "crates/core/src/a.rs",
            "struct S { a: Mutex<u32>, b: Mutex<u32> }
             impl S {
                 fn ab(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }
                 fn snapshot(&self) {
                     let v = self.b.lock().clone();
                     let ga = self.a.lock();
                 }
             }",
        )]);
        assert!(!r.has_errors(), "{}", r.render_pretty());
    }

    #[test]
    fn self_deadlock_is_reported() {
        let r = audit(&[(
            "crates/core/src/a.rs",
            "struct S { a: Mutex<u32> }
             impl S {
                 fn f(&self) { let g1 = self.a.lock(); let g2 = self.a.lock(); }
             }",
        )]);
        assert!(r.has_errors());
        assert!(r.render_pretty().contains("re-acquired"));
    }

    #[test]
    fn condvar_wait_does_not_self_deadlock() {
        let r = audit(&[(
            "crates/core/src/a.rs",
            "struct S { st: Mutex<u32>, cv: Condvar }
             impl S {
                 fn wait(&self) {
                     let mut g = self.st.lock();
                     while *g == 0 { g = self.cv.wait(g); }
                 }
             }",
        )]);
        assert!(!r.has_errors(), "{}", r.render_pretty());
    }

    #[test]
    fn free_lock_helper_classes_come_from_the_call_site() {
        // two different mutexes locked through one `lock(m)` helper must
        // not collapse into a single class named after the parameter
        let r = audit(&[(
            "crates/obs/src/metrics.rs",
            "fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> { m.lock().unwrap() }
             struct R { counters: Mutex<u32>, gauges: Mutex<u32> }
             impl R {
                 fn names(&self) {
                     let a = lock(&self.counters).clone();
                     let b = lock(&self.gauges).clone();
                 }
             }",
        )]);
        assert!(!r.has_errors(), "{}", r.render_pretty());
    }

    #[test]
    fn lockfile_nesting_gets_its_own_class() {
        let r = audit(&[(
            "crates/core/src/cache.rs",
            "struct C { state: Mutex<u32> }
             impl C {
                 fn f(&self) { let st = self.state.lock(); let fl = acquire_lock(dir); }
                 fn g(&self) { let fl = acquire_lock(dir); let st = self.state.lock(); }
             }",
        )]);
        assert!(r.has_errors(), "{}", r.render_pretty());
        assert!(r.render_pretty().contains("cache.lockfile"));
    }
}
