//! SA005 — atomics audit: every `Ordering::Relaxed` operation must be
//! covered by the declared-orderings table below, which records *why*
//! relaxed is sufficient at that site. A relaxed publish/consume handoff
//! that is not in the table is an error: either the site needs
//! `Acquire`/`Release` or the table needs a new, justified row.
//!
//! The table is keyed by (path suffix, atomic field/static name); `*`
//! matches any name in the file. Keeping the table in the pass source —
//! rather than a config file — means adding a row goes through code
//! review next to the justification.

use stacksim_lint::{Report, Severity};

use crate::ast::SourceFile;
use crate::model::FnCtx;
use crate::passes::emit;

pub const CODE: &str = "SA005";

const ATOMIC_METHODS: [&str; 12] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "compare_exchange",
    "compare_exchange_weak",
];

/// (file-path suffix, field name or `*`, justification).
///
/// Every row documents a proven-relaxed site; the justification is part
/// of the audit's contract and is quoted in DESIGN.md §13.
const DECLARED: &[(&str, &str, &str)] = &[
    (
        "core/src/harness/session.rs",
        "submitted",
        "monotonic stats counter; read only by stats(), no data guarded",
    ),
    (
        "core/src/harness/session.rs",
        "dedup_hits",
        "monotonic stats counter; read only by stats(), no data guarded",
    ),
    (
        "core/src/harness/session.rs",
        "completed",
        "monotonic stats counter; read only by stats(), no data guarded",
    ),
    (
        "faults/src/lib.rs",
        "ARMED",
        "fast-path gate; the plan itself is read under the STATE mutex, \
         which synchronises",
    ),
    (
        "obs/src/lib.rs",
        "ENABLED",
        "fast-path gate; instruments re-check under the registry mutex",
    ),
    (
        "obs/src/event.rs",
        "HAS_SINK",
        "fast-path gate; the sink Arc is cloned under its mutex",
    ),
    (
        "obs/src/event.rs",
        "NEXT_SPAN",
        "unique-id allocation; fetch_add atomicity is all that is needed",
    ),
    (
        "obs/src/metrics.rs",
        "*",
        "monotonic counter/gauge/histogram cells; snapshots tolerate \
         torn reads across cells by design (see obs docs)",
    ),
    (
        "thermal/src/pool.rs",
        "arrived",
        "reset of the arrival count is published by the subsequent \
         generation.fetch_add(Release) before any waiter can re-arrive",
    ),
];

fn declared(path: &str, field: &str) -> bool {
    DECLARED
        .iter()
        .any(|(suffix, name, _)| path.ends_with(suffix) && (*name == "*" || *name == field))
}

pub fn run(files: &[SourceFile], report: &mut Report) {
    for file in files {
        for func in file.functions.iter().filter(|f| !f.is_test) {
            let cx = FnCtx::new(file, func);
            let toks = cx.toks();
            for c in &cx.calls {
                if !ATOMIC_METHODS.contains(&c.name.as_str()) {
                    continue;
                }
                if !cx.idents(c.args.clone()).contains(&"Relaxed") {
                    continue;
                }
                let field = c.field(toks).unwrap_or("<expr>");
                if declared(&file.path, field) {
                    continue;
                }
                emit(
                    report,
                    file,
                    CODE,
                    Severity::Error,
                    c.line,
                    format!(
                        "`{}.{}(.., Relaxed)` in fn `{}` is not in the declared-orderings \
                         table; use Acquire/Release or add a justified table row",
                        field, c.name, cx.func.qual
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lex::lex;

    #[test]
    fn undeclared_relaxed_is_flagged_declared_is_not() {
        let src = "fn f(&self) {
            self.ready.store(true, Ordering::Relaxed);
            self.submitted.fetch_add(1, Ordering::Relaxed);
            self.ready.store(true, Ordering::Release);
        }";
        let sf = parse("crates/core/src/harness/session.rs", lex(src));
        let mut r = Report::new();
        run(&[sf], &mut r);
        let spans: Vec<&str> = r.diagnostics().iter().map(|d| d.span.as_str()).collect();
        assert_eq!(spans.len(), 1, "{spans:?}");
        assert!(r.render_pretty().contains("ready.store"));
    }

    #[test]
    fn wildcard_rows_cover_whole_files() {
        let src = "fn f(&self) { self.anything.fetch_add(1, Ordering::Relaxed); }";
        let sf = parse("crates/obs/src/metrics.rs", lex(src));
        let mut r = Report::new();
        run(&[sf], &mut r);
        assert!(r.is_clean(), "{}", r.render_pretty());
    }
}
