//! SA006 — panic-path audit: `unwrap()`/`expect()` calls and panicking
//! macros in non-test code, with module-aware severity. In code that
//! runs on the `sim-scheduler` thread or the serve worker pool — where a
//! panic orphans dedup slots or kills a pool worker — they are errors;
//! everywhere else they are warnings feeding the (now empty) unwrap
//! ratchet. Indexing expressions in scheduler-context files are also
//! surfaced as warnings, since `v[i]` panics are the same hazard in
//! quieter clothing.
//!
//! `// lint:allow(unwrap) reason` waivers (shared with the xtask
//! ratchet) and `// audit:allow(SA006) reason` both suppress findings.

use stacksim_lint::{Report, Severity};

use crate::ast::SourceFile;
use crate::lex::Tok;
use crate::model::FnCtx;
use crate::passes::emit;

pub const CODE: &str = "SA006";

/// Files whose code runs on the scheduler thread or serve worker pool:
/// a panic here wedges `wait()` callers or shrinks the pool.
fn scheduler_context(path: &str) -> bool {
    path.starts_with("crates/serve/src/")
        || matches!(
            path,
            "crates/core/src/harness/session.rs"
                | "crates/core/src/harness/runner.rs"
                | "crates/core/src/harness/cache.rs"
                | "crates/core/src/harness/resilience.rs"
                | "crates/core/src/harness/json.rs"
        )
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

pub fn run(files: &[SourceFile], report: &mut Report) {
    for file in files {
        let sched = scheduler_context(&file.path);
        let severity = if sched {
            Severity::Error
        } else {
            Severity::Warning
        };
        for func in file.functions.iter().filter(|f| !f.is_test) {
            let cx = FnCtx::new(file, func);
            let toks = cx.toks();
            for c in &cx.calls {
                if c.name == "unwrap" || c.name == "expect" {
                    emit(
                        report,
                        file,
                        CODE,
                        severity,
                        c.line,
                        format!(
                            "`.{}()` in fn `{}`{}; return a typed error instead",
                            c.name,
                            cx.func.qual,
                            if sched {
                                " can panic on the scheduler/worker path"
                            } else {
                                " can panic"
                            },
                        ),
                    );
                }
            }
            // panicking macros: `name!(…)`
            let body = func.body.clone();
            for i in body.clone() {
                let Tok::Ident(name) = &toks[i].kind else {
                    continue;
                };
                if PANIC_MACROS.contains(&name.as_str())
                    && toks.get(i + 1).is_some_and(|t| t.kind.is_punct('!'))
                {
                    emit(
                        report,
                        file,
                        CODE,
                        severity,
                        toks[i].line,
                        format!(
                            "`{name}!` in fn `{}` panics; return a typed error",
                            cx.func.qual
                        ),
                    );
                }
            }
            // indexing in scheduler-context files only
            if sched {
                for i in body {
                    if !toks[i].kind.is_punct('[') {
                        continue;
                    }
                    // an index expression follows a value, not `= [..]`/attrs
                    let indexes = i > 0
                        && matches!(
                            &toks[i - 1].kind,
                            Tok::Ident(_) | Tok::Punct(')') | Tok::Punct(']')
                        );
                    // `x[a..b]` slicing excluded (a different hazard class)
                    let mut range_like = false;
                    {
                        let mut depth = 1i32;
                        let mut prev_dot = false;
                        let mut j = i + 1;
                        while j < func.body.end && depth > 0 {
                            match &toks[j].kind {
                                Tok::Punct('[') => depth += 1,
                                Tok::Punct(']') => depth -= 1,
                                Tok::Punct('.') if depth == 1 => {
                                    range_like |= prev_dot;
                                }
                                _ => {}
                            }
                            prev_dot = toks[j].kind.is_punct('.');
                            j += 1;
                        }
                    }
                    if indexes && !range_like {
                        emit(
                            report,
                            file,
                            CODE,
                            Severity::Warning,
                            toks[i].line,
                            format!(
                                "indexing in fn `{}` panics out of bounds on the \
                                 scheduler/worker path; prefer get()",
                                cx.func.qual
                            ),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lex::lex;

    fn report_for(path: &str, src: &str) -> Report {
        let sf = parse(path, lex(src));
        let mut r = Report::new();
        run(&[sf], &mut r);
        r
    }

    #[test]
    fn scheduler_files_error_others_warn() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let r = report_for("crates/core/src/harness/session.rs", src);
        assert_eq!(r.error_count(), 1);
        let r = report_for("crates/mem/src/cache.rs", src);
        assert_eq!((r.error_count(), r.warning_count()), (0, 1));
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "fn f(m: &Mutex<u32>) -> u32 {
            *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }";
        let r = report_for("crates/core/src/harness/session.rs", src);
        assert!(r.is_clean(), "{}", r.render_pretty());
    }

    #[test]
    fn panic_macros_and_indexing_are_flagged() {
        let src = "fn f(v: &[u32], i: usize) -> u32 {
            if v.is_empty() { panic!(\"empty\"); }
            v[i]
        }";
        let r = report_for("crates/serve/src/lib.rs", src);
        assert_eq!(r.error_count(), 1); // panic!
        assert_eq!(r.warning_count(), 1); // v[i]
    }

    #[test]
    fn lint_allow_unwrap_waiver_is_honoured() {
        let src = "fn f(x: Option<u32>) -> u32 {
            x.unwrap() // lint:allow(unwrap) checked non-empty above
        }";
        let r = report_for("crates/core/src/harness/session.rs", src);
        assert!(r.is_clean(), "{}", r.render_pretty());
    }

    #[test]
    fn tests_are_exempt() {
        let src = "#[cfg(test)]
        mod tests {
            #[test]
            fn t() { Some(1).unwrap(); panic!(\"x\"); }
        }";
        let r = report_for("crates/serve/src/lib.rs", src);
        assert!(r.is_clean(), "{}", r.render_pretty());
    }
}
