//! Ablation benches for the design decisions called out in DESIGN.md §5:
//! measured as end-metric deltas, not wall-clock — each "bench" runs the
//! two variants once and prints the comparison, then times the realistic
//! variant.

use stacksim_bench::timing::{bench, group};
use stacksim_floorplan::core2::core2_duo_92w;
use stacksim_mem::{
    DramConfig, Engine, EngineConfig, HierarchyConfig, MemoryHierarchy, StackedLevel,
};
use stacksim_thermal::{Boundary, ResistorStack, SolverConfig};
use stacksim_workloads::{RmsBenchmark, WorkloadParams};

/// Ablation 1 (DESIGN.md): dependency-driven issue vs ignoring dependencies.
fn ablate_deps() {
    let trace = RmsBenchmark::Pcg.generate(&WorkloadParams::test());
    let run = |ignore: bool| {
        let mut e = Engine::new(
            MemoryHierarchy::new(HierarchyConfig::core2_baseline()).expect("valid preset"),
            EngineConfig::builder().ignore_deps(ignore).build(),
        );
        e.run(&trace).cpma
    };
    let honoured = run(false);
    let ignored = run(true);
    println!(
        "[ablate_deps] CPMA honouring deps {honoured:.3} vs ignoring {ignored:.3} \
         ({:.1}% optimistic without them)",
        100.0 * (honoured / ignored - 1.0)
    );
    bench("ablate_deps_honoured", || run(false));
}

/// Ablation 2: open-page row-buffer cache vs single open row in the
/// stacked DRAM.
fn ablate_page_policy() {
    let trace = RmsBenchmark::Gauss.generate(&WorkloadParams::test());
    let run = |open_rows: u32| {
        let mut cfg = HierarchyConfig::stacked_dram_32mb();
        if let StackedLevel::Dram { dram, .. } = &mut cfg.stacked {
            *dram = DramConfig { open_rows, ..*dram };
        }
        let mut e = Engine::new(
            MemoryHierarchy::new(cfg).expect("valid preset"),
            EngineConfig::default(),
        );
        e.run(&trace).cpma
    };
    let cached = run(4);
    let single = run(1);
    println!(
        "[ablate_page_policy] CPMA with 4 open rows {cached:.3} vs 1 {single:.3} \
         ({:+.1}% from row-buffer caching)",
        100.0 * (single / cached - 1.0)
    );
    bench("ablate_page_policy_cached", || run(4));
}

/// Ablation 3: finite-volume solve vs the 1-D resistor stack (no lateral
/// spreading).
fn ablate_resistor() {
    let cpu = core2_duo_92w();
    let cfg = SolverConfig::builder().nx(20).ny(17).build();
    let power = cpu.power_grid(cfg.nx, cfg.ny);
    let stack = stacksim_thermal::LayerStack::planar(cpu.width(), cpu.height(), power.clone());
    let fv = stacksim_thermal::solve(&stack, Boundary::desktop(), cfg)
        .unwrap()
        .peak();
    let r1d = ResistorStack::new(&stack, Boundary::desktop());
    let active = stack.layer_index("active 1").unwrap();
    let peak_q = power.peak_density() * 1e6; // W/mm² -> W/m²
    let t1d = r1d.temperature(active, peak_q);
    println!(
        "[ablate_resistor] finite-volume peak {fv:.1} C vs 1-D resistor {t1d:.1} C \
         (spreading is worth {:.1} C)",
        t1d - fv
    );
    bench("ablate_resistor_1d", || r1d.temperature(active, peak_q));
}

/// Ablation 4: allocation-at-request vs MSHR fill latency.
fn ablate_fill_latency() {
    let trace = RmsBenchmark::Gauss.generate(&WorkloadParams::test());
    let run = |fill: bool| {
        let mut cfg = HierarchyConfig::core2_baseline();
        cfg.fill_latency = fill;
        let mut e = Engine::new(
            MemoryHierarchy::new(cfg).expect("valid preset"),
            EngineConfig::default(),
        );
        e.run(&trace).cpma
    };
    let optimistic = run(false);
    let realistic = run(true);
    println!(
        "[ablate_fill_latency] CPMA allocation-at-request {optimistic:.3} vs fill-latency \
         {realistic:.3} ({:+.1}% from modelling fills)",
        100.0 * (realistic / optimistic - 1.0)
    );
    bench("ablate_fill_latency_on", || run(true));
}

fn main() {
    group("ablations");
    ablate_deps();
    ablate_page_policy();
    ablate_resistor();
    ablate_fill_latency();
}
