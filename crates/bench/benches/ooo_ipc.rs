//! Bench over the Table 4 pipeline: uop generation and cycle-level
//! simulation throughput, planar vs folded.

use stacksim_bench::timing::{bench, group};
use stacksim_ooo::{CoreConfig, Simulator, WorkloadClass};

fn main() {
    group("uop_generation");
    for class in [WorkloadClass::SpecInt, WorkloadClass::SpecFp] {
        bench(&format!("uop_generation/{}", class.name()), || {
            class.generate(20_000, 1)
        });
    }

    group("pipeline_simulation");
    let uops = WorkloadClass::SpecInt.generate(20_000, 1);
    println!("({} uops per run)", uops.len());
    for (name, cfg) in [
        ("planar", CoreConfig::planar()),
        ("folded_3d", CoreConfig::folded_3d()),
    ] {
        let sim = Simulator::new(cfg);
        bench(&format!("pipeline_simulation/{name}"), || sim.run(&uops));
    }
}
