//! Criterion bench over the Table 4 pipeline: uop generation and
//! cycle-level simulation throughput, planar vs folded.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stacksim_ooo::{CoreConfig, Simulator, WorkloadClass};

fn bench_uop_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("uop_generation");
    for class in [WorkloadClass::SpecInt, WorkloadClass::SpecFp] {
        g.bench_with_input(
            BenchmarkId::from_parameter(class.name()),
            &class,
            |b, class| b.iter(|| class.generate(20_000, 1)),
        );
    }
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let uops = WorkloadClass::SpecInt.generate(20_000, 1);
    let mut g = c.benchmark_group("pipeline_simulation");
    g.throughput(criterion::Throughput::Elements(uops.len() as u64));
    for (name, cfg) in [
        ("planar", CoreConfig::planar()),
        ("folded_3d", CoreConfig::folded_3d()),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            let sim = Simulator::new(*cfg);
            b.iter(|| sim.run(&uops))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_uop_generation, bench_pipeline
}
criterion_main!(benches);
