//! Criterion bench over the Fig. 5 pipeline: trace generation and
//! hierarchy simulation throughput for representative RMS benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stacksim_mem::{Engine, EngineConfig, HierarchyConfig, MemoryHierarchy};
use stacksim_workloads::{RmsBenchmark, WorkloadParams};

fn bench_generation(c: &mut Criterion) {
    let params = WorkloadParams::test();
    let mut g = c.benchmark_group("trace_generation");
    for b in [RmsBenchmark::Conj, RmsBenchmark::Gauss, RmsBenchmark::Svm] {
        g.bench_with_input(BenchmarkId::from_parameter(b.name()), &b, |bench, b| {
            bench.iter(|| b.generate(&params))
        });
    }
    g.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let params = WorkloadParams::test();
    let trace = RmsBenchmark::SMvm.generate(&params);
    let mut g = c.benchmark_group("hierarchy_simulation");
    g.throughput(criterion::Throughput::Elements(trace.len() as u64));
    for (mb, cfg) in HierarchyConfig::fig7_options() {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{mb}MB")),
            &cfg,
            |bench, cfg| {
                bench.iter(|| {
                    let mut e =
                        Engine::new(MemoryHierarchy::new(cfg.clone()), EngineConfig::default());
                    e.run(&trace)
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_generation, bench_simulation
}
criterion_main!(benches);
