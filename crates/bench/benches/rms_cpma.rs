//! Bench over the Fig. 5 pipeline: trace generation and hierarchy
//! simulation throughput for representative RMS benchmarks.

use stacksim_bench::timing::{bench, group};
use stacksim_mem::{Engine, EngineConfig, HierarchyConfig, MemoryHierarchy};
use stacksim_workloads::{RmsBenchmark, WorkloadParams};

fn main() {
    let params = WorkloadParams::test();

    group("trace_generation");
    for b in [RmsBenchmark::Conj, RmsBenchmark::Gauss, RmsBenchmark::Svm] {
        bench(&format!("trace_generation/{}", b.name()), || {
            b.generate(&params)
        });
    }

    group("hierarchy_simulation");
    let trace = RmsBenchmark::SMvm.generate(&params);
    println!("({} references per run)", trace.len());
    for (mb, cfg) in HierarchyConfig::fig7_options() {
        bench(&format!("hierarchy_simulation/{mb}MB"), || {
            let mut e = Engine::new(
                MemoryHierarchy::new(cfg.clone()).expect("valid preset"),
                EngineConfig::default(),
            );
            e.run(&trace)
        });
    }
}
