//! Criterion bench of thermal-solver scaling with grid resolution —
//! documents the cost of higher-fidelity maps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stacksim_floorplan::core2::core2_duo_92w;
use stacksim_thermal::{solve, Boundary, LayerStack, SolverConfig};

fn bench_resolutions(c: &mut Criterion) {
    let cpu = core2_duo_92w();
    let mut g = c.benchmark_group("solver_resolution");
    for nx in [10usize, 20, 40] {
        let ny = nx * 17 / 20;
        let cfg = SolverConfig {
            nx,
            ny,
            ..SolverConfig::default()
        };
        let power = cpu.power_grid(nx, ny);
        let stack = LayerStack::planar(cpu.width(), cpu.height(), power);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{nx}x{ny}")),
            &stack,
            |b, s| b.iter(|| solve(s, Boundary::desktop(), cfg).unwrap()),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_resolutions
}
criterion_main!(benches);
