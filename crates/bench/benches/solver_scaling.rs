//! Bench of thermal-solver scaling with grid resolution — documents the
//! cost of higher-fidelity maps.

use stacksim_bench::timing::{bench, group};
use stacksim_floorplan::core2::core2_duo_92w;
use stacksim_thermal::{solve, Boundary, LayerStack, SolverConfig};

fn main() {
    let cpu = core2_duo_92w();
    group("solver_resolution");
    for nx in [10usize, 20, 40] {
        let ny = nx * 17 / 20;
        let cfg = SolverConfig::builder().nx(nx).ny(ny).build();
        let power = cpu.power_grid(nx, ny);
        let stack = LayerStack::planar(cpu.width(), cpu.height(), power);
        bench(&format!("solver_resolution/{nx}x{ny}"), || {
            solve(&stack, Boundary::desktop(), cfg).unwrap()
        });
    }
}
