//! Bench over the thermal solver: planar vs two-die stacks and the Fig. 3
//! conductivity sweep.

use stacksim_bench::timing::{bench, group};
use stacksim_floorplan::core2::core2_duo_92w;
use stacksim_floorplan::uniform_die;
use stacksim_thermal::sweep::conductivity_sweep;
use stacksim_thermal::{solve, Boundary, LayerStack, SolverConfig};

fn small_cfg() -> SolverConfig {
    SolverConfig::builder().nx(20).ny(17).build()
}

fn main() {
    let cpu = core2_duo_92w();
    let cfg = small_cfg();
    let power = cpu.power_grid(cfg.nx, cfg.ny);
    let dram = uniform_die("dram", cpu.width(), cpu.height(), 3.1).power_grid(cfg.nx, cfg.ny);

    let planar = LayerStack::planar(cpu.width(), cpu.height(), power.clone());
    let stacked = LayerStack::two_die(cpu.width(), cpu.height(), power, dram, true);

    group("thermal_solve");
    for (name, stack) in [("planar", &planar), ("two_die", &stacked)] {
        bench(&format!("thermal_solve/{name}"), || {
            solve(stack, Boundary::desktop(), cfg).unwrap()
        });
    }

    group("fig3_sweep");
    bench("fig3_sweep_3pt", || {
        conductivity_sweep(
            &stacked,
            "bond",
            &[60.0, 12.0, 3.0],
            Boundary::desktop(),
            cfg,
        )
        .unwrap()
    });
}
