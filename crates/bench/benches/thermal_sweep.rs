//! Criterion bench over the thermal solver: planar vs two-die stacks and
//! the Fig. 3 conductivity sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stacksim_floorplan::core2::core2_duo_92w;
use stacksim_floorplan::uniform_die;
use stacksim_thermal::sweep::conductivity_sweep;
use stacksim_thermal::{solve, Boundary, LayerStack, SolverConfig};

fn small_cfg() -> SolverConfig {
    SolverConfig {
        nx: 20,
        ny: 17,
        ..SolverConfig::default()
    }
}

fn bench_solve(c: &mut Criterion) {
    let cpu = core2_duo_92w();
    let cfg = small_cfg();
    let power = cpu.power_grid(cfg.nx, cfg.ny);
    let dram = uniform_die("dram", cpu.width(), cpu.height(), 3.1).power_grid(cfg.nx, cfg.ny);

    let planar = LayerStack::planar(cpu.width(), cpu.height(), power.clone());
    let stacked = LayerStack::two_die(cpu.width(), cpu.height(), power, dram, true);

    let mut g = c.benchmark_group("thermal_solve");
    for (name, stack) in [("planar", &planar), ("two_die", &stacked)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), stack, |b, stack| {
            b.iter(|| solve(stack, Boundary::desktop(), cfg).unwrap())
        });
    }
    g.finish();
}

fn bench_sweep(c: &mut Criterion) {
    let cpu = core2_duo_92w();
    let cfg = small_cfg();
    let power = cpu.power_grid(cfg.nx, cfg.ny);
    let dram = uniform_die("dram", cpu.width(), cpu.height(), 3.1).power_grid(cfg.nx, cfg.ny);
    let stack = LayerStack::two_die(cpu.width(), cpu.height(), power, dram, true);
    c.bench_function("fig3_sweep_3pt", |b| {
        b.iter(|| {
            conductivity_sweep(&stack, "bond", &[60.0, 12.0, 3.0], Boundary::desktop(), cfg)
                .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_solve, bench_sweep
}
criterion_main!(benches);
