//! Regenerates Fig. 9/10/11 via the experiment harness: the planar and
//! folded floorplans and the Logic+Logic thermal comparison.

use stacksim_bench::banner;
use stacksim_core::harness::{render, run_one};
use stacksim_core::logic_logic::folded_p4;
use stacksim_floorplan::p4::pentium4_147w;
use stacksim_floorplan::wire::fig9_paths;
use stacksim_workloads::WorkloadParams;

fn main() {
    banner(
        "Figures 9-11",
        "planar vs 3D floorplan of the P4-class core and peak temperatures",
    );

    // the Fig. 9/10 floorplan geometry is static, not an experiment
    let planar = pentium4_147w();
    println!(
        "Fig. 9 planar: {:.0} x {:.0} mm, {:.0} W, {} blocks (hottest: scheduler)",
        planar.width(),
        planar.height(),
        planar.total_power(),
        planar.blocks().len()
    );
    for path in fig9_paths(&planar) {
        println!(
            "  wire route {:<28}: {:.1} mm planar -> {:.1} mm stacked ({:.0}%)",
            path.name,
            path.planar_mm,
            path.stacked_mm,
            100.0 * path.ratio()
        );
    }
    let folded = match folded_p4() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("fold failed: {e}");
            std::process::exit(1);
        }
    };
    let d0 = &folded.dies()[0];
    println!(
        "Fig. 10 3D: two dies of {:.1} x {:.1} mm ({:.0}% footprint), {:.1} W total \
         ({} + {} blocks), peak stacked density {:.2}x planar",
        d0.width(),
        d0.height(),
        100.0 * d0.area() / planar.area(),
        folded.total_power(),
        folded.dies()[0].blocks().len(),
        folded.dies()[1].blocks().len(),
        folded.peak_stacked_density(48, 40) / planar.power_grid(48, 40).peak_density(),
    );
    println!();

    match run_one("fig11", WorkloadParams::paper()) {
        Ok(artifact) => println!("{}", render::render(&artifact)),
        Err(e) => {
            eprintln!("fig11 failed: {e}");
            std::process::exit(1);
        }
    }
}
