//! Regenerates Fig. 3: heat-dissipation sensitivity of the stacked
//! microprocessor to the Cu metal layers and the bonding layer.

use stacksim_bench::{banner, emit};
use stacksim_core::sensitivity::fig3;
use stacksim_core::{fmt_f, Fig3Data, TextTable};

fn main() {
    banner(
        "Figure 3",
        "peak temperature vs thermal conductivity of Cu metal / bonding layer",
    );
    let data = match fig3() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("thermal solve failed: {e}");
            std::process::exit(1);
        }
    };
    let mut t = TextTable::new(["k (W/mK)", "Cu metal layers (C)", "Bonding layer (C)"]);
    for (m, b) in data.cu_metal.iter().zip(&data.bond) {
        t.row([fmt_f(m.k, 0), fmt_f(m.peak_c, 2), fmt_f(b.peak_c, 2)]);
    }
    emit(&t);
    println!(
        "span over the sweep: metal {:.2} C vs bond {:.2} C — the metal stack dominates, \
         as in the paper (actual values: Cu metal 12 W/mK, bond 60 W/mK)",
        Fig3Data::span(&data.cu_metal),
        Fig3Data::span(&data.bond),
    );
}
