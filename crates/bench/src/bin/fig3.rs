//! Regenerates Fig. 3 via the experiment harness: heat-dissipation
//! sensitivity of the stacked microprocessor to the Cu metal layers and
//! the bonding layer.

use stacksim_bench::banner;
use stacksim_core::harness::{render, run_one};
use stacksim_workloads::WorkloadParams;

fn main() {
    banner(
        "Figure 3",
        "peak temperature vs thermal conductivity of Cu metal / bonding layer",
    );
    match run_one("fig3", WorkloadParams::paper()) {
        Ok(artifact) => println!("{}", render::render(&artifact)),
        Err(e) => {
            eprintln!("fig3 failed: {e}");
            std::process::exit(1);
        }
    }
}
