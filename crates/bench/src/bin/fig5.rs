//! Regenerates Fig. 5 via the experiment harness: CPMA and off-die
//! bandwidth for the twelve two-threaded RMS benchmarks as the last-level
//! cache grows from 4 MB to 64 MB.
//!
//! Run with `--test-scale` for a fast smoke run.

use stacksim_bench::banner;
use stacksim_core::harness::{render, run_one};
use stacksim_workloads::WorkloadParams;

fn main() {
    banner(
        "Figure 5",
        "performance results for 2-threaded RMS benchmarks as cache capacity grows 4->64 MB",
    );
    let params = if std::env::args().any(|a| a == "--test-scale") {
        WorkloadParams::test()
    } else {
        WorkloadParams::paper()
    };
    match run_one("fig5", params) {
        Ok(artifact) => println!("{}", render::render(&artifact)),
        Err(e) => {
            eprintln!("fig5 failed: {e}");
            std::process::exit(1);
        }
    }
}
