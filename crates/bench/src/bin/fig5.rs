//! Regenerates Fig. 5: CPMA and off-die bandwidth for the twelve
//! two-threaded RMS benchmarks as the last-level cache grows from 4 MB to
//! 64 MB.
//!
//! Run with `--test-scale` for a fast smoke run, `--csv` for CSV output.

use stacksim_bench::{banner, emit};
use stacksim_core::{fmt_f, StackOption, TextTable};
use stacksim_workloads::WorkloadParams;

fn main() {
    banner(
        "Figure 5",
        "performance results for 2-threaded RMS benchmarks as cache capacity grows 4->64 MB",
    );
    let params = if std::env::args().any(|a| a == "--test-scale") {
        WorkloadParams::test()
    } else {
        WorkloadParams::paper()
    };
    let data = stacksim_core::memory_logic::fig5(&params);

    let mut cpma = TextTable::new(["bench (CPMA)", "4MB", "12MB", "32MB", "64MB", "red@32"]);
    for r in &data.rows {
        cpma.row([
            r.benchmark.name().to_string(),
            fmt_f(r.cpma[0], 3),
            fmt_f(r.cpma[1], 3),
            fmt_f(r.cpma[2], 3),
            fmt_f(r.cpma[3], 3),
            format!("{:+.1}%", -100.0 * r.cpma_reduction(2)),
        ]);
    }
    let mean = data.mean_cpma();
    cpma.row([
        "Avg".to_string(),
        fmt_f(mean[0], 3),
        fmt_f(mean[1], 3),
        fmt_f(mean[2], 3),
        fmt_f(mean[3], 3),
        format!("{:+.1}%", -100.0 * (1.0 - mean[2] / mean[0])),
    ]);
    emit(&cpma);

    let mut bw = TextTable::new(["bench (BW GB/s)", "4MB", "12MB", "32MB", "64MB"]);
    for r in &data.rows {
        bw.row([
            r.benchmark.name().to_string(),
            fmt_f(r.bandwidth[0], 2),
            fmt_f(r.bandwidth[1], 2),
            fmt_f(r.bandwidth[2], 2),
            fmt_f(r.bandwidth[3], 2),
        ]);
    }
    let mb = data.mean_bandwidth();
    bw.row([
        "Avg".to_string(),
        fmt_f(mb[0], 2),
        fmt_f(mb[1], 2),
        fmt_f(mb[2], 2),
        fmt_f(mb[3], 2),
    ]);
    emit(&bw);

    println!(
        "options: {}",
        StackOption::all()
            .map(|o| o.label().to_string())
            .join(" / ")
    );
    let h = data.headline();
    println!(
        "headline @32MB: mean CPMA -{:.1}% (paper 13%), peak -{:.1}% (paper ~50-55%), \
         BW /{:.2} (paper 3x)",
        100.0 * h.mean_cpma_reduction,
        100.0 * h.peak_cpma_reduction,
        h.bandwidth_reduction_factor,
    );
}
