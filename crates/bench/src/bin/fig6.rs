//! Regenerates Fig. 6 via the experiment harness: the baseline planar
//! power map and thermal map (92 W skew; paper: hottest spots 88.35 °C,
//! coolest 59 °C — the paper's 59 °C includes an epoxy-fillet edge effect
//! not modelled here).

use stacksim_bench::banner;
use stacksim_core::harness::{render, run_one};
use stacksim_workloads::WorkloadParams;

fn main() {
    banner(
        "Figure 6",
        "Intel Core 2 Duo–class planar floorplan: power map and thermal map",
    );
    match run_one("fig6", WorkloadParams::paper()) {
        Ok(artifact) => println!("{}", render::render(&artifact)),
        Err(e) => {
            eprintln!("fig6 failed: {e}");
            std::process::exit(1);
        }
    }
}
