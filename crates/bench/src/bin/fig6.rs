//! Regenerates Fig. 6: the baseline planar power map and thermal map
//! (92 W skew; paper: hottest spots 88.35 °C, coolest 59 °C — the paper's
//! 59 °C includes an epoxy-fillet edge effect not modelled here).

use stacksim_bench::banner;
use stacksim_core::memory_logic::fig6;

fn main() {
    banner(
        "Figure 6",
        "Intel Core 2 Duo–class planar floorplan: power map and thermal map",
    );
    let (power, field) = match fig6() {
        Ok(x) => x,
        Err(e) => {
            eprintln!("thermal solve failed: {e}");
            std::process::exit(1);
        }
    };

    // render the power map as ASCII (denser glyph = higher power density)
    let (nx, ny) = power.dims();
    let cells = power.cells();
    let max = cells.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    println!("power map (total {:.1} W), '@' = densest:", power.total());
    for j in (0..ny).rev() {
        let mut line = String::new();
        for i in 0..nx {
            let g = ((cells[j * nx + i] / max) * (glyphs.len() - 1) as f64).round() as usize;
            line.push(glyphs[g.min(glyphs.len() - 1)]);
        }
        println!("{line}");
    }
    println!();

    let active = field
        .layer_names()
        .iter()
        .position(|n| n == "active 1")
        .expect("active layer present");
    let die = field.layer(active);
    let min = die.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "thermal map, peak {:.2} C (paper 88.35), coolest on die {:.2} C (paper 59):",
        field.peak(),
        min
    );
    println!("{}", field.ascii_map(active));
}
