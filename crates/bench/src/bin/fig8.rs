//! Regenerates Fig. 7 + Fig. 8: the stacked-cache configurations, their
//! power budgets, peak temperatures, and the 32 MB thermal map.

use stacksim_bench::{banner, emit};
use stacksim_core::memory_logic::fig8;
use stacksim_core::{fmt_f, StackOption, TextTable};

fn main() {
    banner(
        "Figures 7 and 8",
        "memory-stacking options, power and peak temperature",
    );

    let mut cfgs = TextTable::new(["option", "LLC", "CPU die W", "stacked die W", "total W"]);
    for o in StackOption::all() {
        cfgs.row([
            o.label().to_string(),
            format!("{} MB", o.capacity_mb()),
            fmt_f(o.cpu_floorplan().total_power(), 1),
            fmt_f(o.stacked_die_power(), 1),
            fmt_f(o.total_power(), 1),
        ]);
    }
    emit(&cfgs);

    let points = match fig8() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("thermal solve failed: {e}");
            std::process::exit(1);
        }
    };
    let paper = [88.35, 92.85, 88.43, 90.27];
    let mut t = TextTable::new(["option", "peak C (ours)", "peak C (paper)", "delta vs 2D"]);
    let base = points[0].peak_c;
    for (p, target) in points.iter().zip(paper) {
        t.row([
            p.option.label().to_string(),
            fmt_f(p.peak_c, 2),
            fmt_f(target, 2),
            format!("{:+.2}", p.peak_c - base),
        ]);
    }
    emit(&t);

    // the Fig. 8(b) thermal map of the 32 MB stack's CPU die
    let p32 = &points[2];
    let active = p32
        .field
        .layer_names()
        .iter()
        .position(|n| n == "active 1")
        .expect("active layer present");
    println!("3D 32MB CPU-die thermal map (Fig. 8b), '@' = hottest:");
    println!("{}", p32.field.ascii_map(active));
}
