//! Regenerates Fig. 7 + Fig. 8 via the experiment harness: the
//! stacked-cache configurations, their power budgets, peak temperatures,
//! and the 32 MB thermal map.

use stacksim_bench::{banner, emit};
use stacksim_core::harness::{render, run_one};
use stacksim_core::{fmt_f, StackOption, TextTable};
use stacksim_workloads::WorkloadParams;

fn main() {
    banner(
        "Figures 7 and 8",
        "memory-stacking options, power and peak temperature",
    );

    // the Fig. 7 option table is static configuration, not an experiment
    let mut cfgs = TextTable::new(["option", "LLC", "CPU die W", "stacked die W", "total W"]);
    for o in StackOption::all() {
        cfgs.row([
            o.label().to_string(),
            format!("{} MB", o.capacity_mb()),
            fmt_f(o.cpu_floorplan().total_power(), 1),
            fmt_f(o.stacked_die_power(), 1),
            fmt_f(o.total_power(), 1),
        ]);
    }
    emit(&cfgs);

    match run_one("fig8", WorkloadParams::paper()) {
        Ok(artifact) => println!("{}", render::render(&artifact)),
        Err(e) => {
            eprintln!("fig8 failed: {e}");
            std::process::exit(1);
        }
    }
}
