//! Regenerates the paper's abstract/conclusion headline numbers:
//!
//! * "a 32MB 3D stacked DRAM cache can reduce the cycles per memory access
//!   ... on average by 13% and as much as 55% while increasing the peak
//!   temperature by a negligible 0.08ºC. Off-die BW and power are also
//!   reduced by 66% on average."
//! * "a 3D floorplan ... can simultaneously reduce power 15% and increase
//!   performance 15% with a small 14ºC increase in peak temperature.
//!   Voltage scaling can reach neutral thermals with a simultaneous 34%
//!   power reduction and 8% performance improvement."
//!
//! `--test-scale` shrinks the Fig. 5 run for smoke testing.

use stacksim_bench::banner;
use stacksim_core::logic_logic::{fig11, table4, table5};
use stacksim_core::memory_logic::{fig5, fig8};
use stacksim_workloads::WorkloadParams;

fn main() {
    banner("Headline numbers", "abstract / conclusions of the paper");
    let quick = std::env::args().any(|a| a == "--test-scale");

    // --- Memory+Logic ---
    let params = if quick {
        WorkloadParams::test()
    } else {
        WorkloadParams::paper()
    };
    let data = fig5(&params);
    let h = data.headline();
    println!("Memory+Logic (32 MB stacked DRAM):");
    println!(
        "  mean CPMA reduction   : {:>6.1}%   (paper: 13%)",
        100.0 * h.mean_cpma_reduction
    );
    println!(
        "  peak CPMA reduction   : {:>6.1}%   (paper: as much as 55%)",
        100.0 * h.peak_cpma_reduction
    );
    println!(
        "  off-die BW reduction  : {:>6.2}x   (paper: 3x)",
        h.bandwidth_reduction_factor
    );
    println!(
        "  bus power saving      : {:>6.2} W ({:.0}%)  (paper: ~0.5 W, 66%)",
        h.bus_power_saving_w,
        100.0 * h.bus_power_reduction()
    );
    match fig8() {
        Ok(points) => {
            let delta = points[2].peak_c - points[0].peak_c;
            println!("  peak temp delta @32MB : {delta:>+6.2} C  (paper: +0.08 C)");
        }
        Err(e) => eprintln!("  fig8 thermal solve failed: {e}"),
    }
    println!();

    // --- Logic+Logic ---
    println!("Logic+Logic (3D floorplan of the P4-class core):");
    let t4 = table4(if quick { 8_000 } else { 60_000 }, 7);
    println!(
        "  performance gain      : {:>6.2}%  (paper: ~15%) at 15% lower power",
        t4.total_pct
    );
    match fig11() {
        Ok(points) => {
            println!(
                "  peak temp increase    : {:>6.2} C  (paper: +14 C, at 1.3x power density)",
                points[1].peak_c - points[0].peak_c
            );
        }
        Err(e) => eprintln!("  fig11 thermal solve failed: {e}"),
    }
    match table5() {
        Ok(rows) => {
            let st = rows.iter().find(|r| r.label == "Same Temp").expect("row");
            println!(
                "  thermal-neutral scale : {:>6.0}% power, {:+.0}% perf  (paper: -34% power, +8% perf)",
                st.power_pct - 100.0,
                st.perf_pct - 100.0
            );
        }
        Err(e) => eprintln!("  table5 thermal solve failed: {e}"),
    }
}
