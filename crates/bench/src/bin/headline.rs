//! Regenerates the paper's abstract/conclusion headline numbers via one
//! parallel harness run over `headline`, `fig8`, `table4`, `fig11` and
//! `table5` (plus their dependencies):
//!
//! * "a 32MB 3D stacked DRAM cache can reduce the cycles per memory access
//!   ... on average by 13% and as much as 55% while increasing the peak
//!   temperature by a negligible 0.08ºC. Off-die BW and power are also
//!   reduced by 66% on average."
//! * "a 3D floorplan ... can simultaneously reduce power 15% and increase
//!   performance 15% with a small 14ºC increase in peak temperature.
//!   Voltage scaling can reach neutral thermals with a simultaneous 34%
//!   power reduction and 8% performance improvement."
//!
//! `--test-scale` shrinks the workloads for smoke testing.

use stacksim_bench::banner;
use stacksim_core::harness::{render, Artifact, Registry, RunOptions, Runner};
use stacksim_workloads::WorkloadParams;

fn main() {
    banner("Headline numbers", "abstract / conclusions of the paper");
    let params = if std::env::args().any(|a| a == "--test-scale") {
        WorkloadParams::test()
    } else {
        WorkloadParams::paper()
    };
    let runner = Runner::new(
        Registry::standard(),
        RunOptions::builder().params(params).build(),
    );
    let wanted: Vec<String> = ["headline", "fig8", "table4", "fig11", "table5"]
        .into_iter()
        .map(String::from)
        .collect();
    let outcome = match runner.run(&wanted) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("headline run failed: {e}");
            std::process::exit(1);
        }
    };
    for (name, error) in &outcome.errors {
        eprintln!("  {name} failed: {error}");
    }

    println!("Memory+Logic (32 MB stacked DRAM):");
    if let Some(a) = outcome.artifacts.get("headline") {
        println!("{}", render::render(a));
    }
    if let Some(Artifact::Fig8(points)) = outcome.artifacts.get("fig8").map(|a| a.as_ref()) {
        let delta = points[2].peak_c - points[0].peak_c;
        println!("peak temp delta @32MB : {delta:>+6.2} C  (paper: +0.08 C)");
    }
    println!();

    println!("Logic+Logic (3D floorplan of the P4-class core):");
    if let Some(Artifact::Table4(t4)) = outcome.artifacts.get("table4").map(|a| a.as_ref()) {
        println!(
            "performance gain      : {:>6.2}%  (paper: ~15%) at 15% lower power",
            t4.total_pct
        );
    }
    if let Some(Artifact::Fig11(points)) = outcome.artifacts.get("fig11").map(|a| a.as_ref()) {
        println!(
            "peak temp increase    : {:>6.2} C  (paper: +14 C, at 1.3x power density)",
            points[1].peak_c - points[0].peak_c
        );
    }
    if let Some(Artifact::Table5(rows)) = outcome.artifacts.get("table5").map(|a| a.as_ref()) {
        if let Some(st) = rows.iter().find(|r| r.label == "Same Temp") {
            println!(
                "thermal-neutral scale : {:>6.0}% power, {:+.0}% perf  (paper: -34% power, +8% perf)",
                st.power_pct - 100.0,
                st.perf_pct - 100.0
            );
        } else {
            eprintln!("table5 artifact is missing its 'Same Temp' row");
        }
    }
    if !outcome.errors.is_empty() {
        std::process::exit(1);
    }
}
