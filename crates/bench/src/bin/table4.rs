//! Regenerates Table 4: per-path pipe-stage eliminations and performance
//! gains of the Logic+Logic 3D floorplan.
//!
//! `--quick` runs a shorter suite.

use stacksim_bench::{banner, emit};
use stacksim_core::logic_logic::table4;
use stacksim_core::{fmt_f, TextTable};

fn main() {
    banner(
        "Table 4",
        "Logic+Logic 3D stacking performance improvement and pipeline changes",
    );
    let uops = if std::env::args().any(|a| a == "--quick") {
        15_000
    } else {
        60_000
    };
    let t4 = table4(uops, 7);

    let mut t = TextTable::new(["Functionality", "% stages eliminated", "ours %", "paper %"]);
    for r in &t4.rows {
        t.row([
            r.path.name().to_string(),
            r.stages.to_string(),
            fmt_f(r.measured_pct, 2),
            fmt_f(r.paper_pct, 2),
        ]);
    }
    t.row([
        "Total".to_string(),
        "~25%".to_string(),
        fmt_f(t4.total_pct, 2),
        "~15".to_string(),
    ]);
    emit(&t);
    println!(
        "note: the combined run exceeds the row sum ({:.2}%) because relieving one \
         bottleneck exposes the others to the shortened paths.",
        t4.rows.iter().map(|r| r.measured_pct).sum::<f64>()
    );
}
