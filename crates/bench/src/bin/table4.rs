//! Regenerates Table 4 via the experiment harness: per-path pipe-stage
//! eliminations and performance gains of the Logic+Logic 3D floorplan.
//!
//! `--quick` runs the short (test-scale) suite.

use stacksim_bench::banner;
use stacksim_core::harness::{render, run_one};
use stacksim_workloads::WorkloadParams;

fn main() {
    banner(
        "Table 4",
        "Logic+Logic 3D stacking performance improvement and pipeline changes",
    );
    let params = if std::env::args().any(|a| a == "--quick") {
        WorkloadParams::test()
    } else {
        WorkloadParams::paper()
    };
    match run_one("table4", params) {
        Ok(artifact) => println!("{}", render::render(&artifact)),
        Err(e) => {
            eprintln!("table4 failed: {e}");
            std::process::exit(1);
        }
    }
}
