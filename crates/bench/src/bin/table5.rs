//! Regenerates Table 5: frequency and voltage scaling of the Logic+Logic
//! 3D floorplan, with every temperature thermally solved.

use stacksim_bench::{banner, emit};
use stacksim_core::logic_logic::table5;
use stacksim_core::{fmt_f, TextTable};

fn main() {
    banner(
        "Table 5",
        "V/f scaling the Logic+Logic 3D floorplan (0.82% perf per 1% f, f:Vcc 1:1)",
    );
    let rows = match table5() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("thermal solve failed: {e}");
            std::process::exit(1);
        }
    };
    let paper: [(f64, f64, f64, f64, f64); 5] = [
        (147.0, 100.0, 99.0, 100.0, 1.0),
        (147.0, 100.0, 127.0, 129.0, 1.18),
        (125.0, 85.0, 113.0, 115.0, 1.0),
        (97.28, 66.0, 99.0, 108.0, 0.92),
        (68.2, 46.0, 77.0, 100.0, 0.82),
    ];
    let mut t = TextTable::new([
        "row",
        "Pwr W",
        "Pwr %",
        "Temp C",
        "Perf %",
        "Vcc",
        "Freq",
        "paper (W/C/%/Vcc)",
    ]);
    for (r, p) in rows.iter().zip(paper) {
        t.row([
            r.label.to_string(),
            fmt_f(r.power_w, 1),
            fmt_f(r.power_pct, 0),
            fmt_f(r.temp_c, 1),
            fmt_f(r.perf_pct, 0),
            fmt_f(r.vcc, 2),
            fmt_f(r.freq, 2),
            format!("{:.1}/{:.0}/{:.0}/{:.2}", p.0, p.2, p.3, p.4),
        ]);
    }
    emit(&t);
    println!("conversions: 0.82% performance per 1% frequency; 1% frequency per 1% Vcc; P = V^2 f");
}
