//! Regenerates Table 5 via the experiment harness: frequency and voltage
//! scaling of the Logic+Logic 3D floorplan, with every temperature
//! thermally solved.

use stacksim_bench::banner;
use stacksim_core::harness::{render, run_one};
use stacksim_workloads::WorkloadParams;

fn main() {
    banner(
        "Table 5",
        "V/f scaling the Logic+Logic 3D floorplan (0.82% perf per 1% f, f:Vcc 1:1)",
    );
    match run_one("table5", WorkloadParams::paper()) {
        Ok(artifact) => println!("{}", render::render(&artifact)),
        Err(e) => {
            eprintln!("table5 failed: {e}");
            std::process::exit(1);
        }
    }
    println!("conversions: 0.82% performance per 1% frequency; 1% frequency per 1% Vcc; P = V^2 f");
}
