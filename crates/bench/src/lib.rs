//! Shared helpers for the figure/table regenerator binaries and the
//! dependency-free benches under `benches/`.

use stacksim_core::TextTable;

pub mod perf;
pub mod timing;

/// Prints a standard banner naming the artefact being regenerated.
pub fn banner(artefact: &str, paper_ref: &str) {
    println!("== {artefact} ==");
    println!("   reproduces: {paper_ref}");
    println!();
}

/// Prints a rendered table followed by its CSV form when `--csv` was
/// passed on the command line.
pub fn emit(table: &TextTable) {
    println!("{}", table.render());
    if std::env::args().any(|a| a == "--csv") {
        println!("CSV:");
        println!("{}", table.to_csv());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_renders_without_panicking() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["1", "2"]);
        emit(&t);
        banner("Test", "nothing");
    }
}
