//! `stacksim bench`: end-to-end performance baselines written as JSON.
//!
//! Two files land in the output directory:
//!
//! - `BENCH_thermal.json` — the full Fig. 3 conductivity sweep solved three
//!   ways: the frozen pre-optimization solver
//!   ([`stacksim_thermal::reference`], the baseline every speedup is
//!   measured against), the optimized kernel solving every point cold
//!   (isolating the kernel gains), and the fast path (warm-started
//!   chaining, line-Z preconditioner, the requested thread count). The file
//!   records wall time, CG iteration counts, cell-update throughput and the
//!   speedup of fast over baseline, plus the worst peak-temperature
//!   disagreement between baseline and fast as a correctness guard.
//! - `BENCH_mem.json` — trace-generation and memory-hierarchy simulation
//!   throughput for the `gauss` RMS benchmark on the 32 MB stacked-DRAM
//!   option, in records per second; the engine leg is timed twice, with
//!   observability disabled (the shipping default) and enabled, and the
//!   artefact records the enabled/disabled wall-time ratio as
//!   `obs_overhead` — the live cost of the metrics layer (DESIGN.md §10).
//!   A `streamed` leg times the generate-while-simulate pipeline (kernels
//!   feeding the engine through bounded block channels, DESIGN.md §14) and
//!   `pipeline_speedup` compares it against serial generation + simulation.
//!
//! Both files are re-parsed after writing, so a malformed artefact fails
//! the run — CI's bench-smoke job relies on that.

use std::path::{Path, PathBuf};

use stacksim_core::harness::json::Json;
use stacksim_core::sensitivity::{fig3_cold_with, fig3_reference, fig3_stack, fig3_with};
use stacksim_core::Fig3Data;
use stacksim_mem::{Engine, EngineConfig, HierarchyConfig, MemoryHierarchy};
use stacksim_thermal::{Preconditioner, SolveStats, SolverConfig};
use stacksim_workloads::{RmsBenchmark, WorkloadParams};

use crate::timing::{bench_n, group, Sample};

/// How `stacksim bench` should run.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// One timed sample per benchmark instead of [`SAMPLES`] — for CI
    /// smoke runs, where only the artefact shape matters, not the numbers.
    pub quick: bool,
    /// Solver threads for the fast thermal configuration.
    pub threads: usize,
    /// Directory the `BENCH_*.json` files are written into.
    pub out_dir: PathBuf,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            quick: false,
            threads: 4,
            out_dir: PathBuf::from("."),
        }
    }
}

/// Timed samples per benchmark in a full (non-quick) run.
pub const SAMPLES: usize = 5;

/// Records per block in the streamed generate-while-simulate leg.
const STREAM_BLOCK_LEN: usize = 4096;

/// Runs both benchmark suites and writes the two JSON artefacts.
/// Returns the paths written, thermal first.
///
/// # Errors
///
/// Returns a message naming the failing stage: a solver failure, an
/// unwritable output directory, or a written file that fails to re-parse.
pub fn run(opts: &BenchOptions) -> Result<Vec<PathBuf>, String> {
    let samples = if opts.quick { 1 } else { SAMPLES };
    let thermal = bench_thermal(opts, samples)?;
    let mem = bench_mem(opts, samples);
    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", opts.out_dir.display()))?;
    let thermal_path = write_validated(&opts.out_dir.join("BENCH_thermal.json"), &thermal)?;
    let mem_path = write_validated(&opts.out_dir.join("BENCH_mem.json"), &mem)?;
    Ok(vec![thermal_path, mem_path])
}

/// Encodes `json` to `path` and re-parses the written bytes, so a
/// malformed artefact fails the run instead of landing on disk unnoticed.
fn write_validated(path: &Path, json: &Json) -> Result<PathBuf, String> {
    let text = json.encode();
    std::fs::write(path, &text).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    let back = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read back {}: {e}", path.display()))?;
    Json::parse(&back).map_err(|e| format!("{} does not re-parse: {e}", path.display()))?;
    println!("wrote {}", path.display());
    Ok(path.to_path_buf())
}

/// One timed solver configuration of the thermal benchmark.
struct ThermalLeg {
    label: &'static str,
    sample: Sample,
    stats: SolveStats,
    data: Fig3Data,
    threads: usize,
    preconditioner: Preconditioner,
    warm_start: bool,
}

impl ThermalLeg {
    fn to_json(&self, cells: usize) -> Json {
        let wall_s = self.sample.median_s;
        let updates = cells as f64 * self.stats.iterations as f64;
        Json::obj(vec![
            ("label", Json::Str(self.label.to_string())),
            ("wall_ns", Json::Num((wall_s * 1e9).round())),
            ("solves", Json::Num(self.stats.solves as f64)),
            ("cg_iterations", Json::Num(self.stats.iterations as f64)),
            ("threads", Json::Num(self.threads as f64)),
            (
                "preconditioner",
                Json::Str(self.preconditioner.label().to_string()),
            ),
            ("warm_start", Json::Bool(self.warm_start)),
            (
                "cell_updates_per_sec",
                Json::Num(if wall_s > 0.0 { updates / wall_s } else { 0.0 }),
            ),
        ])
    }
}

/// Times the Fig. 3 sweep through the frozen reference solver, the
/// optimized kernel run cold, and the full fast path, and builds the
/// artefact. The headline `speedup` is reference over fast — everything
/// this PR's solver work buys, combined; `kernel_speedup` isolates the
/// kernel-only share.
fn bench_thermal(opts: &BenchOptions, samples: usize) -> Result<Json, String> {
    group("thermal: fig3 conductivity sweep");

    let base_cfg = SolverConfig::default();
    let fast_cfg = SolverConfig::builder()
        .threads(opts.threads)
        .preconditioner(Preconditioner::LineZ)
        .build();

    // Untimed runs first: collect CG statistics and the result sets so the
    // artefact can record how far the slow and fast paths disagree.
    let (ref_data, ref_stats) = fig3_reference(base_cfg).map_err(|e| e.to_string())?;
    let (cold_data, cold_stats) = fig3_cold_with(base_cfg).map_err(|e| e.to_string())?;
    let (fast_data, fast_stats) = fig3_with(fast_cfg).map_err(|e| e.to_string())?;

    let ref_sample = bench_n("fig3_sweep/reference", samples, || fig3_reference(base_cfg));
    let cold_sample = bench_n("fig3_sweep/cold_jacobi_t1", samples, || {
        fig3_cold_with(base_cfg)
    });
    let fast_sample = bench_n("fig3_sweep/warm_linez", samples, || fig3_with(fast_cfg));

    let baseline = ThermalLeg {
        label: "reference",
        sample: ref_sample,
        stats: ref_stats,
        data: ref_data,
        threads: 1,
        preconditioner: Preconditioner::Jacobi,
        warm_start: false,
    };
    let kernel = ThermalLeg {
        label: "cold_jacobi_t1",
        sample: cold_sample,
        stats: cold_stats,
        data: cold_data,
        threads: 1,
        preconditioner: Preconditioner::Jacobi,
        warm_start: false,
    };
    let fast = ThermalLeg {
        label: "warm_linez",
        sample: fast_sample,
        stats: fast_stats,
        data: fast_data,
        threads: opts.threads,
        preconditioner: Preconditioner::LineZ,
        warm_start: true,
    };

    let ny = (base_cfg.nx * 17 / 20).max(1);
    let (stack, _) = fig3_stack(&base_cfg).map_err(|e| e.to_string())?;
    let cells = base_cfg.nx * ny * stack.layers().len();
    let ratio = |num: &ThermalLeg, den: &ThermalLeg| {
        if den.sample.median_s > 0.0 {
            num.sample.median_s / den.sample.median_s
        } else {
            0.0
        }
    };
    let speedup = ratio(&baseline, &fast);
    let kernel_speedup = ratio(&baseline, &kernel);
    println!("speedup: {speedup:.2}x vs reference (kernel alone {kernel_speedup:.2}x, median over {samples} samples)");

    Ok(Json::obj(vec![
        ("benchmark", Json::Str("fig3_sweep".to_string())),
        ("quick", Json::Bool(opts.quick)),
        ("samples", Json::Num(samples as f64)),
        (
            "grid",
            Json::obj(vec![
                ("nx", Json::Num(base_cfg.nx as f64)),
                ("ny", Json::Num(ny as f64)),
                ("layers", Json::Num(stack.layers().len() as f64)),
                ("cells", Json::Num(cells as f64)),
            ]),
        ),
        ("baseline", baseline.to_json(cells)),
        ("kernel", kernel.to_json(cells)),
        ("fast", fast.to_json(cells)),
        ("speedup", Json::Num(speedup)),
        ("kernel_speedup", Json::Num(kernel_speedup)),
        (
            "peak_disagreement_c",
            Json::Num(peak_disagreement(&baseline.data, &fast.data)),
        ),
    ]))
}

/// Worst absolute peak-temperature difference between two Fig. 3 results
/// across every point of both curves. Both paths solve the same systems to
/// the same tolerance, so this stays within a small multiple of it.
fn peak_disagreement(a: &Fig3Data, b: &Fig3Data) -> f64 {
    let pairs = a
        .cu_metal
        .iter()
        .zip(&b.cu_metal)
        .chain(a.bond.iter().zip(&b.bond));
    pairs
        .map(|(p, q)| (p.peak_c - q.peak_c).abs())
        .fold(0.0, f64::max)
}

/// Times gauss trace generation and hierarchy simulation and builds the
/// artefact.
fn bench_mem(opts: &BenchOptions, samples: usize) -> Json {
    group("mem: gauss trace + 32MB stacked-DRAM hierarchy");
    let params = if opts.quick {
        WorkloadParams::test()
    } else {
        WorkloadParams::paper()
    };
    let benchmark = RmsBenchmark::Gauss;

    let gen_sample = bench_n("trace_generation/gauss", samples, || {
        benchmark.generate(&params)
    });
    let trace = benchmark.generate(&params);
    let records = trace.len() as f64;

    let cfg = HierarchyConfig::stacked_dram_32mb();
    // Build (and thereby validate) the hierarchy once; each timed
    // iteration starts from a clone of the cold prototype.
    let proto = match MemoryHierarchy::new(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("stacked_dram_32mb preset rejected: {e}");
            return Json::obj(vec![("error", Json::Str(e.to_string()))]);
        }
    };
    let engine_sample = bench_n("hierarchy_simulation/gauss_32mb", samples, || {
        let mut e = Engine::new(proto.clone(), EngineConfig::default());
        e.run(&trace)
    });

    // Generate-while-simulate: kernels stream packed blocks through
    // bounded channels while the engine consumes them, so one wall-clock
    // interval covers both generation and simulation (DESIGN.md §14).
    let streamed_sample = bench_n("streamed_pipeline/gauss_32mb", samples, || {
        let stream = benchmark.stream(&params, STREAM_BLOCK_LEN);
        let window = stream.dep_window();
        let mut e = Engine::new(proto.clone(), EngineConfig::default());
        e.run_blocks(stream, window)
    });

    // The same leg with live metrics: counters resolve and count, no
    // event sink. The ratio against the disabled leg is the price of
    // turning observability on; disabled, the instruments cost one
    // relaxed atomic load per call site.
    stacksim_obs::enable();
    let engine_obs_sample = bench_n("hierarchy_simulation/gauss_32mb_obs", samples, || {
        let mut e = Engine::new(proto.clone(), EngineConfig::default());
        e.run(&trace)
    });
    stacksim_obs::disable();
    stacksim_obs::reset();
    let obs_overhead = if engine_sample.median_s > 0.0 {
        engine_obs_sample.median_s / engine_sample.median_s
    } else {
        0.0
    };
    println!("obs overhead: {obs_overhead:.3}x (enabled vs disabled engine leg)");
    // what overlap buys: serial generate-then-simulate vs the pipeline
    let pipeline_speedup = if streamed_sample.median_s > 0.0 {
        (gen_sample.median_s + engine_sample.median_s) / streamed_sample.median_s
    } else {
        0.0
    };
    println!("pipeline speedup: {pipeline_speedup:.2}x (serial gen+sim vs streamed)");

    let per_sec = |s: Sample| {
        if s.median_s > 0.0 {
            records / s.median_s
        } else {
            0.0
        }
    };
    Json::obj(vec![
        ("benchmark", Json::Str("gauss".to_string())),
        ("quick", Json::Bool(opts.quick)),
        ("samples", Json::Num(samples as f64)),
        ("hierarchy", Json::Str("stacked_dram_32mb".to_string())),
        ("records", Json::Num(records)),
        (
            "trace_generation",
            Json::obj(vec![
                ("wall_ns", Json::Num((gen_sample.median_s * 1e9).round())),
                ("records_per_sec", Json::Num(per_sec(gen_sample))),
            ]),
        ),
        (
            "engine",
            Json::obj(vec![
                ("wall_ns", Json::Num((engine_sample.median_s * 1e9).round())),
                ("records_per_sec", Json::Num(per_sec(engine_sample))),
            ]),
        ),
        (
            "engine_obs",
            Json::obj(vec![
                (
                    "wall_ns",
                    Json::Num((engine_obs_sample.median_s * 1e9).round()),
                ),
                ("records_per_sec", Json::Num(per_sec(engine_obs_sample))),
            ]),
        ),
        (
            "streamed",
            Json::obj(vec![
                (
                    "wall_ns",
                    Json::Num((streamed_sample.median_s * 1e9).round()),
                ),
                ("records_per_sec", Json::Num(per_sec(streamed_sample))),
                ("block_len", Json::Num(STREAM_BLOCK_LEN as f64)),
            ]),
        ),
        ("pipeline_speedup", Json::Num(pipeline_speedup)),
        ("obs_overhead", Json::Num(obs_overhead)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A quick single-sample run writes both artefacts and they re-parse
    /// with the fields the smoke job greps for.
    #[test]
    fn quick_bench_writes_valid_artefacts() {
        let dir = std::env::temp_dir().join("stacksim-bench-test");
        let opts = BenchOptions {
            quick: true,
            threads: 2,
            out_dir: dir.clone(),
        };
        let paths = run(&opts).unwrap();
        assert_eq!(paths.len(), 2);
        let thermal = Json::parse(&std::fs::read_to_string(&paths[0]).unwrap()).unwrap();
        for key in [
            "baseline",
            "kernel",
            "fast",
            "speedup",
            "kernel_speedup",
            "grid",
            "peak_disagreement_c",
        ] {
            assert!(thermal.get(key).is_some(), "BENCH_thermal.json lacks {key}");
        }
        assert!(thermal.get("speedup").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(
            thermal
                .get("baseline")
                .and_then(|b| b.get("label"))
                .and_then(Json::as_str),
            Some("reference"),
            "the speedup denominator must be the frozen reference solver"
        );
        let disagreement = thermal
            .get("peak_disagreement_c")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(
            disagreement < 0.1,
            "baseline and fast paths disagree by {disagreement} C"
        );
        let mem = Json::parse(&std::fs::read_to_string(&paths[1]).unwrap()).unwrap();
        for key in [
            "trace_generation",
            "engine",
            "engine_obs",
            "streamed",
            "pipeline_speedup",
            "obs_overhead",
            "records",
        ] {
            assert!(mem.get(key).is_some(), "BENCH_mem.json lacks {key}");
        }
        assert!(mem.get("obs_overhead").unwrap().as_f64().unwrap() > 0.0);
        let streamed = mem.get("streamed").unwrap();
        assert!(
            streamed.get("records_per_sec").unwrap().as_f64().unwrap() > 0.0,
            "streamed leg must process records"
        );
    }
}
