//! A minimal wall-clock micro-benchmark harness.
//!
//! The workspace builds without registry access, so the benches cannot use
//! Criterion; this module provides the small subset the bench targets
//! need: warm-up, repeated sampling and a median/min/mean report line.

use std::hint::black_box;
use std::time::Instant;

/// Number of timed samples per benchmark (after one warm-up call).
pub const DEFAULT_SAMPLES: usize = 10;

/// One benchmark's timing summary, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Fastest observed run.
    pub min_s: f64,
    /// Median run.
    pub median_s: f64,
    /// Arithmetic mean.
    pub mean_s: f64,
}

impl Sample {
    /// Formats a duration with an adaptive unit.
    fn fmt(s: f64) -> String {
        if s >= 1.0 {
            format!("{s:.3} s")
        } else if s >= 1e-3 {
            format!("{:.3} ms", s * 1e3)
        } else {
            format!("{:.1} us", s * 1e6)
        }
    }
}

/// Runs `f` once as warm-up then `samples` timed iterations, printing a
/// Criterion-style summary line. Returns the summary for further checks.
pub fn bench_n<T>(name: &str, samples: usize, mut f: impl FnMut() -> T) -> Sample {
    black_box(f());
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    let s = Sample {
        min_s: times[0],
        median_s: times[times.len() / 2],
        mean_s: times.iter().sum::<f64>() / times.len() as f64,
    };
    println!(
        "{name:<40} min {:>10}  median {:>10}  mean {:>10}",
        Sample::fmt(s.min_s),
        Sample::fmt(s.median_s),
        Sample::fmt(s.mean_s)
    );
    s
}

/// [`bench_n`] with [`DEFAULT_SAMPLES`].
pub fn bench<T>(name: &str, f: impl FnMut() -> T) -> Sample {
    bench_n(name, DEFAULT_SAMPLES, f)
}

/// Prints a group header, mirroring Criterion's group naming.
pub fn group(name: &str) {
    println!("\n-- {name} --");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_sane_times() {
        let s = bench_n("noop", 3, || 1 + 1);
        assert!(s.min_s >= 0.0);
        assert!(s.min_s <= s.median_s && s.median_s <= s.mean_s * 3.0 + 1e-9);
    }
}
