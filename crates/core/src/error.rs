//! The one error type every study entry point returns.
//!
//! Before the harness existed each driver had its own shape — `fig5` and
//! `table4` were infallible, the thermal studies returned the solver's
//! [`SolveError`] directly, and the harness adds cache and scheduling
//! failures of its own. [`Error`] unifies all of them so callers match on
//! a single enum and `?` composes across the whole crate.

use std::fmt;
use std::path::PathBuf;

use stacksim_thermal::SolveError;

/// Any failure produced by the study drivers or the experiment harness.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The thermal solver failed (empty stack, bad power map, CG stall).
    Solve(SolveError),
    /// A memory-system configuration was rejected by validation before a
    /// hierarchy or engine could be built from it.
    Config(stacksim_mem::ConfigError),
    /// The logic+logic floorplan fold failed (a block could not be
    /// packed onto either die at the configured slack).
    Fold(stacksim_floorplan::FoldError),
    /// A filesystem operation of the memo cache or run report failed.
    Io {
        /// The path being read or written.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A memoized artifact on disk could not be parsed.
    CacheCorrupt {
        /// The cache file.
        path: PathBuf,
        /// What failed to parse.
        detail: String,
    },
    /// An experiment digest handed to the memo cache was not the
    /// lowercase-hex shape `Digest::hex` produces, so no shard (and no
    /// cache path) can be derived for it.
    MalformedDigest {
        /// The offending digest string.
        digest: String,
    },
    /// A requested experiment name is not in the registry.
    UnknownExperiment {
        /// The requested name.
        name: String,
    },
    /// An experiment names a dependency that is not registered.
    MissingDependency {
        /// The dependent experiment.
        experiment: String,
        /// The missing dependency.
        dependency: String,
    },
    /// The registry's dependency graph contains a cycle.
    DependencyCycle {
        /// An experiment on the cycle.
        name: String,
    },
    /// A dependency failed, so this experiment could not run.
    DependencyFailed {
        /// The experiment that was skipped.
        experiment: String,
        /// The dependency that failed first.
        dependency: String,
    },
    /// A worker thread running an experiment panicked.
    WorkerPanic {
        /// The experiment whose run panicked.
        experiment: String,
    },
    /// An experiment asked the run context for an artifact that is not
    /// available (not a declared dependency, or not yet produced).
    ArtifactUnavailable {
        /// The requesting experiment.
        experiment: String,
        /// The artifact asked for.
        wanted: String,
    },
    /// An artifact was present but of a different kind than the reader
    /// expected — a typed mismatch the runner can degrade on instead of
    /// panicking a worker.
    ArtifactKind {
        /// The experiment reading the artifact.
        experiment: String,
        /// Which artifact (usually a dependency name) was read.
        artifact: String,
        /// The kind the reader expected.
        expected: String,
        /// The kind actually found.
        actual: String,
    },
    /// The per-experiment wall-clock budget ran out before the
    /// experiment recovered (see
    /// [`Resilience::deadline_s`](crate::harness::Resilience)).
    DeadlineExceeded {
        /// The experiment that ran out of time.
        experiment: String,
        /// The configured budget in seconds.
        limit_s: f64,
    },
    /// A per-experiment iteration budget was exceeded by a (successful)
    /// run — a runaway guard, not a solver failure.
    BudgetExceeded {
        /// The experiment over budget.
        experiment: String,
        /// Which budget (e.g. `cg-iterations`).
        what: &'static str,
        /// The configured limit.
        limit: u64,
        /// What the run actually used.
        used: u64,
    },
    /// The session's admission control shed this submission: the number
    /// of queued-or-running requests already sits at the configured
    /// bound. Retryable by the *caller* (after backoff) — nothing was
    /// enqueued.
    Overloaded {
        /// Requests queued or running when the submission arrived.
        pending: u64,
        /// The configured admission bound.
        limit: u64,
    },
    /// Static validation rejected an experiment's machine description
    /// before dispatch (the `stacksim check` preflight).
    InvalidModel {
        /// The experiment whose model failed validation.
        experiment: String,
        /// The lint report with the rejecting diagnostics.
        report: stacksim_lint::Report,
    },
    /// An internal invariant of the harness was violated — a bug in the
    /// harness itself, not in the caller's configuration.
    Internal {
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Solve(e) => write!(f, "thermal solve failed: {e}"),
            Error::Config(e) => write!(f, "invalid memory configuration: {e}"),
            Error::Fold(e) => write!(f, "floorplan fold failed: {e}"),
            Error::Io { path, source } => {
                write!(f, "i/o error at {}: {source}", path.display())
            }
            Error::CacheCorrupt { path, detail } => {
                write!(f, "corrupt cache entry {}: {detail}", path.display())
            }
            Error::MalformedDigest { digest } => {
                write!(
                    f,
                    "malformed experiment digest '{digest}': expected lowercase hex"
                )
            }
            Error::UnknownExperiment { name } => {
                write!(f, "no experiment named '{name}' is registered")
            }
            Error::MissingDependency {
                experiment,
                dependency,
            } => write!(
                f,
                "experiment '{experiment}' depends on unregistered '{dependency}'"
            ),
            Error::DependencyCycle { name } => {
                write!(f, "dependency cycle through experiment '{name}'")
            }
            Error::DependencyFailed {
                experiment,
                dependency,
            } => write!(
                f,
                "experiment '{experiment}' skipped: dependency '{dependency}' failed"
            ),
            Error::WorkerPanic { experiment } => {
                write!(f, "experiment '{experiment}' panicked")
            }
            Error::ArtifactUnavailable { experiment, wanted } => write!(
                f,
                "experiment '{experiment}' asked for unavailable artifact '{wanted}'"
            ),
            Error::ArtifactKind {
                experiment,
                artifact,
                expected,
                actual,
            } => write!(
                f,
                "experiment '{experiment}' read artifact '{artifact}' expecting kind \
                 '{expected}' but found '{actual}'"
            ),
            Error::DeadlineExceeded {
                experiment,
                limit_s,
            } => write!(
                f,
                "experiment '{experiment}' exceeded its {limit_s} s deadline budget"
            ),
            Error::BudgetExceeded {
                experiment,
                what,
                limit,
                used,
            } => write!(
                f,
                "experiment '{experiment}' exceeded its {what} budget: used {used} of {limit}"
            ),
            Error::Overloaded { pending, limit } => write!(
                f,
                "session overloaded: {pending} requests in flight at the limit of {limit}"
            ),
            Error::InvalidModel { experiment, report } => write!(
                f,
                "experiment '{experiment}' failed model validation:\n{}",
                report.render_pretty()
            ),
            Error::Internal { detail } => {
                write!(f, "internal harness invariant violated: {detail}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Solve(e) => Some(e),
            Error::Config(e) => Some(e),
            Error::Fold(e) => Some(e),
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<SolveError> for Error {
    fn from(e: SolveError) -> Self {
        Error::Solve(e)
    }
}

impl From<stacksim_mem::ConfigError> for Error {
    fn from(e: stacksim_mem::ConfigError) -> Self {
        Error::Config(e)
    }
}

impl From<stacksim_floorplan::FoldError> for Error {
    fn from(e: stacksim_floorplan::FoldError) -> Self {
        Error::Fold(e)
    }
}

impl Error {
    /// Wraps an I/O error with the path it happened at.
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        Error::Io {
            path: path.into(),
            source,
        }
    }

    /// A stable machine-readable tag for this failure class, used by the
    /// `stacksim-failures/1` report (so consumers never parse Display
    /// text).
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Solve(_) => "solve",
            Error::Config(_) => "config",
            Error::Fold(_) => "fold",
            Error::Io { .. } => "io",
            Error::CacheCorrupt { .. } => "cache-corrupt",
            Error::MalformedDigest { .. } => "malformed-digest",
            Error::UnknownExperiment { .. } => "unknown-experiment",
            Error::MissingDependency { .. } => "missing-dependency",
            Error::DependencyCycle { .. } => "dependency-cycle",
            Error::DependencyFailed { .. } => "dependency-failed",
            Error::WorkerPanic { .. } => "worker-panic",
            Error::ArtifactUnavailable { .. } => "artifact-unavailable",
            Error::ArtifactKind { .. } => "artifact-kind",
            Error::DeadlineExceeded { .. } => "deadline",
            Error::BudgetExceeded { .. } => "budget",
            Error::Overloaded { .. } => "overloaded",
            Error::InvalidModel { .. } => "invalid-model",
            Error::Internal { .. } => "internal",
        }
    }

    /// Whether this failure class is worth retrying: transient I/O and
    /// worker panics often clear on a re-run (and injected transients
    /// always do); everything else is deterministic.
    pub fn is_transient(&self) -> bool {
        matches!(self, Error::Io { .. } | Error::WorkerPanic { .. })
    }
}

/// Crate-wide result alias.
pub type Result<T, E = Error> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn displays_and_sources_compose() {
        let e = Error::from(SolveError::EmptyStack);
        assert!(e.to_string().contains("no layers"));
        assert!(e.source().is_some());

        let io = Error::io(
            "/tmp/x",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert!(io.to_string().contains("/tmp/x"));
        assert!(io.source().is_some());

        let u = Error::UnknownExperiment {
            name: "fig99".into(),
        };
        assert!(u.to_string().contains("fig99"));
        assert!(u.source().is_none());
    }

    #[test]
    fn invalid_model_carries_the_report() {
        let mut report = stacksim_lint::Report::new();
        report.error("SL001", "fig8.die0", "blocks overlap");
        let e = Error::InvalidModel {
            experiment: "fig8".into(),
            report,
        };
        let text = e.to_string();
        assert!(text.contains("fig8"));
        assert!(text.contains("SL001"));
    }

    #[test]
    fn internal_names_the_invariant() {
        let e = Error::Internal {
            detail: "ready queue empty with work pending".into(),
        };
        assert!(e.to_string().contains("ready queue"));
    }
}
