//! Typed experiment results and their deterministic JSON codecs.
//!
//! Every [`Experiment`](super::Experiment) produces an [`Artifact`]. The
//! artifact serializes to a canonical JSON string (`encode`) that the memo
//! cache writes to disk and `decode` reverses exactly — including `f64`
//! bit patterns — so a cache hit is indistinguishable from a fresh run and
//! parallel/serial byte-level comparisons are meaningful.

use stacksim_floorplan::PowerGrid;
use stacksim_ooo::WirePath;
use stacksim_thermal::sweep::SweepPoint;
use stacksim_thermal::TemperatureField;
use stacksim_workloads::RmsBenchmark;

use super::json::Json;
use crate::logic_logic::{Fig11Point, Table4, Table4Row, Table5Row};
use crate::memory_logic::{Fig5Data, Fig5Row, Headline, ThermalPoint};
use crate::sensitivity::Fig3Data;
use crate::stacking::StackOption;

/// A typed experiment result.
#[derive(Debug, Clone, PartialEq)]
pub enum Artifact {
    /// The two Fig. 3 sensitivity curves.
    Fig3(Fig3Data),
    /// One benchmark's Fig. 5 bar group.
    Fig5Row(Fig5Row),
    /// The full Fig. 5 data set.
    Fig5(Fig5Data),
    /// The Fig. 6 baseline power map and temperature field.
    Fig6 {
        /// The planar die's power map.
        power: PowerGrid,
        /// The solved temperature field.
        field: TemperatureField,
    },
    /// The Fig. 8 per-option thermal points.
    Fig8(Vec<ThermalPoint>),
    /// The Fig. 11 thermal comparison.
    Fig11(Vec<Fig11Point>),
    /// The Table 4 per-path gains.
    Table4(Table4),
    /// The Table 5 V/f-scaling rows.
    Table5(Vec<Table5Row>),
    /// The §3 headline numbers.
    Headline(Headline),
    /// One design-space sub-experiment result: an ordered list of named
    /// scalar metrics, generic enough for any `stacksim explore` axis.
    ExplorePoint {
        /// `(metric, value)` pairs in a fixed, digest-stable order.
        metrics: Vec<(String, f64)>,
    },
}

impl Artifact {
    /// The tag stored in the serialized form.
    pub fn kind(&self) -> &'static str {
        match self {
            Artifact::Fig3(_) => "fig3",
            Artifact::Fig5Row(_) => "fig5_row",
            Artifact::Fig5(_) => "fig5",
            Artifact::Fig6 { .. } => "fig6",
            Artifact::Fig8(_) => "fig8",
            Artifact::Fig11(_) => "fig11",
            Artifact::Table4(_) => "table4",
            Artifact::Table5(_) => "table5",
            Artifact::Headline(_) => "headline",
            Artifact::ExplorePoint { .. } => "explore_point",
        }
    }

    /// Serializes to the canonical JSON string.
    pub fn encode(&self) -> String {
        self.to_json().encode()
    }

    /// Parses a string produced by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Describes the first structural problem found.
    pub fn decode(text: &str) -> Result<Artifact, String> {
        Artifact::from_json(&Json::parse(text)?)
    }

    /// The JSON form.
    pub fn to_json(&self) -> Json {
        let body = match self {
            Artifact::Fig3(d) => Json::obj(vec![
                ("cu_metal", sweep_to_json(&d.cu_metal)),
                ("bond", sweep_to_json(&d.bond)),
            ]),
            Artifact::Fig5Row(r) => fig5_row_to_json(r),
            Artifact::Fig5(d) => Json::Arr(d.rows.iter().map(fig5_row_to_json).collect()),
            Artifact::Fig6 { power, field } => Json::obj(vec![
                ("power", power_to_json(power)),
                ("field", field_to_json(field)),
            ]),
            Artifact::Fig8(points) => Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("option", Json::Str(p.option.label().into())),
                            ("peak_c", Json::Num(p.peak_c)),
                            ("power_w", Json::Num(p.power_w)),
                            ("field", field_to_json(&p.field)),
                        ])
                    })
                    .collect(),
            ),
            Artifact::Fig11(points) => Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("label", Json::Str(p.label.into())),
                            ("peak_c", Json::Num(p.peak_c)),
                            ("power_w", Json::Num(p.power_w)),
                            ("paper_c", Json::Num(p.paper_c)),
                        ])
                    })
                    .collect(),
            ),
            Artifact::Table4(t) => Json::obj(vec![
                (
                    "rows",
                    Json::Arr(
                        t.rows
                            .iter()
                            .map(|r| {
                                Json::obj(vec![
                                    ("path", Json::Str(r.path.name().into())),
                                    ("measured_pct", Json::Num(r.measured_pct)),
                                    ("paper_pct", Json::Num(r.paper_pct)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("total_pct", Json::Num(t.total_pct)),
            ]),
            Artifact::Table5(rows) => Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("label", Json::Str(r.label.into())),
                            ("power_w", Json::Num(r.power_w)),
                            ("power_pct", Json::Num(r.power_pct)),
                            ("temp_c", Json::Num(r.temp_c)),
                            ("perf_pct", Json::Num(r.perf_pct)),
                            ("vcc", Json::Num(r.vcc)),
                            ("freq", Json::Num(r.freq)),
                        ])
                    })
                    .collect(),
            ),
            Artifact::Headline(h) => Json::obj(vec![
                ("mean_cpma_reduction", Json::Num(h.mean_cpma_reduction)),
                ("peak_cpma_reduction", Json::Num(h.peak_cpma_reduction)),
                (
                    "bandwidth_reduction_factor",
                    Json::Num(h.bandwidth_reduction_factor),
                ),
                ("bus_power_saving_w", Json::Num(h.bus_power_saving_w)),
                ("baseline_bus_power_w", Json::Num(h.baseline_bus_power_w)),
            ]),
            Artifact::ExplorePoint { metrics } => Json::Arr(
                metrics
                    .iter()
                    .map(|(name, value)| {
                        Json::obj(vec![
                            ("name", Json::Str(name.clone())),
                            ("value", Json::Num(*value)),
                        ])
                    })
                    .collect(),
            ),
        };
        Json::obj(vec![
            ("kind", Json::Str(self.kind().into())),
            ("data", body),
        ])
    }

    /// Rebuilds the typed artifact from its JSON form.
    ///
    /// # Errors
    ///
    /// Describes the first structural problem found.
    pub fn from_json(j: &Json) -> Result<Artifact, String> {
        let kind = j
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("artifact has no 'kind' tag")?;
        let data = j.get("data").ok_or("artifact has no 'data' member")?;
        match kind {
            "fig3" => Ok(Artifact::Fig3(Fig3Data {
                cu_metal: sweep_from_json(field(data, "cu_metal")?)?,
                bond: sweep_from_json(field(data, "bond")?)?,
            })),
            "fig5_row" => Ok(Artifact::Fig5Row(fig5_row_from_json(data)?)),
            "fig5" => Ok(Artifact::Fig5(Fig5Data {
                rows: arr(data)?
                    .iter()
                    .map(fig5_row_from_json)
                    .collect::<Result<_, _>>()?,
            })),
            "fig6" => Ok(Artifact::Fig6 {
                power: power_from_json(field(data, "power")?)?,
                field: field_from_json(field(data, "field")?)?,
            }),
            "fig8" => Ok(Artifact::Fig8(
                arr(data)?
                    .iter()
                    .map(|p| {
                        Ok(ThermalPoint {
                            option: option_from_label(str_field(p, "option")?)?,
                            peak_c: num_field(p, "peak_c")?,
                            power_w: num_field(p, "power_w")?,
                            field: field_from_json(field(p, "field")?)?,
                        })
                    })
                    .collect::<Result<_, String>>()?,
            )),
            "fig11" => Ok(Artifact::Fig11(
                arr(data)?
                    .iter()
                    .map(|p| {
                        let label = match str_field(p, "label")? {
                            "2D Baseline" => "2D Baseline",
                            "3D" => "3D",
                            "3D Worstcase" => "3D Worstcase",
                            other => return Err(format!("unknown fig11 label '{other}'")),
                        };
                        Ok(Fig11Point {
                            label,
                            peak_c: num_field(p, "peak_c")?,
                            power_w: num_field(p, "power_w")?,
                            paper_c: num_field(p, "paper_c")?,
                        })
                    })
                    .collect::<Result<_, String>>()?,
            )),
            "table4" => Ok(Artifact::Table4(Table4 {
                rows: arr(field(data, "rows")?)?
                    .iter()
                    .map(|r| {
                        let path = wire_path_from_name(str_field(r, "path")?)?;
                        Ok(Table4Row {
                            path,
                            stages: path.paper_stage_reduction(),
                            measured_pct: num_field(r, "measured_pct")?,
                            paper_pct: num_field(r, "paper_pct")?,
                        })
                    })
                    .collect::<Result<_, String>>()?,
                total_pct: num_field(data, "total_pct")?,
            })),
            "table5" => Ok(Artifact::Table5(
                arr(data)?
                    .iter()
                    .map(|r| {
                        let label = match str_field(r, "label")? {
                            "Baseline" => "Baseline",
                            "Same Pwr" => "Same Pwr",
                            "Same Freq." => "Same Freq.",
                            "Same Temp" => "Same Temp",
                            "Same Perf." => "Same Perf.",
                            other => return Err(format!("unknown table5 label '{other}'")),
                        };
                        Ok(Table5Row {
                            label,
                            power_w: num_field(r, "power_w")?,
                            power_pct: num_field(r, "power_pct")?,
                            temp_c: num_field(r, "temp_c")?,
                            perf_pct: num_field(r, "perf_pct")?,
                            vcc: num_field(r, "vcc")?,
                            freq: num_field(r, "freq")?,
                        })
                    })
                    .collect::<Result<_, String>>()?,
            )),
            "headline" => Ok(Artifact::Headline(Headline {
                mean_cpma_reduction: num_field(data, "mean_cpma_reduction")?,
                peak_cpma_reduction: num_field(data, "peak_cpma_reduction")?,
                bandwidth_reduction_factor: num_field(data, "bandwidth_reduction_factor")?,
                bus_power_saving_w: num_field(data, "bus_power_saving_w")?,
                baseline_bus_power_w: num_field(data, "baseline_bus_power_w")?,
            })),
            "explore_point" => Ok(Artifact::ExplorePoint {
                metrics: arr(data)?
                    .iter()
                    .map(|m| Ok((str_field(m, "name")?.to_string(), num_field(m, "value")?)))
                    .collect::<Result<_, String>>()?,
            }),
            other => Err(format!("unknown artifact kind '{other}'")),
        }
    }
}

fn field<'a>(j: &'a Json, key: &str) -> Result<&'a Json, String> {
    j.get(key).ok_or_else(|| format!("missing member '{key}'"))
}

fn num_field(j: &Json, key: &str) -> Result<f64, String> {
    field(j, key)?
        .as_f64()
        .ok_or_else(|| format!("member '{key}' is not a number"))
}

fn str_field<'a>(j: &'a Json, key: &str) -> Result<&'a str, String> {
    field(j, key)?
        .as_str()
        .ok_or_else(|| format!("member '{key}' is not a string"))
}

fn arr(j: &Json) -> Result<&[Json], String> {
    j.as_arr().ok_or_else(|| "expected an array".to_string())
}

fn num_vec(j: &Json) -> Result<Vec<f64>, String> {
    arr(j)?
        .iter()
        .map(|v| v.as_f64().ok_or_else(|| "expected a number".to_string()))
        .collect()
}

fn num_array4(j: &Json, key: &str) -> Result<[f64; 4], String> {
    let v = num_vec(field(j, key)?)?;
    v.try_into()
        .map_err(|_| format!("member '{key}' is not a 4-array"))
}

fn sweep_to_json(points: &[SweepPoint]) -> Json {
    Json::Arr(
        points
            .iter()
            .map(|p| Json::obj(vec![("k", Json::Num(p.k)), ("peak_c", Json::Num(p.peak_c))]))
            .collect(),
    )
}

fn sweep_from_json(j: &Json) -> Result<Vec<SweepPoint>, String> {
    arr(j)?
        .iter()
        .map(|p| {
            Ok(SweepPoint {
                k: num_field(p, "k")?,
                peak_c: num_field(p, "peak_c")?,
            })
        })
        .collect()
}

fn fig5_row_to_json(r: &Fig5Row) -> Json {
    Json::obj(vec![
        ("benchmark", Json::Str(r.benchmark.name().into())),
        ("cpma", Json::nums(r.cpma)),
        ("bandwidth", Json::nums(r.bandwidth)),
    ])
}

fn fig5_row_from_json(j: &Json) -> Result<Fig5Row, String> {
    let name = str_field(j, "benchmark")?;
    let benchmark = RmsBenchmark::all()
        .into_iter()
        .find(|b| b.name() == name)
        .ok_or_else(|| format!("unknown benchmark '{name}'"))?;
    Ok(Fig5Row {
        benchmark,
        cpma: num_array4(j, "cpma")?,
        bandwidth: num_array4(j, "bandwidth")?,
    })
}

fn option_from_label(label: &str) -> Result<StackOption, String> {
    StackOption::all()
        .into_iter()
        .find(|o| o.label() == label)
        .ok_or_else(|| format!("unknown stack option '{label}'"))
}

fn wire_path_from_name(name: &str) -> Result<WirePath, String> {
    WirePath::all()
        .into_iter()
        .find(|p| p.name() == name)
        .ok_or_else(|| format!("unknown wire path '{name}'"))
}

fn power_to_json(g: &PowerGrid) -> Json {
    let (nx, ny) = g.dims();
    let (w, h) = g.die_dims();
    Json::obj(vec![
        ("nx", Json::Num(nx as f64)),
        ("ny", Json::Num(ny as f64)),
        ("width", Json::Num(w)),
        ("height", Json::Num(h)),
        ("cells", Json::nums(g.cells().iter().copied())),
    ])
}

fn power_from_json(j: &Json) -> Result<PowerGrid, String> {
    let nx = num_field(j, "nx")? as usize;
    let ny = num_field(j, "ny")? as usize;
    let cells = num_vec(field(j, "cells")?)?;
    if cells.len() != nx * ny {
        return Err(format!(
            "power grid is {}x{} but has {} cells",
            nx,
            ny,
            cells.len()
        ));
    }
    let mut g = PowerGrid::zero(nx, ny, num_field(j, "width")?, num_field(j, "height")?);
    for j_row in 0..ny {
        for i in 0..nx {
            g.add(i, j_row, cells[j_row * nx + i]);
        }
    }
    Ok(g)
}

fn field_to_json(f: &TemperatureField) -> Json {
    let (nx, ny) = f.dims();
    let t: Vec<f64> = (0..f.layer_count())
        .flat_map(|l| f.layer(l).iter().copied())
        .collect();
    Json::obj(vec![
        ("nx", Json::Num(nx as f64)),
        ("ny", Json::Num(ny as f64)),
        (
            "layers",
            Json::Arr(
                f.layer_names()
                    .iter()
                    .map(|n| Json::Str(n.clone()))
                    .collect(),
            ),
        ),
        ("t", Json::nums(t)),
    ])
}

fn field_from_json(j: &Json) -> Result<TemperatureField, String> {
    let nx = num_field(j, "nx")? as usize;
    let ny = num_field(j, "ny")? as usize;
    let layers: Vec<String> = arr(field(j, "layers")?)?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| "layer name is not a string".to_string())
        })
        .collect::<Result<_, _>>()?;
    let t = num_vec(field(j, "t")?)?;
    if t.len() != nx * ny * layers.len() {
        return Err(format!(
            "field is {}x{}x{} but has {} cells",
            layers.len(),
            ny,
            nx,
            t.len()
        ));
    }
    Ok(TemperatureField::from_parts(nx, ny, layers, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The typed mismatch error the round-trip tests report instead of
    /// panicking: a panic here reads as a harness bug, while the typed
    /// error names both kinds.
    fn wrong_kind(expected: &str, actual: &Artifact) -> crate::error::Error {
        crate::error::Error::ArtifactKind {
            experiment: "artifact-round-trip".to_string(),
            artifact: "decoded".to_string(),
            expected: expected.to_string(),
            actual: actual.kind().to_string(),
        }
    }

    #[test]
    fn fig5_row_round_trips_exactly() -> Result<(), crate::error::Error> {
        let row = Fig5Row {
            benchmark: RmsBenchmark::Gauss,
            cpma: [std::f64::consts::PI, 2.0, 1.0 / 3.0, 0.1],
            bandwidth: [12.25, 8.5, 4.125, f64::INFINITY],
        };
        let a = Artifact::Fig5Row(row.clone());
        let text = a.encode();
        match Artifact::decode(&text).unwrap() {
            Artifact::Fig5Row(back) => {
                assert_eq!(back.benchmark, row.benchmark);
                for i in 0..4 {
                    assert_eq!(back.cpma[i].to_bits(), row.cpma[i].to_bits());
                    assert_eq!(back.bandwidth[i].to_bits(), row.bandwidth[i].to_bits());
                }
            }
            other => return Err(wrong_kind("fig5_row", &other)),
        }
        // canonical: re-encoding the decoded artifact is byte-identical
        assert_eq!(Artifact::decode(&text).unwrap().encode(), text);
        Ok(())
    }

    #[test]
    fn temperature_field_round_trips() -> Result<(), crate::error::Error> {
        let f = TemperatureField::from_parts(
            2,
            2,
            vec!["a".into(), "b".into()],
            vec![1.5, 2.25, 3.0, 4.125, 5.0, 6.5, 7.75, 8.0],
        );
        let a = Artifact::Fig6 {
            power: {
                let mut g = PowerGrid::zero(2, 2, 10.0, 8.0);
                g.add(0, 1, 42.5);
                g
            },
            field: f.clone(),
        };
        match Artifact::decode(&a.encode()).unwrap() {
            Artifact::Fig6 { power, field } => {
                assert_eq!(field, f);
                assert_eq!(power.get(0, 1), 42.5);
                assert_eq!(power.dims(), (2, 2));
            }
            other => return Err(wrong_kind("fig6", &other)),
        }
        Ok(())
    }

    #[test]
    fn explore_point_round_trips_exactly() -> Result<(), crate::error::Error> {
        let a = Artifact::ExplorePoint {
            metrics: vec![
                ("cpma".to_string(), 1.0 / 3.0),
                ("offdie_gb_per_sec".to_string(), 12.0625),
            ],
        };
        let text = a.encode();
        match Artifact::decode(&text).unwrap() {
            Artifact::ExplorePoint { metrics } => {
                assert_eq!(metrics.len(), 2);
                assert_eq!(metrics[0].0, "cpma");
                assert_eq!(metrics[0].1.to_bits(), (1.0f64 / 3.0).to_bits());
                assert_eq!(metrics[1].0, "offdie_gb_per_sec");
            }
            other => return Err(wrong_kind("explore_point", &other)),
        }
        assert_eq!(Artifact::decode(&text).unwrap().encode(), text);
        Ok(())
    }

    #[test]
    fn decode_rejects_unknown_names() {
        assert!(Artifact::decode("{\"kind\":\"fig99\",\"data\":null}").is_err());
        let bad_bench =
            "{\"kind\":\"fig5_row\",\"data\":{\"benchmark\":\"nope\",\"cpma\":[1,1,1,1],\"bandwidth\":[1,1,1,1]}}";
        assert!(Artifact::decode(bad_bench).is_err());
    }
}
