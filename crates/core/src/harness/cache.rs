//! The on-disk artifact memo cache.
//!
//! One file per solved experiment point, named
//! `<experiment>-<digest>.json` (with `:` sanitized to `_` for
//! portability). The digest already encodes every input, so a file's mere
//! existence means the point is solved — loading it replaces the run.

use std::fs;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};

use super::artifact::Artifact;
use crate::error::Error;

/// A directory of memoized artifacts, or a disabled no-op cache.
#[derive(Debug, Clone, Default)]
pub struct MemoCache {
    dir: Option<PathBuf>,
}

impl MemoCache {
    /// A cache that never hits and never writes.
    pub fn disabled() -> Self {
        MemoCache { dir: None }
    }

    /// A cache rooted at `dir` (created lazily on first store).
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        MemoCache {
            dir: Some(dir.into()),
        }
    }

    /// Whether this cache can ever hit.
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// The file a given experiment point lives at, if caching is enabled.
    pub fn path_for(&self, name: &str, digest: &str) -> Option<PathBuf> {
        let dir = self.dir.as_ref()?;
        let safe: String = name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        Some(dir.join(format!("{safe}-{digest}.json")))
    }

    /// Loads a memoized artifact, if one exists.
    ///
    /// A zero-length file is treated as a miss and deleted: it is the
    /// footprint of a crash between `create` and `write` (or of a full
    /// disk), carries no data worth reporting, and would otherwise wedge
    /// the entry as permanently "corrupt".
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on filesystem failure other than "not found";
    /// [`Error::CacheCorrupt`] if the file exists but does not parse.
    pub fn load(&self, name: &str, digest: &str) -> Result<Option<Artifact>, Error> {
        let Some(path) = self.path_for(name, digest) else {
            return Ok(None);
        };
        let mut text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(Error::io(path, e)),
        };
        if stacksim_faults::armed() {
            use super::resilience;
            match stacksim_faults::check(resilience::SITE_CACHE_LOAD, name) {
                // corrupt only the in-memory copy: the on-disk file stays
                // intact for the quarantine path to move
                Some(stacksim_faults::Fault::Corrupt) => {
                    text.insert_str(0, "#injected-corruption\n");
                }
                Some(stacksim_faults::Fault::Truncate) => text.clear(),
                Some(stacksim_faults::Fault::IoTransient) => {
                    return Err(resilience::injected_io(resilience::SITE_CACHE_LOAD, name));
                }
                _ => {}
            }
        }
        if text.is_empty() {
            fs::remove_file(&path).map_err(|e| Error::io(path, e))?;
            return Ok(None);
        }
        match Artifact::decode(&text) {
            Ok(a) => Ok(Some(a)),
            Err(detail) => Err(Error::CacheCorrupt { path, detail }),
        }
    }

    /// Moves a (corrupt) cache entry into the `quarantine/` subdirectory
    /// so it never hits again but stays on disk for post-mortems.
    /// Returns the quarantined path, or `None` when the entry does not
    /// exist (or the cache is disabled).
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on filesystem failure.
    pub fn quarantine(&self, name: &str, digest: &str) -> Result<Option<PathBuf>, Error> {
        let Some(path) = self.path_for(name, digest) else {
            return Ok(None);
        };
        let Some(file_name) = path.file_name() else {
            return Ok(None);
        };
        let dir = path
            .parent()
            .unwrap_or_else(|| Path::new("."))
            .join(QUARANTINE_DIR);
        fs::create_dir_all(&dir).map_err(|e| Error::io(dir.clone(), e))?;
        let mut dest = dir.join(file_name);
        let mut suffix = 0u32;
        while dest.exists() {
            suffix += 1;
            let mut stamped = file_name.to_os_string();
            stamped.push(format!(".{suffix}"));
            dest = dir.join(stamped);
        }
        match fs::rename(&path, &dest) {
            Ok(()) => {}
            Err(e) if e.kind() == ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(Error::io(path, e)),
        }
        if stacksim_obs::enabled() {
            stacksim_obs::counter(super::obs::CACHE_QUARANTINED).add(1);
        }
        Ok(Some(dest))
    }

    /// Stores an artifact, creating the cache directory if needed.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on filesystem failure. A disabled cache stores
    /// nothing and succeeds.
    pub fn store(&self, name: &str, digest: &str, artifact: &Artifact) -> Result<(), Error> {
        let Some(path) = self.path_for(name, digest) else {
            return Ok(());
        };
        if stacksim_faults::armed() {
            use super::resilience;
            if let Some(stacksim_faults::Fault::IoTransient) =
                stacksim_faults::check(resilience::SITE_CACHE_STORE, name)
            {
                return Err(resilience::injected_io(resilience::SITE_CACHE_STORE, name));
            }
        }
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).map_err(|e| Error::io(parent.to_path_buf(), e))?;
        }
        // write-then-rename so a crash mid-write never leaves a corrupt
        // entry that poisons later runs
        let tmp = path.with_extension("json.tmp");
        let encoded = artifact.encode();
        fs::write(&tmp, &encoded).map_err(|e| Error::io(tmp.clone(), e))?;
        fs::rename(&tmp, &path).map_err(|e| Error::io(path, e))?;
        if stacksim_obs::enabled() {
            stacksim_obs::counter(super::obs::CACHE_BYTES_WRITTEN).add(encoded.len() as u64);
        }
        Ok(())
    }

    /// Deletes every cache entry, including quarantined ones. Missing
    /// directories are fine.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on filesystem failure.
    pub fn clean(&self) -> Result<usize, Error> {
        let Some(dir) = self.dir.as_ref() else {
            return Ok(0);
        };
        let mut removed = clean_dir(dir)?;
        let quarantine = dir.join(QUARANTINE_DIR);
        removed += clean_dir(&quarantine)?;
        match fs::remove_dir(&quarantine) {
            Ok(()) => {}
            Err(e) if e.kind() == ErrorKind::NotFound => {}
            // a foreign file keeps the directory alive; entries are gone
            Err(e) if e.kind() == ErrorKind::DirectoryNotEmpty => {}
            Err(e) => return Err(Error::io(quarantine, e)),
        }
        Ok(removed)
    }
}

/// Subdirectory corrupt entries are moved to.
const QUARANTINE_DIR: &str = "quarantine";

/// Removes every cache entry of one directory (non-recursive). Matches
/// `.json`, in-flight `.json.tmp`, and quarantined `.json.N` names.
fn clean_dir(dir: &Path) -> Result<usize, Error> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(Error::io(dir.to_path_buf(), e)),
    };
    let mut removed = 0;
    for entry in entries {
        let entry = entry.map_err(|e| Error::io(dir.to_path_buf(), e))?;
        let path = entry.path();
        let is_entry = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.contains(".json"));
        if path.is_file() && is_entry {
            fs::remove_file(&path).map_err(|e| Error::io(path, e))?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// Convenience: the default cache location under the target directory.
pub fn default_cache_dir() -> PathBuf {
    Path::new("target").join("stacksim-cache")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory_logic::Headline;

    fn sample() -> Artifact {
        Artifact::Headline(Headline {
            mean_cpma_reduction: 0.13,
            peak_cpma_reduction: 0.55,
            bandwidth_reduction_factor: 3.0,
            bus_power_saving_w: 0.5,
            baseline_bus_power_w: 0.75,
        })
    }

    #[test]
    fn disabled_cache_is_a_no_op() {
        let c = MemoCache::disabled();
        assert!(!c.is_enabled());
        c.store("fig5", "abc", &sample()).unwrap();
        assert!(c.load("fig5", "abc").unwrap().is_none());
        assert_eq!(c.clean().unwrap(), 0);
    }

    #[test]
    fn store_load_round_trip_and_clean() {
        let dir = std::env::temp_dir().join(format!("stacksim-cache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let c = MemoCache::at(&dir);
        assert!(c.load("fig5:gauss", "0011").unwrap().is_none());
        c.store("fig5:gauss", "0011", &sample()).unwrap();
        let back = c.load("fig5:gauss", "0011").unwrap().expect("hit");
        assert_eq!(back, sample());
        // a different digest misses
        assert!(c.load("fig5:gauss", "0012").unwrap().is_none());
        // corrupt entries are reported, not silently treated as misses
        let path = c.path_for("fig5:gauss", "0013").unwrap();
        fs::write(&path, "{not json").unwrap();
        assert!(matches!(
            c.load("fig5:gauss", "0013"),
            Err(Error::CacheCorrupt { .. })
        ));
        assert_eq!(c.clean().unwrap(), 2);
        assert!(c.load("fig5:gauss", "0011").unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    /// A zero-length cache file is a crash footprint, not data: loading
    /// it must read as a miss and remove the file so the entry heals.
    #[test]
    fn zero_byte_entry_is_a_miss_and_is_deleted() {
        let dir = std::env::temp_dir().join(format!("stacksim-cache-zero-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let c = MemoCache::at(&dir);
        c.store("fig3", "aa", &sample()).unwrap();
        let path = c.path_for("fig3", "aa").unwrap();
        fs::write(&path, "").unwrap();
        assert!(c.load("fig3", "aa").unwrap().is_none(), "reads as a miss");
        assert!(!path.exists(), "the empty file is deleted");
        // and the entry is usable again
        c.store("fig3", "aa", &sample()).unwrap();
        assert_eq!(c.load("fig3", "aa").unwrap(), Some(sample()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_moves_entries_aside_and_clean_sweeps_them() {
        let dir = std::env::temp_dir().join(format!("stacksim-cache-quar-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let c = MemoCache::at(&dir);
        assert!(
            c.quarantine("fig3", "aa").unwrap().is_none(),
            "no entry, nothing to quarantine"
        );
        c.store("fig3", "aa", &sample()).unwrap();
        let original = c.path_for("fig3", "aa").unwrap();
        let dest = c.quarantine("fig3", "aa").unwrap().expect("moved");
        assert!(!original.exists());
        assert!(dest.exists());
        assert!(dest.parent().unwrap().ends_with("quarantine"));
        assert!(c.load("fig3", "aa").unwrap().is_none(), "never hits again");
        // a second quarantine of the same name gets a distinct file
        c.store("fig3", "aa", &sample()).unwrap();
        let dest2 = c.quarantine("fig3", "aa").unwrap().expect("moved again");
        assert_ne!(dest, dest2);
        // clean() sweeps live and quarantined entries alike
        c.store("fig3", "aa", &sample()).unwrap();
        assert_eq!(c.clean().unwrap(), 3);
        assert!(!dest2.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_cache_quarantines_nothing() {
        let c = MemoCache::disabled();
        assert!(c.quarantine("fig3", "aa").unwrap().is_none());
    }
}
