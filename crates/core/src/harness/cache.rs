//! The on-disk artifact memo cache.
//!
//! One file per solved experiment point, named
//! `<experiment>-<digest>.json` (with `:` sanitized to `_` for
//! portability). The digest already encodes every input, so a file's mere
//! existence means the point is solved — loading it replaces the run.

use std::fs;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};

use super::artifact::Artifact;
use crate::error::Error;

/// A directory of memoized artifacts, or a disabled no-op cache.
#[derive(Debug, Clone, Default)]
pub struct MemoCache {
    dir: Option<PathBuf>,
}

impl MemoCache {
    /// A cache that never hits and never writes.
    pub fn disabled() -> Self {
        MemoCache { dir: None }
    }

    /// A cache rooted at `dir` (created lazily on first store).
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        MemoCache {
            dir: Some(dir.into()),
        }
    }

    /// Whether this cache can ever hit.
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// The file a given experiment point lives at, if caching is enabled.
    pub fn path_for(&self, name: &str, digest: &str) -> Option<PathBuf> {
        let dir = self.dir.as_ref()?;
        let safe: String = name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        Some(dir.join(format!("{safe}-{digest}.json")))
    }

    /// Loads a memoized artifact, if one exists.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on filesystem failure other than "not found";
    /// [`Error::CacheCorrupt`] if the file exists but does not parse.
    pub fn load(&self, name: &str, digest: &str) -> Result<Option<Artifact>, Error> {
        let Some(path) = self.path_for(name, digest) else {
            return Ok(None);
        };
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(Error::io(path, e)),
        };
        match Artifact::decode(&text) {
            Ok(a) => Ok(Some(a)),
            Err(detail) => Err(Error::CacheCorrupt { path, detail }),
        }
    }

    /// Stores an artifact, creating the cache directory if needed.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on filesystem failure. A disabled cache stores
    /// nothing and succeeds.
    pub fn store(&self, name: &str, digest: &str, artifact: &Artifact) -> Result<(), Error> {
        let Some(path) = self.path_for(name, digest) else {
            return Ok(());
        };
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).map_err(|e| Error::io(parent.to_path_buf(), e))?;
        }
        // write-then-rename so a crash mid-write never leaves a corrupt
        // entry that poisons later runs
        let tmp = path.with_extension("json.tmp");
        let encoded = artifact.encode();
        fs::write(&tmp, &encoded).map_err(|e| Error::io(tmp.clone(), e))?;
        fs::rename(&tmp, &path).map_err(|e| Error::io(path, e))?;
        if stacksim_obs::enabled() {
            stacksim_obs::counter(super::obs::CACHE_BYTES_WRITTEN).add(encoded.len() as u64);
        }
        Ok(())
    }

    /// Deletes every cache entry. Missing directories are fine.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on filesystem failure.
    pub fn clean(&self) -> Result<usize, Error> {
        let Some(dir) = self.dir.as_ref() else {
            return Ok(0);
        };
        let entries = match fs::read_dir(dir) {
            Ok(e) => e,
            Err(e) if e.kind() == ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(Error::io(dir.clone(), e)),
        };
        let mut removed = 0;
        for entry in entries {
            let entry = entry.map_err(|e| Error::io(dir.clone(), e))?;
            let path = entry.path();
            if path.extension().is_some_and(|x| x == "json" || x == "tmp") {
                fs::remove_file(&path).map_err(|e| Error::io(path, e))?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

/// Convenience: the default cache location under the target directory.
pub fn default_cache_dir() -> PathBuf {
    Path::new("target").join("stacksim-cache")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory_logic::Headline;

    fn sample() -> Artifact {
        Artifact::Headline(Headline {
            mean_cpma_reduction: 0.13,
            peak_cpma_reduction: 0.55,
            bandwidth_reduction_factor: 3.0,
            bus_power_saving_w: 0.5,
            baseline_bus_power_w: 0.75,
        })
    }

    #[test]
    fn disabled_cache_is_a_no_op() {
        let c = MemoCache::disabled();
        assert!(!c.is_enabled());
        c.store("fig5", "abc", &sample()).unwrap();
        assert!(c.load("fig5", "abc").unwrap().is_none());
        assert_eq!(c.clean().unwrap(), 0);
    }

    #[test]
    fn store_load_round_trip_and_clean() {
        let dir = std::env::temp_dir().join(format!("stacksim-cache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let c = MemoCache::at(&dir);
        assert!(c.load("fig5:gauss", "0011").unwrap().is_none());
        c.store("fig5:gauss", "0011", &sample()).unwrap();
        let back = c.load("fig5:gauss", "0011").unwrap().expect("hit");
        assert_eq!(back, sample());
        // a different digest misses
        assert!(c.load("fig5:gauss", "0012").unwrap().is_none());
        // corrupt entries are reported, not silently treated as misses
        let path = c.path_for("fig5:gauss", "0013").unwrap();
        fs::write(&path, "{not json").unwrap();
        assert!(matches!(
            c.load("fig5:gauss", "0013"),
            Err(Error::CacheCorrupt { .. })
        ));
        assert_eq!(c.clean().unwrap(), 2);
        assert!(c.load("fig5:gauss", "0011").unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
