//! The on-disk artifact memo cache.
//!
//! One file per solved experiment point, named
//! `<experiment>-<digest>.json` (with `:` sanitized to `_` for
//! portability). The digest already encodes every input, so a file's mere
//! existence means the point is solved — loading it replaces the run.
//!
//! Beyond the flat layout of [`MemoCache::at`], the
//! [builder](MemoCache::builder) configures the *service* shape the `Sim`
//! session and `stacksim serve` share:
//!
//! * **Sharding** — entries spread across `s00/`..`sNN/` subdirectories
//!   keyed by a hash over the whole digest, so a hot cache never funnels
//!   every store through one directory and every configured shard
//!   receives traffic.
//! * **Size bound + LRU eviction** — with `max_bytes` set, every store
//!   re-checks the cache footprint and evicts oldest-LRU entries (by file
//!   mtime; hits refresh their entry's mtime) until the budget holds.
//!   Eviction unlinks files, which on POSIX never disturbs a reader that
//!   already opened the entry — an entry is never corrupted mid-read.
//! * **Cross-process safety** — stores claim entries with a write-to-
//!   unique-tmp-then-rename protocol (the tmp name carries the pid, so
//!   two processes sharing one `--cache-dir` can never interleave writes
//!   into one tmp file), and the eviction scan runs under a lock file so
//!   concurrent processes cannot double-evict or race the accounting.
//!
//! Corrupt entries keep the PR-5 integrity path: they are reported as
//! [`Error::CacheCorrupt`] and can be quarantined aside for post-mortems.

use std::fs;
use std::io::ErrorKind;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant, SystemTime};

use super::artifact::Artifact;
use crate::error::Error;

/// A directory of memoized artifacts, or a disabled no-op cache.
#[derive(Debug, Clone, Default)]
pub struct MemoCache {
    dir: Option<PathBuf>,
    max_bytes: Option<u64>,
    shards: usize,
}

/// Configures a [`MemoCache`] beyond the flat unbounded default: a size
/// budget with LRU eviction and a sharded directory layout.
#[derive(Debug, Clone, Default)]
pub struct MemoCacheBuilder {
    dir: Option<PathBuf>,
    max_bytes: Option<u64>,
    shards: usize,
}

impl MemoCacheBuilder {
    /// The cache root directory. Without one the built cache is disabled.
    #[must_use]
    pub fn dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dir = Some(dir.into());
        self
    }

    /// Bound the cache at `max_bytes` of entry data: every store evicts
    /// oldest-LRU entries until the footprint fits. `None` (the default)
    /// never evicts.
    #[must_use]
    pub fn max_bytes(mut self, max_bytes: impl Into<Option<u64>>) -> Self {
        self.max_bytes = max_bytes.into();
        self
    }

    /// Spread entries across `shards` subdirectories keyed by the digest
    /// (clamped to `1..=256`; `1` keeps the flat legacy layout).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Builds the configured cache.
    #[must_use]
    pub fn build(self) -> MemoCache {
        MemoCache {
            dir: self.dir,
            max_bytes: self.max_bytes,
            shards: self.shards.clamp(1, 256),
        }
    }
}

/// Released on drop. Serializes the eviction scan across processes
/// sharing one cache directory.
struct CacheLock {
    path: PathBuf,
}

impl Drop for CacheLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// How long one process waits for the cache lock before giving up.
const LOCK_WAIT: Duration = Duration::from_secs(10);
/// A lock file older than this is the footprint of a crashed process and
/// is broken.
const LOCK_STALE: Duration = Duration::from_secs(30);
/// Lock file name, at the cache root.
const LOCK_FILE: &str = ".stacksim-cache.lock";

/// Acquires the cache-directory lock, breaking stale locks left behind by
/// crashed processes.
fn acquire_lock(dir: &Path) -> Result<CacheLock, Error> {
    let path = dir.join(LOCK_FILE);
    let deadline = Instant::now() + LOCK_WAIT;
    loop {
        match fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut f) => {
                // pid for post-mortems only; the file's existence is the lock
                let _ = write!(f, "{}", std::process::id());
                return Ok(CacheLock { path });
            }
            Err(e) if e.kind() == ErrorKind::AlreadyExists => {
                let stale = fs::metadata(&path)
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|m| m.elapsed().ok())
                    .is_some_and(|age| age > LOCK_STALE);
                if stale {
                    let _ = fs::remove_file(&path);
                    continue;
                }
                if Instant::now() >= deadline {
                    return Err(Error::io(
                        path,
                        std::io::Error::new(ErrorKind::TimedOut, "cache lock held too long"),
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == ErrorKind::NotFound => {
                // the cache root vanished under us; recreate and retry
                fs::create_dir_all(dir).map_err(|err| Error::io(dir.to_path_buf(), err))?;
            }
            Err(e) => return Err(Error::io(path, e)),
        }
    }
}

impl MemoCache {
    /// A cache that never hits and never writes.
    pub fn disabled() -> Self {
        MemoCache {
            dir: None,
            max_bytes: None,
            shards: 1,
        }
    }

    /// A flat, unbounded cache rooted at `dir` (created lazily on first
    /// store) — the legacy CLI layout.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        MemoCache {
            dir: Some(dir.into()),
            max_bytes: None,
            shards: 1,
        }
    }

    /// Configure a sharded and/or size-bounded cache.
    #[must_use]
    pub fn builder() -> MemoCacheBuilder {
        MemoCacheBuilder::default()
    }

    /// Whether this cache can ever hit.
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// The size budget, if this cache is bounded.
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    /// The shard subdirectory an entry digest lands in (`None` for the
    /// flat single-shard layout).
    ///
    /// Every digest byte is folded into the shard index (FNV-1a), so
    /// close digests spread evenly and any shard count in `1..=256`
    /// receives traffic — not just the shards a single leading byte can
    /// reach.
    ///
    /// # Errors
    ///
    /// [`Error::MalformedDigest`] when `digest` is empty or carries a
    /// non-hex character: such a string cannot have come from
    /// `Digest::hex`, and silently routing it to an arbitrary shard
    /// would alias unrelated entries onto one file name space.
    fn shard_for(&self, digest: &str) -> Result<Option<String>, Error> {
        if digest.is_empty() || !digest.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(Error::MalformedDigest {
                digest: digest.to_string(),
            });
        }
        if self.shards <= 1 {
            return Ok(None);
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in digest.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Ok(Some(format!("s{:02x}", h % self.shards as u64)))
    }

    /// Every directory entries may live in (existing or not).
    fn entry_dirs(&self) -> Vec<PathBuf> {
        let Some(dir) = self.dir.as_ref() else {
            return Vec::new();
        };
        if self.shards <= 1 {
            vec![dir.clone()]
        } else {
            (0..self.shards)
                .map(|s| dir.join(format!("s{s:02x}")))
                .collect()
        }
    }

    /// The file a given experiment point lives at (`Ok(None)` when
    /// caching is disabled).
    ///
    /// # Errors
    ///
    /// [`Error::MalformedDigest`] when `digest` is not the hex shape
    /// `Digest::hex` produces (rejected even on a disabled cache, so
    /// the bug surfaces regardless of configuration).
    pub fn path_for(&self, name: &str, digest: &str) -> Result<Option<PathBuf>, Error> {
        let shard = self.shard_for(digest)?;
        let Some(dir) = self.dir.as_ref() else {
            return Ok(None);
        };
        let safe: String = name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let file = format!("{safe}-{digest}.json");
        Ok(Some(match shard {
            Some(shard) => dir.join(shard).join(file),
            None => dir.join(file),
        }))
    }

    /// Loads a memoized artifact, if one exists.
    ///
    /// A zero-length file is treated as a miss and deleted: it is the
    /// footprint of a crash between `create` and `write` (or of a full
    /// disk), carries no data worth reporting, and would otherwise wedge
    /// the entry as permanently "corrupt".
    ///
    /// On a bounded cache a hit also refreshes the entry's mtime (by
    /// atomically rewriting it), which is what makes eviction LRU rather
    /// than FIFO.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on filesystem failure other than "not found";
    /// [`Error::CacheCorrupt`] if the file exists but does not parse.
    pub fn load(&self, name: &str, digest: &str) -> Result<Option<Artifact>, Error> {
        let Some(path) = self.path_for(name, digest)? else {
            return Ok(None);
        };
        let mut text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(Error::io(path, e)),
        };
        if stacksim_faults::armed() {
            use super::resilience;
            match stacksim_faults::check(resilience::SITE_CACHE_LOAD, name) {
                // corrupt only the in-memory copy: the on-disk file stays
                // intact for the quarantine path to move
                Some(stacksim_faults::Fault::Corrupt) => {
                    text.insert_str(0, "#injected-corruption\n");
                }
                Some(stacksim_faults::Fault::Truncate) => text.clear(),
                Some(stacksim_faults::Fault::IoTransient) => {
                    return Err(resilience::injected_io(resilience::SITE_CACHE_LOAD, name));
                }
                _ => {}
            }
        }
        if text.is_empty() {
            fs::remove_file(&path).map_err(|e| Error::io(path, e))?;
            return Ok(None);
        }
        match Artifact::decode(&text) {
            Ok(a) => {
                if self.max_bytes.is_some() {
                    // mark the entry most-recently-used: an atomic rewrite
                    // bumps its mtime without ever exposing partial content
                    let _ = write_atomic(&path, &text);
                }
                Ok(Some(a))
            }
            Err(detail) => Err(Error::CacheCorrupt { path, detail }),
        }
    }

    /// Moves a (corrupt) cache entry into the `quarantine/` subdirectory
    /// at the cache root so it never hits again but stays on disk for
    /// post-mortems. Returns the quarantined path, or `None` when the
    /// entry does not exist (or the cache is disabled).
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on filesystem failure.
    pub fn quarantine(&self, name: &str, digest: &str) -> Result<Option<PathBuf>, Error> {
        let (Some(root), Some(path)) = (self.dir.as_ref(), self.path_for(name, digest)?) else {
            return Ok(None);
        };
        let Some(file_name) = path.file_name() else {
            return Ok(None);
        };
        let dir = root.join(QUARANTINE_DIR);
        fs::create_dir_all(&dir).map_err(|e| Error::io(dir.clone(), e))?;
        let mut dest = dir.join(file_name);
        let mut suffix = 0u32;
        while dest.exists() {
            suffix += 1;
            let mut stamped = file_name.to_os_string();
            stamped.push(format!(".{suffix}"));
            dest = dir.join(stamped);
        }
        match fs::rename(&path, &dest) {
            Ok(()) => {}
            Err(e) if e.kind() == ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(Error::io(path, e)),
        }
        if stacksim_obs::enabled() {
            stacksim_obs::counter(super::obs::CACHE_QUARANTINED).add(1);
        }
        Ok(Some(dest))
    }

    /// Stores an artifact, creating the cache (and shard) directory if
    /// needed, then enforces the size budget if one is configured.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on filesystem failure. A disabled cache stores
    /// nothing and succeeds.
    pub fn store(&self, name: &str, digest: &str, artifact: &Artifact) -> Result<(), Error> {
        let Some(path) = self.path_for(name, digest)? else {
            return Ok(());
        };
        if stacksim_faults::armed() {
            use super::resilience;
            if let Some(stacksim_faults::Fault::IoTransient) =
                stacksim_faults::check(resilience::SITE_CACHE_STORE, name)
            {
                return Err(resilience::injected_io(resilience::SITE_CACHE_STORE, name));
            }
        }
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).map_err(|e| Error::io(parent.to_path_buf(), e))?;
        }
        let encoded = artifact.encode();
        write_atomic(&path, &encoded)?;
        if stacksim_obs::enabled() {
            stacksim_obs::counter(super::obs::CACHE_BYTES_WRITTEN).add(encoded.len() as u64);
        }
        if self.max_bytes.is_some() {
            self.evict_to_budget()?;
        }
        Ok(())
    }

    /// The cache's current entry footprint in bytes (live entries only —
    /// quarantined files and in-flight tmp files are not counted).
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on filesystem failure.
    pub fn usage_bytes(&self) -> Result<u64, Error> {
        Ok(self.scan_entries()?.iter().map(|e| e.len).sum())
    }

    /// Evicts oldest-LRU entries until the footprint fits `max_bytes`,
    /// under the cross-process cache lock. Returns how many entries were
    /// evicted. A no-op for unbounded or disabled caches.
    ///
    /// Unlinking never disturbs a concurrent reader that already opened
    /// the entry file (POSIX semantics); a reader that loses the race
    /// before opening simply sees a miss and recomputes.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on filesystem failure (a lock timeout included).
    pub fn evict_to_budget(&self) -> Result<usize, Error> {
        let (Some(dir), Some(budget)) = (self.dir.as_ref(), self.max_bytes) else {
            return Ok(0);
        };
        let _lock = acquire_lock(dir)?;
        let mut entries = self.scan_entries()?;
        let mut total: u64 = entries.iter().map(|e| e.len).sum();
        if total <= budget {
            return Ok(0);
        }
        // oldest first; ties break on path so concurrent processes agree
        entries.sort_by(eviction_order);
        let mut evicted = 0;
        for entry in entries {
            if total <= budget {
                break;
            }
            match fs::remove_file(&entry.path) {
                Ok(()) => {}
                // another process won the race; the bytes are gone either way
                Err(e) if e.kind() == ErrorKind::NotFound => {}
                Err(e) => return Err(Error::io(entry.path, e)),
            }
            total = total.saturating_sub(entry.len);
            evicted += 1;
        }
        if evicted > 0 && stacksim_obs::enabled() {
            stacksim_obs::counter(super::obs::CACHE_EVICTIONS).add(evicted as u64);
        }
        Ok(evicted)
    }

    /// Every live cache entry with its size and mtime.
    fn scan_entries(&self) -> Result<Vec<EntryMeta>, Error> {
        let mut out = Vec::new();
        for dir in self.entry_dirs() {
            let entries = match fs::read_dir(&dir) {
                Ok(e) => e,
                Err(e) if e.kind() == ErrorKind::NotFound => continue,
                Err(e) => return Err(Error::io(dir, e)),
            };
            for entry in entries {
                let entry = entry.map_err(|e| Error::io(dir.clone(), e))?;
                let path = entry.path();
                let is_live = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with(".json"));
                if !is_live || !path.is_file() {
                    continue;
                }
                let Ok(md) = entry.metadata() else {
                    continue; // raced with a concurrent eviction
                };
                let mtime = match md.modified() {
                    Ok(t) => Some(t),
                    Err(_) => {
                        // metadata exists but carries no readable mtime
                        // (exotic FS or transient error): record it so
                        // operators can see the cache flying blind, and
                        // let `eviction_order` keep the entry warm
                        if stacksim_obs::enabled() {
                            stacksim_obs::counter(super::obs::CACHE_MTIME_UNREADABLE).add(1);
                        }
                        None
                    }
                };
                out.push(EntryMeta {
                    mtime,
                    len: md.len(),
                    path,
                });
            }
        }
        Ok(out)
    }

    /// Deletes every cache entry, including quarantined ones and shard
    /// subdirectories. Missing directories are fine.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on filesystem failure.
    pub fn clean(&self) -> Result<usize, Error> {
        let Some(dir) = self.dir.as_ref() else {
            return Ok(0);
        };
        let mut removed = clean_dir(dir)?;
        for shard in self.entry_dirs() {
            if shard == *dir {
                continue;
            }
            removed += clean_dir(&shard)?;
            remove_dir_if_empty(&shard)?;
        }
        let quarantine = dir.join(QUARANTINE_DIR);
        removed += clean_dir(&quarantine)?;
        remove_dir_if_empty(&quarantine)?;
        let _ = fs::remove_file(dir.join(LOCK_FILE));
        Ok(removed)
    }
}

/// One live entry's eviction-relevant metadata. `mtime` is `None` when
/// the filesystem could not report a modification time.
struct EntryMeta {
    mtime: Option<SystemTime>,
    len: u64,
    path: PathBuf,
}

/// LRU eviction order: oldest known mtime first; entries whose mtime is
/// unreadable sort *last* — an unknown age must never be mistaken for
/// "ancient", or FS metadata errors would evict the warmest entries
/// first. Ties break on path so concurrent processes agree.
fn eviction_order(a: &EntryMeta, b: &EntryMeta) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a.mtime, b.mtime) {
        (Some(x), Some(y)) => x.cmp(&y).then_with(|| a.path.cmp(&b.path)),
        (Some(_), None) => Ordering::Less,
        (None, Some(_)) => Ordering::Greater,
        (None, None) => a.path.cmp(&b.path),
    }
}

/// Writes `text` to `path` atomically: full write to a pid-unique tmp
/// file in the same directory, then rename. Two processes storing the
/// same entry can never interleave into one tmp file, and a crash
/// mid-write never leaves a corrupt entry that poisons later runs.
fn write_atomic(path: &Path, text: &str) -> Result<(), Error> {
    let mut tmp_name = path.as_os_str().to_os_string();
    tmp_name.push(format!(".tmp{}", std::process::id()));
    let tmp = PathBuf::from(tmp_name);
    fs::write(&tmp, text).map_err(|e| Error::io(tmp.clone(), e))?;
    fs::rename(&tmp, path).map_err(|e| Error::io(path.to_path_buf(), e))
}

/// Subdirectory corrupt entries are moved to.
const QUARANTINE_DIR: &str = "quarantine";

/// Removes a directory that is expected to be empty, tolerating leftover
/// foreign files and absence.
fn remove_dir_if_empty(dir: &Path) -> Result<(), Error> {
    match fs::remove_dir(dir) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == ErrorKind::NotFound => Ok(()),
        // a foreign file keeps the directory alive; entries are gone
        Err(e) if e.kind() == ErrorKind::DirectoryNotEmpty => Ok(()),
        Err(e) => Err(Error::io(dir.to_path_buf(), e)),
    }
}

/// Removes every cache entry of one directory (non-recursive). Matches
/// `.json`, in-flight `.json.tmp<pid>`, and quarantined `.json.N` names.
fn clean_dir(dir: &Path) -> Result<usize, Error> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(Error::io(dir.to_path_buf(), e)),
    };
    let mut removed = 0;
    for entry in entries {
        let entry = entry.map_err(|e| Error::io(dir.to_path_buf(), e))?;
        let path = entry.path();
        let is_entry = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.contains(".json"));
        if path.is_file() && is_entry {
            fs::remove_file(&path).map_err(|e| Error::io(path, e))?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// Convenience: the default cache location under the target directory.
pub fn default_cache_dir() -> PathBuf {
    Path::new("target").join("stacksim-cache")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory_logic::Headline;

    fn sample() -> Artifact {
        Artifact::Headline(Headline {
            mean_cpma_reduction: 0.13,
            peak_cpma_reduction: 0.55,
            bandwidth_reduction_factor: 3.0,
            bus_power_saving_w: 0.5,
            baseline_bus_power_w: 0.75,
        })
    }

    /// A second, byte-distinct artifact so eviction tests can tell
    /// entries apart.
    fn sample2() -> Artifact {
        Artifact::Headline(Headline {
            mean_cpma_reduction: 0.17,
            peak_cpma_reduction: 0.51,
            bandwidth_reduction_factor: 2.5,
            bus_power_saving_w: 0.4,
            baseline_bus_power_w: 0.75,
        })
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("stacksim-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disabled_cache_is_a_no_op() {
        let c = MemoCache::disabled();
        assert!(!c.is_enabled());
        c.store("fig5", "abc", &sample()).unwrap();
        assert!(c.load("fig5", "abc").unwrap().is_none());
        assert_eq!(c.clean().unwrap(), 0);
        assert_eq!(c.evict_to_budget().unwrap(), 0);
    }

    #[test]
    fn store_load_round_trip_and_clean() {
        let dir = scratch("test");
        let c = MemoCache::at(&dir);
        assert!(c.load("fig5:gauss", "0011").unwrap().is_none());
        c.store("fig5:gauss", "0011", &sample()).unwrap();
        let back = c.load("fig5:gauss", "0011").unwrap().expect("hit");
        assert_eq!(back, sample());
        // a different digest misses
        assert!(c.load("fig5:gauss", "0012").unwrap().is_none());
        // corrupt entries are reported, not silently treated as misses
        let path = c.path_for("fig5:gauss", "0013").unwrap().unwrap();
        fs::write(&path, "{not json").unwrap();
        assert!(matches!(
            c.load("fig5:gauss", "0013"),
            Err(Error::CacheCorrupt { .. })
        ));
        assert_eq!(c.clean().unwrap(), 2);
        assert!(c.load("fig5:gauss", "0011").unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    /// A zero-length cache file is a crash footprint, not data: loading
    /// it must read as a miss and remove the file so the entry heals.
    #[test]
    fn zero_byte_entry_is_a_miss_and_is_deleted() {
        let dir = scratch("zero");
        let c = MemoCache::at(&dir);
        c.store("fig3", "aa", &sample()).unwrap();
        let path = c.path_for("fig3", "aa").unwrap().unwrap();
        fs::write(&path, "").unwrap();
        assert!(c.load("fig3", "aa").unwrap().is_none(), "reads as a miss");
        assert!(!path.exists(), "the empty file is deleted");
        // and the entry is usable again
        c.store("fig3", "aa", &sample()).unwrap();
        assert_eq!(c.load("fig3", "aa").unwrap(), Some(sample()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_moves_entries_aside_and_clean_sweeps_them() {
        let dir = scratch("quar");
        let c = MemoCache::at(&dir);
        assert!(
            c.quarantine("fig3", "aa").unwrap().is_none(),
            "no entry, nothing to quarantine"
        );
        c.store("fig3", "aa", &sample()).unwrap();
        let original = c.path_for("fig3", "aa").unwrap().unwrap();
        let dest = c.quarantine("fig3", "aa").unwrap().expect("moved");
        assert!(!original.exists());
        assert!(dest.exists());
        assert!(dest.parent().unwrap().ends_with("quarantine"));
        assert!(c.load("fig3", "aa").unwrap().is_none(), "never hits again");
        // a second quarantine of the same name gets a distinct file
        c.store("fig3", "aa", &sample()).unwrap();
        let dest2 = c.quarantine("fig3", "aa").unwrap().expect("moved again");
        assert_ne!(dest, dest2);
        // clean() sweeps live and quarantined entries alike
        c.store("fig3", "aa", &sample()).unwrap();
        assert_eq!(c.clean().unwrap(), 3);
        assert!(!dest2.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_cache_quarantines_nothing() {
        let c = MemoCache::disabled();
        assert!(c.quarantine("fig3", "aa").unwrap().is_none());
    }

    #[test]
    fn sharded_layout_round_trips_and_cleans() {
        let dir = scratch("shard");
        let c = MemoCache::builder().dir(&dir).shards(16).build();
        c.store("fig5:gauss", "0a11", &sample()).unwrap();
        c.store("fig5:conj", "ff22", &sample2()).unwrap();
        let p = c.path_for("fig5:gauss", "0a11").unwrap().unwrap();
        let shard_name = p
            .parent()
            .unwrap()
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .to_string();
        assert!(
            shard_name.starts_with('s') && shard_name.len() == 3,
            "entry lands in a shard subdirectory: {}",
            p.display()
        );
        // the mapping is stable: the same digest always picks the same shard
        assert_eq!(p, c.path_for("fig5:gauss", "0a11").unwrap().unwrap());
        assert_eq!(c.load("fig5:gauss", "0a11").unwrap(), Some(sample()));
        assert_eq!(c.load("fig5:conj", "ff22").unwrap(), Some(sample2()));
        // quarantine still lands at the cache root
        let q = c.quarantine("fig5:conj", "ff22").unwrap().expect("moved");
        assert_eq!(q.parent().unwrap(), dir.join("quarantine"));
        assert_eq!(c.clean().unwrap(), 2);
        assert!(c.load("fig5:gauss", "0a11").unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    /// Bounded cache: eviction removes the *least recently used* entry
    /// first — a loaded (touched) entry outlives an older-stored but
    /// never-read one.
    #[test]
    fn bounded_cache_evicts_oldest_lru_first() {
        let dir = scratch("lru");
        let entry_len = sample().encode().len() as u64;
        // room for two entries and change, never three
        let c = MemoCache::builder()
            .dir(&dir)
            .max_bytes(entry_len * 2 + entry_len / 2)
            .build();
        let tick = || std::thread::sleep(std::time::Duration::from_millis(15));
        c.store("fig5:a", "aa", &sample()).unwrap();
        tick();
        c.store("fig5:b", "bb", &sample()).unwrap();
        tick();
        // touch A: it becomes most-recently-used even though stored first
        assert!(c.load("fig5:a", "aa").unwrap().is_some());
        tick();
        c.store("fig5:c", "cc", &sample()).unwrap();
        assert!(
            c.load("fig5:b", "bb").unwrap().is_none(),
            "B was the LRU entry and must be evicted"
        );
        assert!(c.load("fig5:a", "aa").unwrap().is_some(), "A was touched");
        assert!(c.load("fig5:c", "cc").unwrap().is_some(), "C is newest");
        assert!(
            c.usage_bytes().unwrap() <= entry_len * 2 + entry_len / 2,
            "footprint respects the budget"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    /// Concurrent loads and budget-forced evictions never surface a
    /// corrupt entry: a reader sees a clean hit or a clean miss.
    #[test]
    fn eviction_never_corrupts_a_concurrent_read() {
        let dir = scratch("race");
        let entry_len = sample().encode().len() as u64;
        let c = MemoCache::builder()
            .dir(&dir)
            .max_bytes(entry_len * 3)
            .shards(4)
            .build();
        c.store("fig5:hot", "aa", &sample()).unwrap();
        let reader = {
            let c = c.clone();
            std::thread::spawn(move || {
                let mut hits = 0u32;
                for _ in 0..200 {
                    match c.load("fig5:hot", "aa") {
                        Ok(Some(a)) => {
                            assert_eq!(a, sample());
                            hits += 1;
                        }
                        Ok(None) => {}
                        Err(e) => panic!("reader saw an error: {e}"),
                    }
                }
                hits
            })
        };
        for i in 0..60u32 {
            c.store("fig5:churn", &format!("{i:04x}"), &sample2())
                .unwrap();
        }
        let hits = reader.join().expect("reader thread");
        assert!(hits > 0, "the hot entry should hit at least once");
        let _ = fs::remove_dir_all(&dir);
    }

    /// Two caches sharing one directory (as two processes would) store
    /// concurrently without corrupting entries: pid-unique tmp files plus
    /// locked eviction keep every surviving entry parseable.
    #[test]
    fn concurrent_stores_share_a_directory_safely() {
        let dir = scratch("share");
        let entry_len = sample().encode().len() as u64;
        let mk = || {
            MemoCache::builder()
                .dir(&dir)
                .max_bytes(entry_len * 10)
                .build()
        };
        let writers: Vec<_> = (0..3)
            .map(|t| {
                let c = mk();
                std::thread::spawn(move || {
                    for i in 0..40u32 {
                        c.store("fig5:w", &format!("{t}{i:03x}"), &sample())
                            .unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().expect("writer thread");
        }
        let c = mk();
        // every surviving entry parses
        for meta in c.scan_entries().unwrap() {
            let text = fs::read_to_string(&meta.path).unwrap();
            Artifact::decode(&text).expect("entry parses");
        }
        assert!(c.usage_bytes().unwrap() <= entry_len * 10);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Regression (shard routing): a malformed digest is a typed error
    /// on every entry operation — never a silent route to shard `s00`.
    #[test]
    fn malformed_digest_is_a_typed_error() {
        let dir = scratch("baddigest");
        let c = MemoCache::builder().dir(&dir).shards(16).build();
        for bad in ["", "zz11", "0a1g", "dead-beef"] {
            assert!(
                matches!(c.path_for("fig3", bad), Err(Error::MalformedDigest { .. })),
                "digest {bad:?} must be rejected"
            );
            assert!(matches!(
                c.store("fig3", bad, &sample()),
                Err(Error::MalformedDigest { .. })
            ));
            assert!(matches!(
                c.load("fig3", bad),
                Err(Error::MalformedDigest { .. })
            ));
            assert!(matches!(
                c.quarantine("fig3", bad),
                Err(Error::MalformedDigest { .. })
            ));
        }
        // nothing was silently written anywhere
        assert_eq!(c.usage_bytes().unwrap(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Regression (shard routing): digests sharing a first byte spread
    /// across shards — the old first-byte-only mapping funneled every
    /// one of them into a single directory.
    #[test]
    fn shard_index_mixes_more_than_the_first_digest_byte() {
        let c = MemoCache::builder().dir("unused").shards(256).build();
        let mut shards = std::collections::BTreeSet::new();
        for i in 0..64u32 {
            let digest = format!("00{i:014x}");
            let p = c.path_for("fig3", &digest).unwrap().unwrap();
            shards.insert(p.parent().unwrap().file_name().unwrap().to_os_string());
        }
        assert!(
            shards.len() > 1,
            "64 digests with a shared first byte must not all land in one shard"
        );
    }

    /// The builder clamps the shard count into `1..=256`: `s{:02x}`
    /// directory names only exist for that range, so a larger request
    /// must not configure permanently unreachable shards.
    #[test]
    fn builder_clamps_shard_count() {
        let c = MemoCache::builder().dir("unused").shards(4096).build();
        assert_eq!(c.entry_dirs().len(), 256);
        let c = MemoCache::builder().dir("unused").shards(0).build();
        assert_eq!(c.entry_dirs().len(), 1);
    }

    /// Regression (LRU ordering): an entry whose mtime is unreadable
    /// sorts *last* in eviction order — the old `UNIX_EPOCH` fallback
    /// made it the first victim regardless of real recency.
    #[test]
    fn unreadable_mtime_orders_last_not_first() {
        let meta = |mtime, name: &str| EntryMeta {
            mtime,
            len: 1,
            path: PathBuf::from(name),
        };
        let old = meta(Some(SystemTime::UNIX_EPOCH), "a.json");
        let recent = meta(
            Some(SystemTime::UNIX_EPOCH + Duration::from_secs(1_000_000)),
            "b.json",
        );
        let unknown = meta(None, "d.json");
        let unknown2 = meta(None, "c.json");
        assert_eq!(
            eviction_order(&unknown, &old),
            std::cmp::Ordering::Greater,
            "an unknown age is never treated as ancient"
        );
        let mut entries = [unknown, recent, old, unknown2];
        entries.sort_by(eviction_order);
        let order: Vec<_> = entries
            .iter()
            .map(|e| e.path.to_str().unwrap().to_string())
            .collect();
        assert_eq!(
            order,
            ["a.json", "b.json", "c.json", "d.json"],
            "known mtimes oldest-first, unknowns last by path"
        );
    }
}
