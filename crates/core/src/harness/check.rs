//! `stacksim check`: static validation of every experiment's machine
//! description, plus the harness's own digest-coverage audit.
//!
//! For each registered experiment this module rebuilds the *description*
//! the experiment will simulate — floorplans, folds, thermal stacks,
//! hierarchies, parameter sets — as a [`stacksim_lint::Model`] and runs
//! the standard [`PassRegistry`] over it. The [`Runner`](super::Runner)
//! calls [`preflight`] on every cache miss so an inconsistent description
//! fails in milliseconds with diagnostics instead of deep inside a run.
//!
//! The digest audit (`SL050`–`SL052`) lives here rather than in the lint
//! crate because it inspects [`Experiment`] objects, which the lint crate
//! cannot depend on without a cycle: it perturbs each [`WorkloadParams`]
//! field and verifies that [`Experiment::params_digest`] reacts exactly as
//! the experiment's declared
//! [`sensitivity`](Experiment::sensitivity) promises, so no config field
//! can silently alias memo-cache entries.

use stacksim_floorplan::p4::pentium4_147w;
use stacksim_floorplan::{worst_case_stack, Floorplan, StackedFloorplan};
use stacksim_lint::{
    DieDesc, FaultSiteDesc, FoldDesc, Model, ObsTableDesc, PassRegistry, Report, StackDesc,
    ThermalDesc, WireDesc,
};
use stacksim_mem::EngineConfig;
use stacksim_ooo::{CoreConfig, WireConfig};
use stacksim_thermal::{LayerStack, SolverConfig};
use stacksim_workloads::{Scale, WorkloadParams};

use super::experiment::Experiment;
use super::registry::Registry;
use crate::error::Error;
use crate::logic_logic::folded_p4;
use crate::memory_logic::thermal_stack;
use crate::stacking::StackOption;

/// The power scale the Fig. 11 / Table 5 fold applies (§4: 15% saved by
/// shorter wires). Mirrors `FoldOptions::default().power_scale`.
const FOLD_POWER_SCALE: f64 = 0.85;

fn die(f: &Floorplan) -> DieDesc {
    DieDesc::from_floorplan(f)
}

/// The two-die thermal stack the logic+logic studies solve over a folded
/// P4 (mirrors `logic_logic::solve_p4_stack`).
fn p4_fold_stack(folded: &StackedFloorplan) -> LayerStack {
    let cfg = SolverConfig::default();
    let d0 = &folded.dies()[0];
    let d1 = &folded.dies()[1];
    let ny = (cfg.nx * 17 / 20).max(1);
    LayerStack::two_die(
        d0.width(),
        d0.height(),
        d0.power_grid(cfg.nx, ny),
        d1.power_grid(cfg.nx, ny),
        false,
    )
}

/// The Fig. 9 wire routes resolved against a P4-class floorplan.
fn fig9_wires(path_prefix: &str, planar: &Floorplan) -> Vec<WireDesc> {
    let available: Vec<String> = planar
        .blocks()
        .iter()
        .map(|b| b.name().to_string())
        .collect();
    [
        ("load-to-use", vec!["dcache", "fu"]),
        ("fp-register-read", vec!["rf", "simd", "fp"]),
    ]
    .into_iter()
    .map(|(route, endpoints)| WireDesc {
        path: path_prefix.to_string(),
        route: route.to_string(),
        endpoints: endpoints.into_iter().map(String::from).collect(),
        available: available.clone(),
    })
    .collect()
}

/// The model of the memory-stacking (Fig. 5/7) experiments.
fn memory_model(params: &WorkloadParams) -> Model {
    let mut m = Model::new();
    for option in StackOption::all() {
        let path = format!("option '{}'", option.label());
        m.hierarchies.push((path.clone(), option.hierarchy()));
        match option.stacked_floorplan() {
            Some(top) => m.stacks.push((
                path,
                StackDesc {
                    name: option.label().to_string(),
                    dies: vec![die(&option.cpu_floorplan()), die(&top)],
                },
            )),
            None => m.dies.push((path, die(&option.cpu_floorplan()))),
        }
    }
    m.workloads.push(("params".into(), *params));
    m.engines.push(("engine".into(), EngineConfig::default()));
    m
}

/// The model of the thermal memory+logic experiments (Fig. 6/8).
fn thermal_model(options: &[StackOption]) -> Model {
    let mut m = Model::new();
    let cfg = SolverConfig::default();
    for option in options {
        let path = format!("option '{}'", option.label());
        m.thermal.push(ThermalDesc::from_stack(
            format!("{path}.stack"),
            &thermal_stack(*option, cfg.nx),
        ));
        match option.stacked_floorplan() {
            Some(top) => m.stacks.push((
                path,
                StackDesc {
                    name: option.label().to_string(),
                    dies: vec![die(&option.cpu_floorplan()), die(&top)],
                },
            )),
            None => m.dies.push((path, die(&option.cpu_floorplan()))),
        }
    }
    m.solvers.push(("solver".into(), cfg));
    m
}

/// The model of the logic+logic fold experiments (fig3/fig11/table5).
/// `None` if the fold itself fails — the preflight then has no model to
/// check and lets the experiment surface the fold error at run time.
fn fold_model(with_worst_case: bool, with_wires: bool) -> Option<Model> {
    let planar = pentium4_147w();
    let folded = folded_p4().ok()?;
    let mut m = Model::new();
    m.thermal.push(ThermalDesc::from_stack(
        "folded.stack",
        &p4_fold_stack(&folded),
    ));
    if with_worst_case {
        let wc = worst_case_stack(&planar);
        m.stacks.push((
            "worst-case".into(),
            StackDesc::from_stacked("worst-case", &wc),
        ));
    }
    if with_wires {
        m.wires = fig9_wires("fig9", &planar);
    }
    m.folds.push(FoldDesc {
        path: "fold".into(),
        planar: die(&planar),
        folded: StackDesc::from_stacked("folded-p4", &folded),
        power_scale: FOLD_POWER_SCALE,
    });
    m.solvers.push(("solver".into(), SolverConfig::default()));
    Some(m)
}

/// The model of the Table 4 pipeline study.
fn table4_model(params: &WorkloadParams) -> Model {
    let mut m = Model::new();
    m.cores.push(("planar".into(), CoreConfig::planar()));
    m.cores.push(("folded".into(), CoreConfig::folded_3d()));
    m.wire_pairs.push(stacksim_lint::WirePairDesc {
        path: "wire".into(),
        planar: WireConfig::planar(),
        folded: WireConfig::folded_3d(),
    });
    m.workloads.push(("params".into(), *params));
    m
}

/// The statically declared observability-instrument tables of every
/// instrumented crate, as a model for the SL060 pass.
pub fn obs_model() -> Model {
    let mut m = Model::new();
    for (path, component, names) in [
        (
            "obs.mem",
            stacksim_mem::obs::COMPONENT,
            stacksim_mem::obs::NAMES,
        ),
        (
            "obs.thermal",
            stacksim_thermal::obs::COMPONENT,
            stacksim_thermal::obs::NAMES,
        ),
        ("obs.harness", super::obs::COMPONENT, super::obs::NAMES),
        (
            "obs.faults",
            stacksim_faults::obs::COMPONENT,
            stacksim_faults::obs::NAMES,
        ),
        (
            "obs.runner",
            super::obs::RUNNER_COMPONENT,
            super::obs::RUNNER_NAMES,
        ),
        (
            "obs.cache",
            super::obs::CACHE_COMPONENT,
            super::obs::CACHE_NAMES,
        ),
        (
            "obs.solver",
            super::obs::SOLVER_COMPONENT,
            super::obs::SOLVER_NAMES,
        ),
        (
            "obs.serve",
            super::obs::SERVE_COMPONENT,
            super::obs::SERVE_NAMES,
        ),
        (
            "obs.journal",
            super::obs::JOURNAL_COMPONENT,
            super::obs::JOURNAL_NAMES,
        ),
        (
            "obs.explore",
            super::obs::EXPLORE_COMPONENT,
            super::obs::EXPLORE_NAMES,
        ),
    ] {
        m.obs_tables.push(ObsTableDesc {
            path: path.to_string(),
            component: component.to_string(),
            names: names.iter().map(|s| s.to_string()).collect(),
        });
    }
    m
}

/// The statically declared fault-site tables of every instrumented crate,
/// plus the injection points referencing them, as a model for the SL070
/// pass. The reference list mirrors the actual `stacksim_faults::check`
/// call sites; a site declared here but absent from the list turns into
/// an SL070 staleness warning.
pub fn fault_model() -> Model {
    let mut m = Model::new();
    for (path, component, sites) in super::resilience::declared_fault_sites() {
        m.fault_sites.push(FaultSiteDesc {
            path: path.to_string(),
            component: component.to_string(),
            sites: sites.iter().map(|s| s.to_string()).collect(),
        });
    }
    for (path, site) in [
        ("harness.cache.load()", super::resilience::SITE_CACHE_LOAD),
        ("harness.cache.store()", super::resilience::SITE_CACHE_STORE),
        (
            "harness.runner.dispatch()",
            super::resilience::SITE_DISPATCH,
        ),
        ("thermal.system.cg()", stacksim_thermal::faults::SITE_CG),
        (
            "serve.server.accept()",
            super::resilience::SITE_SERVE_ACCEPT,
        ),
        (
            "serve.http.read_request()",
            super::resilience::SITE_SERVE_READ,
        ),
        ("serve.http.respond()", super::resilience::SITE_SERVE_WRITE),
        (
            "harness.journal.append()",
            super::resilience::SITE_SESSION_JOURNAL,
        ),
    ] {
        m.fault_refs.push((path.to_string(), site.to_string()));
    }
    m
}

/// The runtime half of `SL060`: every instrument name present in the
/// process-global registry must appear in a declared table — an
/// undeclared registration is an instrument the linter cannot vouch
/// for. Trivially clean before anything has been instrumented.
pub fn obs_audit() -> Report {
    audit_registered_names(&stacksim_obs::registry().names())
}

fn audit_registered_names(registered: &[String]) -> Report {
    let mut report = Report::new();
    let model = obs_model();
    let declared: std::collections::BTreeSet<&str> = model
        .obs_tables
        .iter()
        .flat_map(|t| t.names.iter().map(String::as_str))
        .collect();
    for name in registered {
        if !declared.contains(name.as_str()) {
            report.error(
                "SL060",
                format!("obs.registry.\"{name}\""),
                "instrument registered at runtime but declared in no obs table".to_string(),
            );
        }
    }
    report
}

/// Builds the machine description one standard experiment will simulate.
///
/// Returns `None` for names outside the standard registry — custom
/// experiments carry no model the checker knows how to rebuild, so the
/// preflight lets them through.
pub fn model_for(name: &str, params: &WorkloadParams) -> Option<Model> {
    match name {
        "fig3" => fold_model(false, false),
        "fig5" | "headline" => {
            let mut m = Model::new();
            m.workloads.push(("params".into(), *params));
            Some(m)
        }
        "fig6" => Some(thermal_model(&[StackOption::Planar4M])),
        "fig8" => Some(thermal_model(&StackOption::all())),
        "fig11" => fold_model(true, true),
        "table4" => Some(table4_model(params)),
        "table5" => fold_model(false, false),
        _ if name.starts_with("fig5:") => Some(memory_model(params)),
        _ => None,
    }
}

/// Runs the standard lint passes over one experiment's model.
///
/// # Errors
///
/// [`Error::UnknownExperiment`] if `name` is not registered.
pub fn check_experiment(
    registry: &Registry,
    name: &str,
    params: &WorkloadParams,
) -> Result<Report, Error> {
    if registry.get(name).is_none() {
        return Err(Error::UnknownExperiment {
            name: name.to_string(),
        });
    }
    let Some(model) = model_for(name, params) else {
        return Ok(Report::new());
    };
    Ok(PassRegistry::standard().run(&model))
}

/// The preflight the [`Runner`](super::Runner) performs before dispatching
/// an uncached experiment: reject error-severity diagnostics.
///
/// # Errors
///
/// [`Error::InvalidModel`] carrying the report if validation found errors.
pub fn preflight(name: &str, params: &WorkloadParams) -> Result<(), Error> {
    let Some(model) = model_for(name, params) else {
        return Ok(());
    };
    let report = PassRegistry::standard().run(&model);
    if report.has_errors() {
        return Err(Error::InvalidModel {
            experiment: name.to_string(),
            report,
        });
    }
    Ok(())
}

/// One perturbed copy of `params` per field, with its name.
fn perturbations(params: &WorkloadParams) -> [(&'static str, WorkloadParams); 5] {
    let mut scaled = *params;
    scaled.scale = match params.scale {
        Scale::Test => Scale::Paper,
        Scale::Paper => Scale::Test,
    };
    let mut seeded = *params;
    seeded.seed ^= 1;
    let mut threaded = *params;
    threaded.threads += 1;
    let mut chunked = *params;
    chunked.chunk += 1;
    let mut solver_threaded = *params;
    solver_threaded.solver_threads += 1;
    [
        ("scale", scaled),
        ("seed", seeded),
        ("threads", threaded),
        ("chunk", chunked),
        ("solver_threads", solver_threaded),
    ]
}

fn declared(e: &dyn Experiment, field: &str) -> bool {
    let s = e.sensitivity();
    match field {
        "scale" => s.scale,
        "seed" => s.seed,
        "threads" => s.threads,
        "chunk" => s.chunk,
        "solver_threads" => s.solver_threads,
        _ => unreachable!("unknown sensitivity field {field}"),
    }
}

/// The digest-coverage audit.
///
/// * `SL050` (error): an experiment declares itself sensitive to a field
///   but its digest does not change when the field does — two different
///   configurations would share one memo-cache entry.
/// * `SL051` (warning): the digest reacts to a field the experiment does
///   not declare — harmless for correctness but the declaration is stale.
/// * `SL052` (error): two experiments produce identical digests for the
///   same parameters — their cache entries would collide if they ever
///   shared a name-insensitive store.
pub fn digest_audit(registry: &Registry, params: &WorkloadParams) -> Report {
    let mut report = Report::new();
    let mut seen: Vec<(String, String)> = Vec::new();
    for exp in registry.experiments() {
        let name = exp.name().to_string();
        let base = exp.params_digest(params);
        for (field, perturbed) in perturbations(params) {
            let changed = exp.params_digest(&perturbed) != base;
            let was_declared = declared(exp.as_ref(), field);
            let span = format!("{name}.digest.{field}");
            if was_declared && !changed {
                report.error(
                    "SL050",
                    span,
                    format!(
                        "declared sensitive to '{field}' but the digest ignores it; \
                         different configs would share one cache entry"
                    ),
                );
            } else if !was_declared && changed {
                report.warn(
                    "SL051",
                    span,
                    format!("digest depends on '{field}' but the declaration says it does not"),
                );
            }
        }
        if let Some((other, _)) = seen.iter().find(|(_, d)| *d == base) {
            report.error(
                "SL052",
                format!("{name}.digest"),
                format!("digest collides with experiment '{other}' for identical parameters"),
            );
        }
        seen.push((name, base));
    }
    report
}

/// Checks every experiment of the registry plus the digest audit; spans
/// are prefixed with the experiment name.
pub fn check_registry(registry: &Registry, params: &WorkloadParams) -> Report {
    let passes = PassRegistry::standard();
    let mut combined = Report::new();
    for exp in registry.experiments() {
        if let Some(model) = model_for(exp.name(), params) {
            combined.merge_under(exp.name(), passes.run(&model));
        }
    }
    combined.merge_under("obs", passes.run(&obs_model()));
    combined.merge_under("faults", passes.run(&fault_model()));
    combined.merge(obs_audit());
    combined.merge(digest_audit(registry, params));
    combined
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{Artifact, Ctx, ParamSensitivity};
    use std::sync::Arc;

    #[test]
    fn every_standard_experiment_has_a_model_or_is_aggregate() {
        let r = Registry::standard();
        let params = WorkloadParams::test();
        for exp in r.experiments() {
            assert!(
                model_for(exp.name(), &params).is_some(),
                "no model for {}",
                exp.name()
            );
        }
        assert!(model_for("nonesuch", &params).is_none());
    }

    #[test]
    fn seed_registry_is_clean() {
        let r = Registry::standard();
        let report = check_registry(&r, &WorkloadParams::test());
        assert!(!report.has_errors(), "{}", report.render_pretty());
    }

    #[test]
    fn unknown_experiment_is_an_error() {
        let r = Registry::standard();
        assert!(matches!(
            check_experiment(&r, "fig99", &WorkloadParams::test()),
            Err(Error::UnknownExperiment { .. })
        ));
    }

    struct BadDigest;

    impl Experiment for BadDigest {
        fn name(&self) -> &str {
            "bad-digest"
        }

        // claims full sensitivity but hashes nothing
        fn params_digest(&self, _params: &WorkloadParams) -> String {
            "constant".into()
        }

        fn run(&self, _ctx: &Ctx) -> Result<Artifact, Error> {
            unreachable!()
        }
    }

    struct Undeclared;

    impl Experiment for Undeclared {
        fn name(&self) -> &str {
            "undeclared"
        }

        fn sensitivity(&self) -> ParamSensitivity {
            ParamSensitivity::none()
        }

        // hashes the seed despite declaring none()
        fn params_digest(&self, params: &WorkloadParams) -> String {
            format!("{:x}", params.seed)
        }

        fn run(&self, _ctx: &Ctx) -> Result<Artifact, Error> {
            unreachable!()
        }
    }

    struct Twin(&'static str);

    impl Experiment for Twin {
        fn name(&self) -> &str {
            self.0
        }

        fn sensitivity(&self) -> ParamSensitivity {
            ParamSensitivity::none()
        }

        fn params_digest(&self, _params: &WorkloadParams) -> String {
            "twin".into()
        }

        fn run(&self, _ctx: &Ctx) -> Result<Artifact, Error> {
            unreachable!()
        }
    }

    #[test]
    fn sl050_catches_digest_insensitivity() {
        let mut r = Registry::new();
        r.add(Arc::new(BadDigest));
        let report = digest_audit(&r, &WorkloadParams::test());
        assert!(report.has_code("SL050"), "{}", report.render_pretty());
        assert!(report.has_errors());
    }

    #[test]
    fn sl051_warns_on_undeclared_sensitivity() {
        let mut r = Registry::new();
        r.add(Arc::new(Undeclared));
        let report = digest_audit(&r, &WorkloadParams::test());
        assert!(report.has_code("SL051"));
        assert!(!report.has_errors(), "SL051 is a warning");
    }

    #[test]
    fn sl052_catches_digest_collisions() {
        let mut r = Registry::new();
        r.add(Arc::new(Twin("twin-a")));
        r.add(Arc::new(Twin("twin-b")));
        let report = digest_audit(&r, &WorkloadParams::test());
        assert!(report.has_code("SL052"), "{}", report.render_pretty());
    }

    #[test]
    fn standard_digest_audit_is_clean() {
        let r = Registry::standard();
        let report = digest_audit(&r, &WorkloadParams::test());
        assert!(report.is_clean(), "{}", report.render_pretty());
    }

    #[test]
    fn preflight_accepts_standard_and_skips_unknown() {
        preflight("table4", &WorkloadParams::test()).unwrap();
        preflight("not-registered", &WorkloadParams::test()).unwrap();
    }

    #[test]
    fn declared_obs_tables_are_clean() {
        let report = PassRegistry::standard().run(&obs_model());
        assert!(report.is_clean(), "{}", report.render_pretty());
    }

    /// Every declared fault site is well-formed and referenced by an
    /// injection point — SL070 over the real tables.
    #[test]
    fn declared_fault_sites_are_clean() {
        let report = PassRegistry::standard().run(&fault_model());
        assert!(report.is_clean(), "{}", report.render_pretty());
    }

    #[test]
    fn sl060_catches_undeclared_runtime_registration() {
        // declared names from every component table pass the audit
        let declared: Vec<String> = obs_model()
            .obs_tables
            .iter()
            .flat_map(|t| t.names.iter().cloned())
            .collect();
        assert!(audit_registered_names(&declared).is_clean());
        let report = audit_registered_names(&["mem.unheard_of".to_string()]);
        assert!(report.has_code("SL060"), "{}", report.render_pretty());
        assert!(report.has_errors());
    }
}
