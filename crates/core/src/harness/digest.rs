//! Stable configuration hashing for memo-cache keys.
//!
//! FNV-1a over a canonical byte encoding of the inputs. The digest must be
//! identical across runs and platforms for the same configuration — it is
//! the only thing that decides whether a cached artifact is reused — so
//! every write method encodes through fixed-width little-endian bytes and
//! floats go through their IEEE-754 bit patterns.

/// An incremental 64-bit FNV-1a hasher.
#[derive(Debug, Clone)]
pub struct Digest {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

impl Digest {
    /// Starts a fresh digest.
    pub fn new() -> Self {
        Digest { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorbs a string (length-prefixed so `"ab" + "c"` ≠ `"a" + "bc"`).
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes())
    }

    /// Absorbs a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Absorbs a `usize` (as 64-bit, so 32- and 64-bit hosts agree).
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Absorbs an `f64` through its bit pattern.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// The digest value.
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// The digest as the fixed-width hex string used in cache file names.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_order_sensitive() {
        let mut a = Digest::new();
        a.str("fig5").u64(7).f64(1.5);
        let mut b = Digest::new();
        b.str("fig5").u64(7).f64(1.5);
        assert_eq!(a.finish(), b.finish());

        let mut c = Digest::new();
        c.f64(1.5).u64(7).str("fig5");
        assert_ne!(a.finish(), c.finish());
        assert_eq!(a.hex().len(), 16);
    }

    #[test]
    fn length_prefix_prevents_concatenation_collisions() {
        let mut a = Digest::new();
        a.str("ab").str("c");
        let mut b = Digest::new();
        b.str("a").str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
