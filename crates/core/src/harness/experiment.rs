//! The [`Experiment`] trait and the per-run context handed to it.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use stacksim_mem::MemTelemetry;
use stacksim_thermal::{SolveStats, SolverConfig};
use stacksim_workloads::WorkloadParams;

use super::artifact::Artifact;
use super::json::Json;
use super::resilience::SolverDegrade;
use crate::error::Error;

/// One table or figure of the paper, registered with the harness.
///
/// Implementations must be cheap to construct and [`Send`] + [`Sync`]: the
/// runner shares them across worker threads. All heavy state belongs in
/// [`run`](Experiment::run).
pub trait Experiment: Send + Sync {
    /// The registry name (e.g. `"fig5:gauss"`). Stable across runs — it is
    /// half of the memo-cache key.
    fn name(&self) -> &str;

    /// Names of experiments whose artifacts [`run`](Experiment::run) reads
    /// through [`Ctx::dep`]. The runner completes these first and refuses
    /// registries with cycles or dangling edges.
    fn deps(&self) -> Vec<String> {
        Vec::new()
    }

    /// A stable hex digest of every input that affects this experiment's
    /// result — the other half of the memo-cache key. Two runs with equal
    /// digests may share a cached artifact; any config change must change
    /// the digest.
    fn params_digest(&self, params: &WorkloadParams) -> String;

    /// Which [`WorkloadParams`] fields this experiment's result depends on.
    /// The digest-coverage audit (`SL050`/`SL051`) perturbs each field and
    /// verifies the declaration against [`params_digest`]'s actual
    /// behaviour, so a new config field cannot silently alias cache
    /// entries. Defaults to "sensitive to everything" — the safe answer
    /// for experiments that thread the whole parameter set through.
    fn sensitivity(&self) -> ParamSensitivity {
        ParamSensitivity::all()
    }

    /// Produces the artifact, recording telemetry into `ctx`.
    ///
    /// # Errors
    ///
    /// Any study failure; the runner records it and skips dependents.
    fn run(&self, ctx: &Ctx) -> Result<Artifact, Error>;
}

/// Which [`WorkloadParams`] fields an experiment declares as inputs to its
/// [`Experiment::params_digest`]. One flag per field; adding a field to
/// `WorkloadParams` means adding a flag here, which makes the digest audit
/// re-examine every experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamSensitivity {
    /// The digest depends on `params.scale`.
    pub scale: bool,
    /// The digest depends on `params.seed`.
    pub seed: bool,
    /// The digest depends on `params.threads`.
    pub threads: bool,
    /// The digest depends on `params.chunk`.
    pub chunk: bool,
    /// The digest depends on `params.solver_threads`. Always `false` in the
    /// standard registry: the solver's determinism contract makes this an
    /// execution-only knob (bit-identical results for any thread count), so
    /// a digest reacting to it would needlessly split the cache — the audit
    /// flags that as `SL051`.
    pub solver_threads: bool,
}

impl ParamSensitivity {
    /// Sensitive to every *semantic* workload parameter.
    /// `solver_threads` stays `false`: it is result-neutral by contract.
    pub fn all() -> Self {
        ParamSensitivity {
            scale: true,
            seed: true,
            threads: true,
            chunk: true,
            solver_threads: false,
        }
    }

    /// Sensitive to no workload parameter (a fixed-input experiment).
    pub fn none() -> Self {
        ParamSensitivity {
            scale: false,
            seed: false,
            threads: false,
            chunk: false,
            solver_threads: false,
        }
    }

    /// Sensitive only to the generation scale.
    pub fn scale_only() -> Self {
        ParamSensitivity {
            scale: true,
            ..Self::none()
        }
    }
}

/// Telemetry accumulated while one experiment runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Telemetry {
    /// Accumulated conjugate-gradient statistics of every thermal solve.
    pub solver: SolveStats,
    /// One record per simulated memory trace.
    pub mem_runs: Vec<MemRun>,
}

/// One memory-engine run inside an experiment (a benchmark × option
/// point), labelled for the run report.
#[derive(Debug, Clone, PartialEq)]
pub struct MemRun {
    /// `"<benchmark>/<option>"`.
    pub label: String,
    /// The engine's summary for that trace.
    pub telemetry: MemTelemetry,
}

impl Telemetry {
    /// Total memory references simulated across all recorded traces.
    pub fn trace_records(&self) -> u64 {
        self.mem_runs
            .iter()
            .map(|r| r.telemetry.trace_records)
            .sum()
    }

    /// The JSON form used inside the run report.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("cg_solves", Json::Num(self.solver.solves as f64)),
            ("cg_iterations", Json::Num(self.solver.iterations as f64)),
            ("cg_residual", Json::Num(self.solver.residual)),
            ("trace_records", Json::Num(self.trace_records() as f64)),
            (
                "mem_runs",
                Json::Arr(
                    self.mem_runs
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("label", Json::Str(r.label.clone())),
                                ("trace_records", Json::Num(r.telemetry.trace_records as f64)),
                                ("cpma", Json::Num(r.telemetry.cpma)),
                                (
                                    "offdie_gb_per_sec",
                                    Json::Num(r.telemetry.offdie_gb_per_sec),
                                ),
                                ("l1_hit_rate", Json::Num(r.telemetry.l1_hit_rate)),
                                ("memory_fraction", Json::Num(r.telemetry.memory_fraction)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// The context one experiment runs in: workload parameters, the artifacts
/// of its declared dependencies, and a telemetry sink.
#[derive(Debug)]
pub struct Ctx {
    /// Workload generation parameters for this run.
    pub params: WorkloadParams,
    experiment: String,
    deps: HashMap<String, Arc<Artifact>>,
    telemetry: RefCell<Telemetry>,
    degrade: SolverDegrade,
}

impl Ctx {
    /// Builds a context for `experiment` with the given dependency
    /// artifacts.
    pub fn new(
        experiment: impl Into<String>,
        params: WorkloadParams,
        deps: HashMap<String, Arc<Artifact>>,
    ) -> Self {
        Ctx {
            params,
            experiment: experiment.into(),
            deps,
            telemetry: RefCell::new(Telemetry::default()),
            degrade: SolverDegrade::AsConfigured,
        }
    }

    /// Sets the degradation-ladder rung this attempt runs at (the runner's
    /// resilience loop sets this on retries after non-convergence).
    #[must_use]
    pub fn with_degrade(mut self, degrade: SolverDegrade) -> Self {
        self.degrade = degrade;
        self
    }

    /// The degradation rung of this attempt.
    pub fn degrade(&self) -> SolverDegrade {
        self.degrade
    }

    /// Applies this attempt's degradation rung to an experiment's base
    /// solver configuration. Experiments build their config as usual and
    /// route it through here so the runner's ladder can soften it.
    pub fn solver_config(&self, base: SolverConfig) -> SolverConfig {
        self.degrade.apply(base)
    }

    /// The artifact of a declared dependency.
    ///
    /// # Errors
    ///
    /// [`Error::ArtifactUnavailable`] if `name` was not declared in
    /// [`Experiment::deps`] (and therefore was not provided).
    pub fn dep(&self, name: &str) -> Result<&Artifact, Error> {
        self.deps
            .get(name)
            .map(|a| a.as_ref())
            .ok_or_else(|| Error::ArtifactUnavailable {
                experiment: self.experiment.clone(),
                wanted: name.to_string(),
            })
    }

    /// Records thermal-solver statistics.
    pub fn record_solver(&self, stats: SolveStats) {
        self.telemetry.borrow_mut().solver.absorb(stats);
    }

    /// Records one memory-engine trace run.
    pub fn record_mem(&self, label: impl Into<String>, telemetry: MemTelemetry) {
        self.telemetry.borrow_mut().mem_runs.push(MemRun {
            label: label.into(),
            telemetry,
        });
    }

    /// Takes the accumulated telemetry out of the context.
    pub fn into_telemetry(self) -> Telemetry {
        self.telemetry.into_inner()
    }
}
