//! The session request journal: crash recovery for the serve plane.
//!
//! A [`RequestJournal`] is an append-only JSONL file (schema
//! `stacksim-journal/1`) under the daemon's cache directory. The session
//! appends one `accepted` record when a submission enqueues new work and
//! one `done` record when that slot reaches a terminal outcome; every
//! append is fsync'd, so the set of accepted-but-unfinished requests
//! survives a `kill -9`.
//!
//! # Recovery
//!
//! [`RequestJournal::recover`] runs at daemon boot:
//!
//! 1. The previous journal file is renamed aside to `<path>.replay` (an
//!    atomic rename, the journal's write-tmp-rename discipline — the
//!    durable copy exists at every instant of the handoff).
//! 2. Its records are parsed; unparseable lines (a crash mid-append, a
//!    corrupting fault) are *skipped and counted*, never fatal.
//! 3. The `accepted` records with no matching `done` are returned for
//!    resubmission, and a fresh journal starts at the original path —
//!    resubmitting re-appends each entry, so a crash during replay
//!    loses nothing (both files are read next boot, and entries
//!    deduplicate by their canonical encoding).
//! 4. Once every entry is resubmitted the caller drops the side file
//!    with [`RequestJournal::discard_replay`].
//!
//! Replay is idempotent through the memo cache: a request whose
//! artifact was already stored completes as a warm hit with
//! byte-identical artifact bytes; one killed mid-computation recomputes
//! deterministically to the same bytes.
//!
//! The append path is a declared fault site (`session.journal`), so
//! chaos plans can exercise a journal that lies: `io-transient` fails
//! the append (durability degrades, the request still runs), `corrupt`
//! and `truncate` mangle the line on disk so the *next* recovery walks
//! the skip path.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};

use stacksim_faults::Fault;

use super::json::Json;
use super::resilience::{injected_io, SITE_SESSION_JOURNAL};
use super::session::ExperimentRequest;
use crate::error::Error;

/// Schema tag of every journal record.
pub const JOURNAL_SCHEMA: &str = "stacksim-journal/1";

/// An open, append-only request journal. See the [module docs](self).
#[derive(Debug)]
pub struct RequestJournal {
    path: PathBuf,
    file: Mutex<File>,
}

/// What [`RequestJournal::recover`] found on disk.
#[derive(Debug)]
pub struct JournalRecovery {
    /// The fresh journal, open for appends at the original path.
    pub journal: RequestJournal,
    /// Accepted-but-unfinished requests, in journal order, deduplicated
    /// by canonical encoding. Resubmit these.
    pub unfinished: Vec<ExperimentRequest>,
    /// Lines skipped because they would not parse as journal records.
    pub corrupt_skipped: u64,
}

impl RequestJournal {
    /// Recovers the journal at `path`: moves any previous file aside,
    /// parses it, and opens a fresh journal. See the [module docs](self)
    /// for the crash-safety argument.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the directory cannot be created or the files
    /// cannot be moved, read, or created. Unparseable *content* is never
    /// an error — it is skipped and counted.
    pub fn recover(path: &Path) -> Result<JournalRecovery, Error> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent).map_err(|e| Error::io(parent.to_path_buf(), e))?;
            }
        }
        let replay = replay_path(path);
        if path.exists() {
            if replay.exists() {
                // a crash mid-replay left both files; fold the newer
                // records onto the durable copy before starting over
                let text = fs::read_to_string(path).map_err(|e| Error::io(path, e))?;
                let mut side = OpenOptions::new()
                    .append(true)
                    .open(&replay)
                    .map_err(|e| Error::io(&replay, e))?;
                side.write_all(text.as_bytes())
                    .and_then(|()| side.sync_data())
                    .map_err(|e| Error::io(&replay, e))?;
                fs::remove_file(path).map_err(|e| Error::io(path, e))?;
            } else {
                fs::rename(path, &replay).map_err(|e| Error::io(path, e))?;
            }
        }

        let (unfinished, corrupt_skipped) = if replay.exists() {
            let text = fs::read_to_string(&replay).map_err(|e| Error::io(&replay, e))?;
            parse_records(&text)
        } else {
            (Vec::new(), 0)
        };
        if corrupt_skipped > 0 && stacksim_obs::enabled() {
            stacksim_obs::counter(super::obs::JOURNAL_CORRUPT_SKIPPED).add(corrupt_skipped);
        }

        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| Error::io(path, e))?;
        Ok(JournalRecovery {
            journal: RequestJournal {
                path: path.to_path_buf(),
                file: Mutex::new(file),
            },
            unfinished,
            corrupt_skipped,
        })
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Removes the recovery side file, once every unfinished entry has
    /// been resubmitted (each resubmission re-appended it here).
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when an existing side file cannot be removed.
    pub fn discard_replay(&self) -> Result<(), Error> {
        let replay = replay_path(&self.path);
        match fs::remove_file(&replay) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(Error::io(replay, e)),
        }
    }

    /// Appends an `accepted` record for a newly enqueued request.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on append or fsync failure (injected or real). The
    /// caller treats this as degraded durability, not a failed request.
    pub(super) fn record_accepted(
        &self,
        id: u64,
        request: &ExperimentRequest,
    ) -> Result<(), Error> {
        self.append(
            "accepted",
            vec![
                ("id", Json::Num(id as f64)),
                ("request", request.to_journal_json()),
            ],
        )
    }

    /// Appends a `done` record for a slot that reached a terminal
    /// outcome.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on append or fsync failure.
    pub(super) fn record_done(&self, id: u64, ok: bool) -> Result<(), Error> {
        self.append(
            "done",
            vec![("id", Json::Num(id as f64)), ("ok", Json::Bool(ok))],
        )
    }

    fn lock(&self) -> MutexGuard<'_, File> {
        self.file.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn append(&self, ev: &str, fields: Vec<(&str, Json)>) -> Result<(), Error> {
        let mut obj = vec![
            ("schema", Json::Str(JOURNAL_SCHEMA.to_string())),
            ("ev", Json::Str(ev.to_string())),
        ];
        obj.extend(fields);
        let mut line = Json::obj(obj).encode();
        line.push('\n');

        if stacksim_faults::armed() {
            match stacksim_faults::check(SITE_SESSION_JOURNAL, ev) {
                Some(Fault::IoTransient) => {
                    return Err(injected_io(SITE_SESSION_JOURNAL, ev));
                }
                Some(Fault::Stall { ms }) => {
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
                // a journal that lies: the bytes land mangled, and the
                // *next* recovery must skip them without failing
                Some(Fault::Corrupt) => {
                    line = format!("#corrupt#{line}");
                }
                Some(Fault::Truncate) => {
                    line.truncate(line.len() / 2);
                }
                _ => {}
            }
        }

        let mut file = self.lock();
        file.write_all(line.as_bytes())
            .and_then(|()| file.sync_data())
            .map_err(|e| Error::io(self.path.clone(), e))?;
        if stacksim_obs::enabled() {
            stacksim_obs::counter(super::obs::JOURNAL_APPENDED).add(1);
        }
        Ok(())
    }
}

fn replay_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".replay");
    path.with_file_name(name)
}

/// Parses journal text into `(unfinished requests, skipped lines)`.
/// Tolerant by construction: any line that is not a well-formed record
/// counts as skipped and parsing continues.
fn parse_records(text: &str) -> (Vec<ExperimentRequest>, u64) {
    let mut accepted: Vec<(u64, ExperimentRequest)> = Vec::new();
    let mut done: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    let mut skipped = 0u64;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Some((ev, id, doc)) = parse_record(line) else {
            skipped += 1;
            continue;
        };
        match ev.as_str() {
            "accepted" => {
                let request = doc
                    .get("request")
                    .and_then(ExperimentRequest::from_journal_json);
                match request {
                    Some(request) => accepted.push((id, request)),
                    None => skipped += 1,
                }
            }
            "done" => {
                done.insert(id);
            }
            _ => skipped += 1,
        }
    }
    let mut seen = std::collections::BTreeSet::new();
    let unfinished = accepted
        .into_iter()
        .filter(|(id, _)| !done.contains(id))
        .map(|(_, request)| request)
        .filter(|request| seen.insert(request.to_journal_json().encode()))
        .collect();
    (unfinished, skipped)
}

fn parse_record(line: &str) -> Option<(String, u64, Json)> {
    let doc = Json::parse(line).ok()?;
    if doc.get("schema").and_then(Json::as_str) != Some(JOURNAL_SCHEMA) {
        return None;
    }
    let ev = doc.get("ev").and_then(Json::as_str)?.to_string();
    let id = doc.get("id").and_then(Json::as_u64)?;
    Some((ev, id, doc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stacksim_workloads::Scale;

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("stacksim-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create tempdir");
        dir
    }

    #[test]
    fn unfinished_entries_survive_a_recovery_cycle() {
        let dir = tempdir("cycle");
        let path = dir.join("requests.jsonl");

        let rec = RequestJournal::recover(&path).expect("fresh journal");
        assert!(rec.unfinished.is_empty());
        assert_eq!(rec.corrupt_skipped, 0);
        let req_done = ExperimentRequest::new("fig3").scale(Scale::Test);
        let req_open = ExperimentRequest::new("table4").seed(7).deadline_ms(500);
        rec.journal.record_accepted(1, &req_done).expect("append");
        rec.journal.record_accepted(2, &req_open).expect("append");
        rec.journal.record_done(1, true).expect("append");
        drop(rec);

        // "crash": recover from the same path
        let rec = RequestJournal::recover(&path).expect("recovers");
        assert_eq!(rec.corrupt_skipped, 0);
        assert_eq!(rec.unfinished.len(), 1, "only the open request replays");
        assert_eq!(
            rec.unfinished[0].to_journal_json().encode(),
            req_open.to_journal_json().encode()
        );
        // the durable copy exists until the caller discards it
        assert!(replay_path(&path).exists());
        rec.journal.discard_replay().expect("discard");
        assert!(!replay_path(&path).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_truncated_lines_are_skipped_not_fatal() {
        let dir = tempdir("corrupt");
        let path = dir.join("requests.jsonl");
        let rec = RequestJournal::recover(&path).expect("fresh journal");
        rec.journal
            .record_accepted(1, &ExperimentRequest::new("fig3"))
            .expect("append");
        drop(rec);
        // simulate a crash mid-append plus unrelated garbage
        let mut text = fs::read_to_string(&path).expect("read");
        text.push_str("{\"schema\":\"stacksim-journal/1\",\"ev\":\"acc"); // truncated
        text.push('\n');
        text.push_str("not json at all\n");
        fs::write(&path, text).expect("write");

        let rec = RequestJournal::recover(&path).expect("recovers");
        assert_eq!(rec.corrupt_skipped, 2);
        assert_eq!(rec.unfinished.len(), 1, "the intact record still replays");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_entries_from_an_interrupted_replay_deduplicate() {
        let dir = tempdir("dup");
        let path = dir.join("requests.jsonl");
        let req = ExperimentRequest::new("fig3").seed(3);
        let rec = RequestJournal::recover(&path).expect("fresh journal");
        rec.journal.record_accepted(5, &req).expect("append");
        drop(rec);
        // first recovery moves the file aside and re-appends (the
        // resubmission) — then crash before discard_replay
        let rec = RequestJournal::recover(&path).expect("recovers");
        assert_eq!(rec.unfinished.len(), 1);
        rec.journal.record_accepted(0, &req).expect("re-append");
        drop(rec);
        // both files now hold the same request; the next recovery folds
        // them and still replays it exactly once
        let rec = RequestJournal::recover(&path).expect("recovers again");
        assert_eq!(rec.corrupt_skipped, 0);
        assert_eq!(rec.unfinished.len(), 1, "deduplicated across both files");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_schema_records_are_skipped() {
        let (unfinished, skipped) =
            parse_records("{\"schema\":\"stacksim-faults/1\",\"ev\":\"accepted\",\"id\":1}\n");
        assert!(unfinished.is_empty());
        assert_eq!(skipped, 1);
    }
}
