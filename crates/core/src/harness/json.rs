//! A minimal, dependency-free JSON tree used for artifacts and run
//! reports.
//!
//! Two properties matter more than generality:
//!
//! * **Deterministic encoding** — object members keep insertion order and
//!   floats print via Rust's shortest round-trip formatting, so encoding
//!   the same value always yields the same bytes (this is what makes
//!   "parallel results bit-identical to serial" checkable at the byte
//!   level).
//! * **Exact `f64` round-trip** — `encode` then `parse` returns the same
//!   bit pattern for every finite double; the non-standard tokens
//!   `Infinity`, `-Infinity` and `NaN` cover the non-finite values that
//!   real artifacts contain (e.g. an infinite bandwidth-reduction factor).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always an `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// An array of numbers.
    pub fn nums<I: IntoIterator<Item = f64>>(vals: I) -> Json {
        Json::Arr(vals.into_iter().map(Json::Num).collect())
    }

    /// Looks up an object member.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Serializes to a compact string.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => write_f64(*v, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a string produced by [`encode`](Self::encode) (or any JSON
    /// document plus the `Infinity` / `NaN` extensions).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("Infinity");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Infinity");
    } else {
        // Rust's Display prints the shortest string that round-trips.
        let _ = write!(out, "{v}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            None => Err("unexpected end of input".into()),
            Some(b'n') if self.eat("null") => Ok(Json::Null),
            Some(b't') if self.eat("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Json::Bool(false)),
            Some(b'N') if self.eat("NaN") => Ok(Json::Num(f64::NAN)),
            Some(b'I') if self.eat("Infinity") => Ok(Json::Num(f64::INFINITY)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-Infinity") => {
                self.pos += "-Infinity".len();
                Ok(Json::Num(f64::NEG_INFINITY))
            }
            Some(_) => self.number(),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.pos += 1; // consume '['
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.pos += 1; // consume '{'
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(format!("expected object key at byte {}", self.pos));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(format!("expected ':' at byte {}", self.pos));
            }
            self.pos += 1;
            out.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.pos += 1; // consume '"'
        let mut out = String::new();
        loop {
            let start = self.pos;
            // fast-forward over the unescaped run
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(
                                char::from_u32(code).ok_or("\\u escape is not a scalar value")?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    self.pos += 1;
                }
                // the fast-forward loop stops only on a quote or a
                // backslash, but a structural error beats a worker panic
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid utf-8 in number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let v = Json::obj(vec![
            ("name", Json::Str("fig5:gauss".into())),
            ("cpma", Json::nums([3.25, 2.125, f64::INFINITY])),
            ("cached", Json::Bool(false)),
            ("none", Json::Null),
        ]);
        let text = v.encode();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn f64_round_trip_is_exact() {
        for v in [
            0.1,
            -1.0 / 3.0,
            std::f64::consts::PI,
            1e-300,
            2.2250738585072014e-308,
            88.351_234_567_890_12,
            f64::MAX,
        ] {
            let text = Json::Num(v).encode();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} -> {text}");
        }
        // non-finite extensions
        assert_eq!(
            Json::parse("Infinity").unwrap().as_f64().unwrap(),
            f64::INFINITY
        );
        assert_eq!(
            Json::parse("-Infinity").unwrap().as_f64().unwrap(),
            f64::NEG_INFINITY
        );
        assert!(Json::parse("NaN").unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{1}f/𝛼";
        let text = Json::Str(s.into()).encode();
        assert_eq!(Json::parse(&text).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{]").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn encoding_is_deterministic() {
        let v = Json::obj(vec![("b", Json::Num(1.0)), ("a", Json::Num(2.0))]);
        // insertion order is preserved, not sorted
        assert_eq!(v.encode(), "{\"b\":1,\"a\":2}");
    }
}
