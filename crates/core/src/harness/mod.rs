//! The experiment harness: every table and figure of the paper as a
//! registered, memoizable, parallel-runnable [`Experiment`].
//!
//! The harness replaces the old pattern of one ad-hoc `main` per figure
//! with a uniform pipeline:
//!
//! 1. [`Registry::standard`] lists every experiment — `fig3`, the twelve
//!    `fig5:<bench>` points, the `fig5` aggregate, `fig6`, `fig8`,
//!    `fig11`, `table4`, `table5` and the `headline` summary — together
//!    with their dependency edges (e.g. `headline` needs `fig5`, which
//!    needs all twelve per-benchmark points).
//! 2. [`Runner::run`] executes a selection (plus its transitive
//!    dependencies) as a dependency-aware fan-out across worker threads.
//! 3. Each result is serialized as a deterministic JSON [`Artifact`] and
//!    memoized on disk keyed by the experiment's
//!    [`params_digest`](Experiment::params_digest) — re-runs with the same
//!    configuration skip straight to the cached artifact.
//! 4. A [`RunReport`] records per-experiment telemetry: wall time, cache
//!    hits, conjugate-gradient solver iteration counts, simulated trace
//!    lengths and CPMA.
//!
//! # Example
//!
//! ```
//! use stacksim_core::harness::{Registry, RunOptions, Runner};
//! use stacksim_workloads::WorkloadParams;
//!
//! let runner = Runner::new(
//!     Registry::standard(),
//!     RunOptions::builder().params(WorkloadParams::test()).build(),
//! );
//! let outcome = runner.run(&["fig5:gauss".into()])?;
//! assert!(outcome.artifacts.contains_key("fig5:gauss"));
//! # Ok::<(), stacksim_core::Error>(())
//! ```

mod artifact;
mod cache;
pub mod check;
mod digest;
mod experiment;
mod journal;
pub mod json;
pub mod obs;
pub mod obs_report;
mod registry;
pub mod render;
pub mod resilience;
mod runner;
mod session;

pub use artifact::Artifact;
pub use cache::MemoCacheBuilder;
pub use cache::{default_cache_dir, MemoCache};
pub use check::{
    check_experiment, check_registry, digest_audit, fault_model, model_for, obs_audit, obs_model,
    preflight,
};
pub use digest::Digest;
pub use experiment::{Ctx, Experiment, MemRun, ParamSensitivity, Telemetry};
pub use journal::{JournalRecovery, RequestJournal, JOURNAL_SCHEMA};
pub use registry::Registry;
pub use resilience::{FailureEntry, FailureReport, Resilience, SolverDegrade};
pub use runner::{
    run_one, ExperimentReport, RunOptions, RunOptionsBuilder, RunOutcome, RunReport, Runner,
};
pub use session::{
    ExperimentRequest, RequestHandle, RequestOutcome, RequestStatus, Sim, SimBuilder, SimStats,
};
