//! Observability instruments of the experiment harness.
//!
//! The declared-name table is the SL060 lint contract: every instrument
//! the harness registers at runtime must appear in [`NAMES`].

/// Component tag of every instrument the harness owns.
pub const COMPONENT: &str = "harness";

/// Experiments executed (cache hits included).
pub const EXPERIMENTS: &str = "harness.experiments";
/// Experiments satisfied from the memo cache.
pub const CACHE_HITS: &str = "harness.cache_hits";
/// Experiments that missed the cache and actually ran.
pub const CACHE_MISSES: &str = "harness.cache_misses";
/// Bytes written to the memo cache by artifact stores.
pub const CACHE_BYTES_WRITTEN: &str = "harness.cache.bytes_written";
/// Experiments that failed (root causes and dependency skips).
pub const FAILURES: &str = "harness.failures";
/// Histogram of per-experiment wall time, microseconds.
pub const EXPERIMENT_WALL_US: &str = "harness.experiment.wall_us";

/// Every instrument name the harness may register.
pub const NAMES: &[&str] = &[
    EXPERIMENTS,
    CACHE_HITS,
    CACHE_MISSES,
    CACHE_BYTES_WRITTEN,
    FAILURES,
    EXPERIMENT_WALL_US,
];

/// Component tag of the runner's resilience instruments.
pub const RUNNER_COMPONENT: &str = "runner";
/// Transient-failure retries performed by the runner.
pub const RUNNER_RETRIES: &str = "runner.retries";
/// Every instrument name of the `runner` component.
pub const RUNNER_NAMES: &[&str] = &[RUNNER_RETRIES];

/// Component tag of the memo cache's resilience instruments.
pub const CACHE_COMPONENT: &str = "cache";
/// Corrupt cache entries moved to `quarantine/`.
pub const CACHE_QUARANTINED: &str = "cache.quarantined";
/// Entries removed by LRU eviction on a size-bounded cache.
pub const CACHE_EVICTIONS: &str = "cache.evictions";
/// Entries whose mtime the filesystem could not report during an
/// eviction scan (such entries are ordered last, never evicted first).
pub const CACHE_MTIME_UNREADABLE: &str = "cache.mtime_unreadable";
/// Every instrument name of the `cache` component.
pub const CACHE_NAMES: &[&str] = &[CACHE_QUARANTINED, CACHE_EVICTIONS, CACHE_MTIME_UNREADABLE];

/// Component tag of the `Sim` session / `stacksim serve` instruments.
pub const SERVE_COMPONENT: &str = "serve";
/// Experiment requests submitted to a `Sim` session (HTTP or embedded).
pub const SERVE_REQUESTS: &str = "serve.requests";
/// Requests coalesced onto an identical in-flight request.
pub const SERVE_DEDUP_HITS: &str = "serve.dedup_hits";
/// Requests currently queued or running in the session (gauge).
pub const SERVE_INFLIGHT: &str = "serve.inflight";
/// Submissions shed by admission control (the `--max-pending` bound).
pub const SERVE_SHED: &str = "serve.shed";
/// Requests that failed with a `deadline` error (their `deadline_ms`
/// budget ran out before the experiment recovered).
pub const SERVE_DEADLINE_EXCEEDED: &str = "serve.deadline_exceeded";
/// Connections rejected at accept by the `--max-conns` cap.
pub const SERVE_CONNS_REJECTED: &str = "serve.conns_rejected";
/// Whether the daemon is draining after SIGTERM (gauge, 0/1).
pub const SERVE_DRAINING: &str = "serve.draining";
/// Every instrument name of the `serve` component.
pub const SERVE_NAMES: &[&str] = &[
    SERVE_REQUESTS,
    SERVE_DEDUP_HITS,
    SERVE_INFLIGHT,
    SERVE_SHED,
    SERVE_DEADLINE_EXCEEDED,
    SERVE_CONNS_REJECTED,
    SERVE_DRAINING,
];

/// Component tag of the session request journal's instruments.
///
/// Like the `serve` table, the constants live here because the SL060
/// contract audits declared names against core's obs model.
pub const JOURNAL_COMPONENT: &str = "journal";
/// Records appended to the request journal (accepted + terminal).
pub const JOURNAL_APPENDED: &str = "journal.appended";
/// Unfinished journal entries resubmitted on daemon boot.
pub const JOURNAL_REPLAYED: &str = "journal.replayed";
/// Journal lines skipped during recovery (unparseable, wrong schema, or
/// truncated by a crash mid-append).
pub const JOURNAL_CORRUPT_SKIPPED: &str = "journal.corrupt_skipped";
/// Every instrument name of the `journal` component.
pub const JOURNAL_NAMES: &[&str] = &[JOURNAL_APPENDED, JOURNAL_REPLAYED, JOURNAL_CORRUPT_SKIPPED];

/// Component tag of the `stacksim explore` design-space instruments.
///
/// The constants live here (like the `serve` table) because the SL060
/// contract audits declared names against core's obs model; the
/// `stacksim-explore` crate registers them at runtime.
pub const EXPLORE_COMPONENT: &str = "explore";
/// Design points evaluated (assembled from sub-experiment artifacts).
pub const EXPLORE_POINTS: &str = "explore.points";
/// Sub-experiment requests submitted to the session by the explorer.
pub const EXPLORE_REQUESTS: &str = "explore.requests";
/// Sub-experiment requests served from the memo cache.
pub const EXPLORE_CACHE_HITS: &str = "explore.cache_hits";
/// Sub-experiment requests coalesced onto an identical in-flight one.
pub const EXPLORE_DEDUP_HITS: &str = "explore.dedup_hits";
/// Size of the final Pareto frontier (gauge).
pub const EXPLORE_FRONTIER_SIZE: &str = "explore.frontier_size";
/// Every instrument name of the `explore` component.
pub const EXPLORE_NAMES: &[&str] = &[
    EXPLORE_POINTS,
    EXPLORE_REQUESTS,
    EXPLORE_CACHE_HITS,
    EXPLORE_DEDUP_HITS,
    EXPLORE_FRONTIER_SIZE,
];

/// Component tag of the solver degradation instruments.
pub const SOLVER_COMPONENT: &str = "solver";
/// Solver degradation ladder steps taken after non-convergence.
pub const SOLVER_FALLBACKS: &str = "solver.fallbacks";
/// Every instrument name of the `solver` component.
pub const SOLVER_NAMES: &[&str] = &[SOLVER_FALLBACKS];

/// Span wrapping one harness invocation (`begin` at scheduling, `end`
/// with `experiments`/`wall_us` fields).
pub const EVENT_RUN: &str = "harness.run";
/// Span wrapping one experiment execution (`end` carries
/// `experiment`/`cached`/`wall_us` fields).
pub const EVENT_EXPERIMENT: &str = "harness.experiment";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_names_are_unique_and_prefixed() {
        let mut seen = std::collections::BTreeSet::new();
        for (component, names) in [
            (COMPONENT, NAMES),
            (RUNNER_COMPONENT, RUNNER_NAMES),
            (CACHE_COMPONENT, CACHE_NAMES),
            (SOLVER_COMPONENT, SOLVER_NAMES),
            (SERVE_COMPONENT, SERVE_NAMES),
            (JOURNAL_COMPONENT, JOURNAL_NAMES),
            (EXPLORE_COMPONENT, EXPLORE_NAMES),
        ] {
            for name in names {
                assert!(seen.insert(name), "duplicate declared name {name}");
                assert!(
                    name.starts_with(&format!("{component}.")),
                    "{name} must carry the {component} prefix"
                );
            }
        }
    }
}
