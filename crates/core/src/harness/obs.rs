//! Observability instruments of the experiment harness.
//!
//! The declared-name table is the SL060 lint contract: every instrument
//! the harness registers at runtime must appear in [`NAMES`].

/// Component tag of every instrument the harness owns.
pub const COMPONENT: &str = "harness";

/// Experiments executed (cache hits included).
pub const EXPERIMENTS: &str = "harness.experiments";
/// Experiments satisfied from the memo cache.
pub const CACHE_HITS: &str = "harness.cache_hits";
/// Experiments that missed the cache and actually ran.
pub const CACHE_MISSES: &str = "harness.cache_misses";
/// Bytes written to the memo cache by artifact stores.
pub const CACHE_BYTES_WRITTEN: &str = "harness.cache.bytes_written";
/// Experiments that failed (root causes and dependency skips).
pub const FAILURES: &str = "harness.failures";
/// Histogram of per-experiment wall time, microseconds.
pub const EXPERIMENT_WALL_US: &str = "harness.experiment.wall_us";

/// Every instrument name the harness may register.
pub const NAMES: &[&str] = &[
    EXPERIMENTS,
    CACHE_HITS,
    CACHE_MISSES,
    CACHE_BYTES_WRITTEN,
    FAILURES,
    EXPERIMENT_WALL_US,
];

/// Span wrapping one harness invocation (`begin` at scheduling, `end`
/// with `experiments`/`wall_us` fields).
pub const EVENT_RUN: &str = "harness.run";
/// Span wrapping one experiment execution (`end` carries
/// `experiment`/`cached`/`wall_us` fields).
pub const EVENT_EXPERIMENT: &str = "harness.experiment";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_names_are_unique_and_prefixed() {
        let mut seen = std::collections::BTreeSet::new();
        for name in NAMES {
            assert!(seen.insert(name), "duplicate declared name {name}");
            assert!(
                name.starts_with("harness."),
                "{name} must carry the {COMPONENT} prefix"
            );
        }
    }
}
