//! Reading, validating and rendering observability artifacts — the
//! backend of `--metrics-out`, `--events` and `stacksim stats`.
//!
//! The snapshot document is the `stacksim-obs/1` schema produced by
//! [`stacksim_obs::Snapshot::encode`]; it round-trips through the
//! harness [`Json`] parser (both sides share the `Infinity` / `NaN`
//! float extensions), so everything here validates structurally, not
//! textually.

use std::path::{Path, PathBuf};

use super::json::Json;
use crate::error::Error;
use crate::report::TextTable;

/// Where `stacksim run` / `bench` drop the most recent metrics snapshot
/// for `stacksim stats` to pick up.
pub fn default_snapshot_path() -> PathBuf {
    Path::new("target").join("stacksim-obs").join("last.json")
}

/// Encode the current global registry snapshot and write it to `path`,
/// creating parent directories as needed.
///
/// # Errors
///
/// [`Error::Io`] on filesystem failure.
pub fn write_snapshot(path: &Path) -> Result<(), Error> {
    let text = stacksim_obs::registry().snapshot().encode();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| Error::io(parent.to_path_buf(), e))?;
        }
    }
    std::fs::write(path, text).map_err(|e| Error::io(path.to_path_buf(), e))
}

/// Structural summary of a validated snapshot document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotSummary {
    /// Counter instruments present.
    pub counters: usize,
    /// Gauge instruments present.
    pub gauges: usize,
    /// Histogram instruments present.
    pub histograms: usize,
}

fn num_map<'a>(doc: &'a Json, key: &str) -> Result<&'a [(String, Json)], String> {
    match doc.get(key) {
        Some(Json::Obj(m)) => Ok(m),
        Some(_) => Err(format!("'{key}' must be an object")),
        None => Err(format!("missing '{key}' object")),
    }
}

/// Validate a `stacksim-obs/1` snapshot document.
///
/// # Errors
///
/// A human-readable description of the first schema violation: bad
/// JSON, wrong `schema` tag, non-numeric instrument values, or
/// malformed histogram records.
pub fn validate_snapshot(text: &str) -> Result<SnapshotSummary, String> {
    let doc = Json::parse(text)?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == stacksim_obs::SNAPSHOT_SCHEMA => {}
        Some(s) => {
            return Err(format!(
                "schema '{s}' is not '{}'",
                stacksim_obs::SNAPSHOT_SCHEMA
            ))
        }
        None => return Err("missing 'schema' string".to_string()),
    }
    let counters = num_map(&doc, "counters")?;
    for (name, v) in counters {
        v.as_u64()
            .ok_or_else(|| format!("counter '{name}' is not a non-negative integer"))?;
    }
    let gauges = num_map(&doc, "gauges")?;
    for (name, v) in gauges {
        v.as_f64()
            .ok_or_else(|| format!("gauge '{name}' is not a number"))?;
    }
    let histograms = num_map(&doc, "histograms")?;
    for (name, h) in histograms {
        let field = |k: &str| -> Result<u64, String> {
            h.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("histogram '{name}' field '{k}' is not an integer"))
        };
        let count = field("count")?;
        field("sum")?;
        let min = field("min")?;
        let max = field("max")?;
        if count > 0 && min > max {
            return Err(format!("histogram '{name}' has min {min} > max {max}"));
        }
        let buckets = h
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("histogram '{name}' is missing 'buckets'"))?;
        let mut total = 0u64;
        for b in buckets {
            let pair = b
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| format!("histogram '{name}' bucket is not an [index,count] pair"))?;
            let idx = pair[0]
                .as_u64()
                .ok_or_else(|| format!("histogram '{name}' bucket index is not an integer"))?;
            if idx > 64 {
                return Err(format!(
                    "histogram '{name}' bucket index {idx} out of range"
                ));
            }
            total += pair[1]
                .as_u64()
                .ok_or_else(|| format!("histogram '{name}' bucket count is not an integer"))?;
        }
        if total != count {
            return Err(format!(
                "histogram '{name}' bucket counts sum to {total}, not count {count}"
            ));
        }
    }
    Ok(SnapshotSummary {
        counters: counters.len(),
        gauges: gauges.len(),
        histograms: histograms.len(),
    })
}

/// Structural summary of a validated event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventsSummary {
    /// Completed spans (matched `begin`/`end` pairs).
    pub spans: usize,
    /// Point events.
    pub points: usize,
}

/// Validate a JSONL event log: every line parses, carries a known
/// `ev` kind, a name and a monotone-clock timestamp; every `end`
/// matches an open `begin` of the same span id and name, and no span
/// is left open at EOF.
///
/// # Errors
///
/// A human-readable description of the first violation, prefixed with
/// its 1-based line number.
pub fn validate_events(text: &str) -> Result<EventsSummary, String> {
    let mut open: std::collections::HashMap<u64, String> = std::collections::HashMap::new();
    let mut spans = 0usize;
    let mut points = 0usize;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let ev = doc
            .get("ev")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {lineno}: missing 'ev' kind"))?;
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {lineno}: missing 'name'"))?
            .to_string();
        doc.get("t_us")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("line {lineno}: missing integer 't_us'"))?;
        match ev {
            "begin" | "end" => {
                let id = doc
                    .get("span")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("line {lineno}: missing integer 'span' id"))?;
                if id == 0 {
                    return Err(format!(
                        "line {lineno}: span id 0 is reserved for inert spans"
                    ));
                }
                if ev == "begin" {
                    if open.insert(id, name).is_some() {
                        return Err(format!("line {lineno}: span {id} began twice"));
                    }
                } else {
                    match open.remove(&id) {
                        Some(opened) if opened == name => spans += 1,
                        Some(opened) => {
                            return Err(format!(
                                "line {lineno}: span {id} ended as '{name}' but began as '{opened}'"
                            ))
                        }
                        None => {
                            return Err(format!("line {lineno}: span {id} ended without a begin"))
                        }
                    }
                }
            }
            "point" => points += 1,
            other => return Err(format!("line {lineno}: unknown event kind '{other}'")),
        }
    }
    if let Some((id, name)) = open.iter().next() {
        return Err(format!("span {id} ('{name}') never ended"));
    }
    Ok(EventsSummary { spans, points })
}

/// Render a validated snapshot as the table `stacksim stats` prints.
///
/// # Errors
///
/// The same schema violations as [`validate_snapshot`].
pub fn render_snapshot(text: &str) -> Result<String, String> {
    validate_snapshot(text)?;
    let doc = Json::parse(text)?;
    let mut out = String::new();
    let counters = num_map(&doc, "counters")?;
    if !counters.is_empty() {
        let mut t = TextTable::new(["counter", "value"]);
        for (name, v) in counters {
            t.row([name.clone(), v.as_u64().unwrap_or(0).to_string()]);
        }
        out.push_str(&t.render());
    }
    let gauges = num_map(&doc, "gauges")?;
    if !gauges.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        let mut t = TextTable::new(["gauge", "value"]);
        for (name, v) in gauges {
            t.row([name.clone(), format!("{}", v.as_f64().unwrap_or(0.0))]);
        }
        out.push_str(&t.render());
    }
    let histograms = num_map(&doc, "histograms")?;
    if !histograms.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        let mut t = TextTable::new(["histogram", "count", "sum", "min", "max", "mean"]);
        for (name, h) in histograms {
            let get = |k: &str| h.get(k).and_then(Json::as_u64).unwrap_or(0);
            let (count, sum) = (get("count"), get("sum"));
            let mean = if count == 0 {
                "-".to_string()
            } else {
                format!("{:.1}", sum as f64 / count as f64)
            };
            t.row([
                name.clone(),
                count.to_string(),
                sum.to_string(),
                get("min").to_string(),
                get("max").to_string(),
                mean,
            ]);
        }
        out.push_str(&t.render());
    }
    if out.is_empty() {
        out.push_str("no instruments registered\n");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> String {
        let snap = stacksim_obs::Snapshot {
            counters: vec![("mem.accesses".into(), 42)],
            gauges: vec![("mem.bus.backlog_cycles".into(), 1.5)],
            histograms: vec![stacksim_obs::HistogramSnapshot {
                name: "mem.bus.queue_cycles".into(),
                count: 3,
                sum: 9,
                min: 1,
                max: 5,
                buckets: vec![(1, 2), (3, 1)],
            }],
        };
        snap.encode()
    }

    #[test]
    fn encoded_snapshot_validates_and_renders() {
        let text = sample();
        let s = validate_snapshot(&text).expect("valid");
        assert_eq!(
            s,
            SnapshotSummary {
                counters: 1,
                gauges: 1,
                histograms: 1
            }
        );
        let rendered = render_snapshot(&text).expect("renders");
        assert!(rendered.contains("mem.accesses"));
        assert!(rendered.contains("42"));
        assert!(rendered.contains("mem.bus.queue_cycles"));
    }

    #[test]
    fn snapshot_validation_rejects_schema_and_structure_errors() {
        assert!(validate_snapshot("not json").is_err());
        assert!(validate_snapshot("{\"schema\":\"other/9\"}").is_err());
        let bad_sum = sample().replace("\"count\":3", "\"count\":4");
        let err = validate_snapshot(&bad_sum).expect_err("bucket sum mismatch");
        assert!(err.contains("bucket counts"), "unexpected error: {err}");
    }

    #[test]
    fn event_logs_validate_pairing() {
        let good = "\
{\"ev\":\"begin\",\"span\":1,\"name\":\"harness.run\",\"t_us\":0}\n\
{\"ev\":\"point\",\"name\":\"thermal.cg.solve\",\"t_us\":3,\"fields\":{\"iters\":7}}\n\
{\"ev\":\"end\",\"span\":1,\"name\":\"harness.run\",\"t_us\":9,\"fields\":{}}\n";
        assert_eq!(
            validate_events(good).expect("valid"),
            EventsSummary {
                spans: 1,
                points: 1
            }
        );
        let unclosed = "{\"ev\":\"begin\",\"span\":2,\"name\":\"x\",\"t_us\":0}\n";
        assert!(validate_events(unclosed).is_err());
        let mismatched = "\
{\"ev\":\"begin\",\"span\":3,\"name\":\"a\",\"t_us\":0}\n\
{\"ev\":\"end\",\"span\":3,\"name\":\"b\",\"t_us\":1}\n";
        assert!(validate_events(mismatched).is_err());
    }
}
