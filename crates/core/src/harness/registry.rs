//! The standard experiment registry: every table and figure of the paper.

use std::sync::Arc;

use stacksim_thermal::SolverConfig;
use stacksim_workloads::{RmsBenchmark, WorkloadParams};

use super::artifact::Artifact;
use super::digest::Digest;
use super::experiment::{Ctx, Experiment, ParamSensitivity};
use crate::error::Error;
use crate::logic_logic;
use crate::memory_logic::{self, Fig5Data};
use crate::sensitivity;
use crate::stacking::StackOption;

/// Bump when an artifact's meaning or encoding changes, so stale cache
/// entries from older code cannot be mistaken for valid results.
const SCHEMA_VERSION: u64 = 1;

/// The PRNG seed the Table 4 experiment uses (matches the headline
/// driver's historical choice).
const TABLE4_SEED: u64 = 7;

fn base_digest(name: &str) -> Digest {
    let mut d = Digest::new();
    d.u64(SCHEMA_VERSION).str(name);
    d
}

fn absorb_workload(d: &mut Digest, params: &WorkloadParams) {
    d.u64(params.pick(0, 1) as u64)
        .u64(params.seed)
        .usize(params.threads)
        .usize(params.chunk);
}

/// The solver configuration the thermal experiments run under:
/// semantically the default, with the execution knobs (worker threads)
/// taken from the run's parameters, and the runner's degradation ladder
/// applied on retry attempts after non-convergence.
fn solver_config(ctx: &Ctx) -> SolverConfig {
    ctx.solver_config(
        SolverConfig::builder()
            .threads(ctx.params.solver_threads)
            .build(),
    )
}

fn absorb_solver(d: &mut Digest) {
    let cfg = SolverConfig::default();
    // `threads` is deliberately absent: the solver is bit-identical for
    // any thread count (its determinism contract), so it must not split
    // the cache. The preconditioner changes the iteration path, so it is
    // absorbed.
    d.usize(cfg.nx)
        .usize(cfg.ny)
        .usize(cfg.max_iters)
        .f64(cfg.tolerance)
        .str(cfg.preconditioner.label());
}

/// How many µops per workload class Table 4 simulates at each scale.
fn table4_uops(params: &WorkloadParams) -> usize {
    params.pick(10_000, 60_000)
}

/// A named collection of experiments with dependency edges.
///
/// Cloning is cheap: experiments are shared behind [`Arc`]s.
#[derive(Clone)]
pub struct Registry {
    experiments: Vec<Arc<dyn Experiment>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("experiments", &self.names())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry {
            experiments: Vec::new(),
        }
    }

    /// Every experiment of the paper: `fig3`, twelve `fig5:<bench>`
    /// points, the `fig5` aggregate, `fig6`, `fig8`, `fig11`, `table4`,
    /// `table5` and `headline`.
    pub fn standard() -> Self {
        let mut r = Registry::new();
        r.add(Arc::new(Fig3Exp));
        for bench in RmsBenchmark::all() {
            r.add(Arc::new(Fig5BenchExp {
                bench,
                name: fig5_point_name(bench),
            }));
        }
        r.add(Arc::new(Fig5Exp));
        r.add(Arc::new(Fig6Exp));
        r.add(Arc::new(Fig8Exp));
        r.add(Arc::new(Fig11Exp));
        r.add(Arc::new(Table4Exp));
        r.add(Arc::new(Table5Exp));
        r.add(Arc::new(HeadlineExp));
        r
    }

    /// Registers an experiment.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken — two experiments sharing a
    /// name would silently shadow each other in the cache.
    pub fn add(&mut self, exp: Arc<dyn Experiment>) {
        assert!(
            self.get(exp.name()).is_none(),
            "duplicate experiment name '{}'",
            exp.name()
        );
        self.experiments.push(exp);
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.experiments.iter().map(|e| e.name()).collect()
    }

    /// Looks up an experiment by name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Experiment>> {
        self.experiments.iter().find(|e| e.name() == name).cloned()
    }

    /// All experiments, in registration order.
    pub fn experiments(&self) -> &[Arc<dyn Experiment>] {
        &self.experiments
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::standard()
    }
}

/// The name of the per-benchmark Fig. 5 experiment.
fn fig5_point_name(bench: RmsBenchmark) -> String {
    format!("fig5:{}", bench.name())
}

fn wrong_kind(experiment: &str, dep: &str, wanted: &str, actual: &Artifact) -> Error {
    Error::ArtifactKind {
        experiment: experiment.to_string(),
        artifact: dep.to_string(),
        expected: wanted.to_string(),
        actual: actual.kind().to_string(),
    }
}

struct Fig3Exp;

impl Experiment for Fig3Exp {
    fn name(&self) -> &str {
        "fig3"
    }

    fn sensitivity(&self) -> ParamSensitivity {
        ParamSensitivity::none()
    }

    fn params_digest(&self, _params: &WorkloadParams) -> String {
        let mut d = base_digest(self.name());
        absorb_solver(&mut d);
        d.hex()
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, Error> {
        let (data, stats) = sensitivity::fig3_with(solver_config(ctx))?;
        ctx.record_solver(stats);
        Ok(Artifact::Fig3(data))
    }
}

struct Fig5BenchExp {
    bench: RmsBenchmark,
    name: String,
}

impl Experiment for Fig5BenchExp {
    fn name(&self) -> &str {
        &self.name
    }

    fn params_digest(&self, params: &WorkloadParams) -> String {
        let mut d = base_digest(&self.name);
        absorb_workload(&mut d, params);
        d.hex()
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, Error> {
        let (row, telemetry) = memory_logic::run_benchmark_instrumented(self.bench, &ctx.params)?;
        for (option, t) in StackOption::all().into_iter().zip(telemetry) {
            ctx.record_mem(format!("{}/{}", self.bench.name(), option.label()), t);
        }
        Ok(Artifact::Fig5Row(row))
    }
}

struct Fig5Exp;

impl Experiment for Fig5Exp {
    fn name(&self) -> &str {
        "fig5"
    }

    fn deps(&self) -> Vec<String> {
        RmsBenchmark::all()
            .into_iter()
            .map(fig5_point_name)
            .collect()
    }

    fn params_digest(&self, params: &WorkloadParams) -> String {
        let mut d = base_digest(self.name());
        absorb_workload(&mut d, params);
        d.hex()
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, Error> {
        let mut rows = Vec::new();
        for bench in RmsBenchmark::all() {
            let dep = fig5_point_name(bench);
            match ctx.dep(&dep)? {
                Artifact::Fig5Row(row) => rows.push(row.clone()),
                other => return Err(wrong_kind(self.name(), &dep, "fig5_row", other)),
            }
        }
        Ok(Artifact::Fig5(Fig5Data { rows }))
    }
}

struct HeadlineExp;

impl Experiment for HeadlineExp {
    fn name(&self) -> &str {
        "headline"
    }

    fn deps(&self) -> Vec<String> {
        vec!["fig5".to_string()]
    }

    fn params_digest(&self, params: &WorkloadParams) -> String {
        let mut d = base_digest(self.name());
        absorb_workload(&mut d, params);
        d.hex()
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, Error> {
        match ctx.dep("fig5")? {
            Artifact::Fig5(data) => Ok(Artifact::Headline(data.headline())),
            other => Err(wrong_kind(self.name(), "fig5", "fig5", other)),
        }
    }
}

struct Fig6Exp;

impl Experiment for Fig6Exp {
    fn name(&self) -> &str {
        "fig6"
    }

    fn sensitivity(&self) -> ParamSensitivity {
        ParamSensitivity::none()
    }

    fn params_digest(&self, _params: &WorkloadParams) -> String {
        let mut d = base_digest(self.name());
        absorb_solver(&mut d);
        d.hex()
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, Error> {
        let ((power, field), stats) = memory_logic::fig6_with(solver_config(ctx))?;
        ctx.record_solver(stats);
        Ok(Artifact::Fig6 { power, field })
    }
}

struct Fig8Exp;

impl Experiment for Fig8Exp {
    fn name(&self) -> &str {
        "fig8"
    }

    fn sensitivity(&self) -> ParamSensitivity {
        ParamSensitivity::none()
    }

    fn params_digest(&self, _params: &WorkloadParams) -> String {
        let mut d = base_digest(self.name());
        absorb_solver(&mut d);
        d.hex()
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, Error> {
        let (points, stats) = memory_logic::fig8_with(solver_config(ctx))?;
        ctx.record_solver(stats);
        Ok(Artifact::Fig8(points))
    }
}

struct Fig11Exp;

impl Experiment for Fig11Exp {
    fn name(&self) -> &str {
        "fig11"
    }

    fn sensitivity(&self) -> ParamSensitivity {
        ParamSensitivity::none()
    }

    fn params_digest(&self, _params: &WorkloadParams) -> String {
        let mut d = base_digest(self.name());
        absorb_solver(&mut d);
        d.hex()
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, Error> {
        let (points, stats) = logic_logic::fig11_with(solver_config(ctx))?;
        ctx.record_solver(stats);
        Ok(Artifact::Fig11(points))
    }
}

struct Table4Exp;

impl Experiment for Table4Exp {
    fn name(&self) -> &str {
        "table4"
    }

    fn sensitivity(&self) -> ParamSensitivity {
        ParamSensitivity::scale_only()
    }

    fn params_digest(&self, params: &WorkloadParams) -> String {
        let mut d = base_digest(self.name());
        d.usize(table4_uops(params)).u64(TABLE4_SEED);
        d.hex()
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, Error> {
        let t = logic_logic::table4(table4_uops(&ctx.params), TABLE4_SEED)?;
        Ok(Artifact::Table4(t))
    }
}

struct Table5Exp;

impl Experiment for Table5Exp {
    fn name(&self) -> &str {
        "table5"
    }

    fn sensitivity(&self) -> ParamSensitivity {
        ParamSensitivity::none()
    }

    fn params_digest(&self, _params: &WorkloadParams) -> String {
        let mut d = base_digest(self.name());
        absorb_solver(&mut d);
        d.hex()
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, Error> {
        let (rows, stats) = logic_logic::table5_with(solver_config(ctx))?;
        ctx.record_solver(stats);
        Ok(Artifact::Table5(rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_names_and_deps_resolve() {
        let r = Registry::standard();
        let names = r.names();
        // fig3 + 12 fig5 points + fig5 + headline + fig6/fig8/fig11/table4/table5
        assert_eq!(names.len(), 1 + 12 + 1 + 1 + 5);
        for required in [
            "fig3", "fig5", "fig6", "fig8", "fig11", "table4", "table5", "headline",
        ] {
            assert!(names.contains(&required), "missing {required}");
        }
        // every dependency edge points at a registered experiment
        for exp in r.experiments() {
            for dep in exp.deps() {
                assert!(r.get(&dep).is_some(), "{} -> missing {dep}", exp.name());
            }
        }
    }

    #[test]
    fn digests_separate_scales_and_experiments() {
        let r = Registry::standard();
        let exp = r.get("fig5:gauss").expect("registered");
        let test = exp.params_digest(&WorkloadParams::test());
        let paper = exp.params_digest(&WorkloadParams::paper());
        assert_ne!(test, paper, "scale must change the cache key");
        assert_eq!(test, exp.params_digest(&WorkloadParams::test()));

        let other = r.get("fig5:conj").expect("registered");
        assert_ne!(
            test,
            other.params_digest(&WorkloadParams::test()),
            "different experiments must never share keys"
        );

        // thermal experiments ignore workload scale entirely
        let fig8 = r.get("fig8").expect("registered");
        assert_eq!(
            fig8.params_digest(&WorkloadParams::test()),
            fig8.params_digest(&WorkloadParams::paper())
        );
    }

    #[test]
    fn solver_threads_never_split_the_cache() {
        // the execution knob is result-neutral by the solver's determinism
        // contract, so the cache key must not react to it
        let r = Registry::standard();
        for name in r.names() {
            let exp = r.get(name).expect("registered");
            let base = exp.params_digest(&WorkloadParams::paper());
            let threaded = exp.params_digest(&WorkloadParams::builder().solver_threads(8).build());
            assert_eq!(base, threaded, "{name} digest reacted to solver_threads");
        }
    }

    #[test]
    fn seed_changes_the_fig5_digest() {
        let r = Registry::standard();
        let exp = r.get("fig5:gauss").expect("registered");
        let a = exp.params_digest(&WorkloadParams::test());
        let b = exp.params_digest(&WorkloadParams::builder().seed(99).build());
        assert_ne!(a, b);
    }
}
