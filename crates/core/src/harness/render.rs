//! Text rendering of artifacts — the presentation layer shared by the
//! `stacksim` CLI and the per-figure regenerator binaries.

use std::fmt::Write as _;

use stacksim_floorplan::PowerGrid;
use stacksim_thermal::TemperatureField;

use super::artifact::Artifact;
use crate::memory_logic::Fig5Data;
use crate::report::{fmt_f, TextTable};
use crate::stacking::StackOption;

/// Renders any artifact as the text a human wants to read for that
/// figure or table.
pub fn render(artifact: &Artifact) -> String {
    match artifact {
        Artifact::Fig3(d) => {
            let mut t = TextTable::new(["k (W/mK)", "Cu metal layers (C)", "Bonding layer (C)"]);
            for (m, b) in d.cu_metal.iter().zip(&d.bond) {
                t.row([fmt_f(m.k, 0), fmt_f(m.peak_c, 2), fmt_f(b.peak_c, 2)]);
            }
            let mut out = t.render();
            let _ = write!(
                out,
                "span over the sweep: metal {:.2} C vs bond {:.2} C — the metal stack \
                 dominates, as in the paper",
                crate::sensitivity::Fig3Data::span(&d.cu_metal),
                crate::sensitivity::Fig3Data::span(&d.bond),
            );
            out
        }
        Artifact::Fig5Row(r) => {
            let mut t = TextTable::new(["bench", "4MB", "12MB", "32MB", "64MB", "red@32"]);
            t.row([
                r.benchmark.name().to_string(),
                fmt_f(r.cpma[0], 3),
                fmt_f(r.cpma[1], 3),
                fmt_f(r.cpma[2], 3),
                fmt_f(r.cpma[3], 3),
                format!("{:+.1}%", -100.0 * r.cpma_reduction(2)),
            ]);
            t.render()
        }
        Artifact::Fig5(d) => render_fig5(d),
        Artifact::Fig6 { power, field } => {
            let mut out = power_map(power);
            out.push('\n');
            out.push_str(&thermal_map(field, "active 1"));
            out
        }
        Artifact::Fig8(points) => {
            let paper = [88.35, 92.85, 88.43, 90.27];
            let mut t =
                TextTable::new(["option", "peak C (ours)", "peak C (paper)", "delta vs 2D"]);
            let base = points.first().map_or(0.0, |p| p.peak_c);
            for (p, target) in points.iter().zip(paper) {
                t.row([
                    p.option.label().to_string(),
                    fmt_f(p.peak_c, 2),
                    fmt_f(target, 2),
                    format!("{:+.2}", p.peak_c - base),
                ]);
            }
            let mut out = t.render();
            if let Some(p32) = points.get(2) {
                out.push_str("\n3D 32MB CPU-die thermal map (Fig. 8b), '@' = hottest:\n");
                out.push_str(&thermal_map(&p32.field, "active 1"));
            }
            out
        }
        Artifact::Fig11(points) => {
            let mut t = TextTable::new([
                "configuration",
                "power W",
                "peak C (ours)",
                "peak C (paper)",
            ]);
            for p in points {
                t.row([
                    p.label.to_string(),
                    fmt_f(p.power_w, 1),
                    fmt_f(p.peak_c, 2),
                    fmt_f(p.paper_c, 2),
                ]);
            }
            t.render()
        }
        Artifact::Table4(t4) => {
            let mut t =
                TextTable::new(["Functionality", "% stages eliminated", "ours %", "paper %"]);
            for r in &t4.rows {
                t.row([
                    r.path.name().to_string(),
                    r.stages.to_string(),
                    fmt_f(r.measured_pct, 2),
                    fmt_f(r.paper_pct, 2),
                ]);
            }
            t.row([
                "Total".to_string(),
                "~25%".to_string(),
                fmt_f(t4.total_pct, 2),
                "~15".to_string(),
            ]);
            t.render()
        }
        Artifact::Table5(rows) => {
            let mut t =
                TextTable::new(["row", "Pwr W", "Pwr %", "Temp C", "Perf %", "Vcc", "Freq"]);
            for r in rows {
                t.row([
                    r.label.to_string(),
                    fmt_f(r.power_w, 1),
                    fmt_f(r.power_pct, 0),
                    fmt_f(r.temp_c, 1),
                    fmt_f(r.perf_pct, 0),
                    fmt_f(r.vcc, 2),
                    fmt_f(r.freq, 2),
                ]);
            }
            t.render()
        }
        Artifact::Headline(h) => {
            let mut out = String::new();
            let _ = writeln!(
                out,
                "mean CPMA reduction   : {:>6.1}%   (paper: 13%)",
                100.0 * h.mean_cpma_reduction
            );
            let _ = writeln!(
                out,
                "peak CPMA reduction   : {:>6.1}%   (paper: as much as 55%)",
                100.0 * h.peak_cpma_reduction
            );
            let _ = writeln!(
                out,
                "off-die BW reduction  : {:>6.2}x   (paper: 3x)",
                h.bandwidth_reduction_factor
            );
            let _ = write!(
                out,
                "bus power saving      : {:>6.2} W ({:.0}%)  (paper: ~0.5 W, 66%)",
                h.bus_power_saving_w,
                100.0 * h.bus_power_reduction()
            );
            out
        }
        Artifact::ExplorePoint { metrics } => {
            let mut t = TextTable::new(["metric", "value"]);
            for (name, value) in metrics {
                t.row([name.clone(), fmt_f(*value, 4)]);
            }
            t.render()
        }
    }
}

/// The full Fig. 5 rendering: CPMA table, bandwidth table and headline.
pub fn render_fig5(data: &Fig5Data) -> String {
    let mut cpma = TextTable::new(["bench (CPMA)", "4MB", "12MB", "32MB", "64MB", "red@32"]);
    for r in &data.rows {
        cpma.row([
            r.benchmark.name().to_string(),
            fmt_f(r.cpma[0], 3),
            fmt_f(r.cpma[1], 3),
            fmt_f(r.cpma[2], 3),
            fmt_f(r.cpma[3], 3),
            format!("{:+.1}%", -100.0 * r.cpma_reduction(2)),
        ]);
    }
    let mean = data.mean_cpma();
    cpma.row([
        "Avg".to_string(),
        fmt_f(mean[0], 3),
        fmt_f(mean[1], 3),
        fmt_f(mean[2], 3),
        fmt_f(mean[3], 3),
        format!("{:+.1}%", -100.0 * (1.0 - mean[2] / mean[0])),
    ]);

    let mut bw = TextTable::new(["bench (BW GB/s)", "4MB", "12MB", "32MB", "64MB"]);
    for r in &data.rows {
        bw.row([
            r.benchmark.name().to_string(),
            fmt_f(r.bandwidth[0], 2),
            fmt_f(r.bandwidth[1], 2),
            fmt_f(r.bandwidth[2], 2),
            fmt_f(r.bandwidth[3], 2),
        ]);
    }
    let mb = data.mean_bandwidth();
    bw.row([
        "Avg".to_string(),
        fmt_f(mb[0], 2),
        fmt_f(mb[1], 2),
        fmt_f(mb[2], 2),
        fmt_f(mb[3], 2),
    ]);

    let h = data.headline();
    let mut out = cpma.render();
    out.push('\n');
    out.push_str(&bw.render());
    let _ = write!(
        out,
        "\noptions: {}\nheadline @32MB: mean CPMA -{:.1}% (paper 13%), peak -{:.1}% \
         (paper ~50-55%), BW /{:.2} (paper 3x)",
        StackOption::all()
            .map(|o| o.label().to_string())
            .join(" / "),
        100.0 * h.mean_cpma_reduction,
        100.0 * h.peak_cpma_reduction,
        h.bandwidth_reduction_factor,
    );
    out
}

/// ASCII power-density map (denser glyph = higher power).
pub fn power_map(power: &PowerGrid) -> String {
    let (nx, ny) = power.dims();
    let cells = power.cells();
    let max = cells.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let mut out = format!("power map (total {:.1} W), '@' = densest:\n", power.total());
    for j in (0..ny).rev() {
        for i in 0..nx {
            let g = ((cells[j * nx + i] / max) * (glyphs.len() - 1) as f64).round() as usize;
            out.push(glyphs[g.min(glyphs.len() - 1)]);
        }
        out.push('\n');
    }
    out
}

/// ASCII thermal map of the named layer, with peak/min summary.
pub fn thermal_map(field: &TemperatureField, layer_name: &str) -> String {
    let Some(idx) = field.layer_names().iter().position(|n| n == layer_name) else {
        return format!("(no layer named '{layer_name}')");
    };
    let die = field.layer(idx);
    let min = die.iter().cloned().fold(f64::INFINITY, f64::min);
    format!(
        "thermal map, peak {:.2} C, coolest on die {:.2} C:\n{}",
        field.peak(),
        min,
        field.ascii_map(idx)
    )
}
