//! Resilience policies and the harness side of the fault plane.
//!
//! This module holds everything DESIGN.md §11 describes: the harness's
//! declared fault sites, the [`Resilience`] policy knobs of
//! [`RunOptions`](super::RunOptions), the solver degradation ladder
//! ([`SolverDegrade`]), the `--fault-plan` JSON loader, and the
//! machine-readable `stacksim-failures/1` report that `--keep-going`
//! runs emit.

use std::path::PathBuf;

use stacksim_faults::{Fault, FaultPlan, FaultRule};
use stacksim_thermal::{Preconditioner, SolverConfig};

use super::json::Json;
use super::runner::RunOutcome;
use crate::error::Error;

/// Component tag of every fault site the harness owns.
pub const COMPONENT: &str = "harness";

/// The memo-cache read: keyed by experiment name, supports `corrupt`,
/// `truncate` and `io-transient`.
pub const SITE_CACHE_LOAD: &str = "harness.cache.load";
/// The memo-cache write: keyed by experiment name, supports
/// `io-transient`.
pub const SITE_CACHE_STORE: &str = "harness.cache.store";
/// Experiment dispatch (just before the run closure): keyed by
/// experiment name, supports `panic`, `io-transient` and `stall`.
pub const SITE_DISPATCH: &str = "harness.dispatch";

/// Every fault site the harness may check.
pub const SITES: &[&str] = &[SITE_CACHE_LOAD, SITE_CACHE_STORE, SITE_DISPATCH];

/// Component tag of the network fault sites checked by `stacksim-serve`.
///
/// The constants live here (like the `serve` obs table) because the
/// SL070 contract and the plan loader consume
/// [`declared_fault_sites`], and core cannot depend on the serve crate.
pub const SERVE_COMPONENT: &str = "serve";
/// The daemon's accept loop, just after a connection is accepted: keyed
/// by `"conn"`, supports `io-transient` (drop the connection on the
/// floor) and `stall`.
pub const SITE_SERVE_ACCEPT: &str = "serve.accept";
/// The request read path (`http::read_request`): keyed by `"conn"`,
/// supports `io-transient`, `truncate` (connection closed mid-head) and
/// `stall`.
pub const SITE_SERVE_READ: &str = "serve.read";
/// The response write path (`http::respond`): keyed by the status code,
/// supports `io-transient` (response never written), `truncate` (half
/// the body) and `stall`.
pub const SITE_SERVE_WRITE: &str = "serve.write";
/// Every network fault site the serve crate may check.
pub const SERVE_SITES: &[&str] = &[SITE_SERVE_ACCEPT, SITE_SERVE_READ, SITE_SERVE_WRITE];

/// Component tag of the session plane's own fault sites.
pub const SESSION_COMPONENT: &str = "session";
/// The request-journal append (`RequestJournal`): keyed by the record's
/// `ev` tag (`accepted` / `done`), supports `io-transient` (append
/// fails, durability degrades), `corrupt` and `truncate` (the line is
/// mangled on disk and skipped at the next recovery) and `stall`.
pub const SITE_SESSION_JOURNAL: &str = "session.journal";
/// Every session-plane fault site.
pub const SESSION_SITES: &[&str] = &[SITE_SESSION_JOURNAL];

/// The solver degradation ladder. On `NoConvergence` the runner retries
/// the experiment one rung further down; each rung is strictly more
/// conservative than the last. The rung that finally succeeded is
/// recorded in the run report (never in the artifact — artifacts stay
/// bit-identical to an undegraded run of the same effective config).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum SolverDegrade {
    /// The experiment's own configuration, untouched.
    #[default]
    AsConfigured,
    /// Force the Jacobi preconditioner (the robust default; LineZ's
    /// stronger coupling can stall on ill-conditioned stacks).
    ForceJacobi,
    /// Jacobi plus an 8× `max_iters` allowance.
    RaiseIters,
    /// Jacobi, 8× `max_iters`, and cold starts (no warm-start chaining —
    /// rules a poisoned initial guess out entirely).
    ColdStart,
}

impl SolverDegrade {
    /// The next rung down, or `None` when the ladder is exhausted.
    #[must_use]
    pub fn next(self) -> Option<SolverDegrade> {
        match self {
            SolverDegrade::AsConfigured => Some(SolverDegrade::ForceJacobi),
            SolverDegrade::ForceJacobi => Some(SolverDegrade::RaiseIters),
            SolverDegrade::RaiseIters => Some(SolverDegrade::ColdStart),
            SolverDegrade::ColdStart => None,
        }
    }

    /// Stable label for reports (`none` / `jacobi` / `raised-iters` /
    /// `cold-start`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SolverDegrade::AsConfigured => "none",
            SolverDegrade::ForceJacobi => "jacobi",
            SolverDegrade::RaiseIters => "raised-iters",
            SolverDegrade::ColdStart => "cold-start",
        }
    }

    /// Applies this rung to a base solver configuration.
    #[must_use]
    pub fn apply(self, mut cfg: SolverConfig) -> SolverConfig {
        match self {
            SolverDegrade::AsConfigured => {}
            SolverDegrade::ForceJacobi => cfg.preconditioner = Preconditioner::Jacobi,
            SolverDegrade::RaiseIters => {
                cfg.preconditioner = Preconditioner::Jacobi;
                cfg.max_iters = cfg.max_iters.saturating_mul(8);
            }
            SolverDegrade::ColdStart => {
                cfg.preconditioner = Preconditioner::Jacobi;
                cfg.max_iters = cfg.max_iters.saturating_mul(8);
                cfg.warm_start = false;
            }
        }
        cfg
    }
}

/// Per-experiment resilience policy of a [`Runner`](super::Runner).
#[derive(Debug, Clone)]
pub struct Resilience {
    /// Retry budget for transient failures (I/O errors, worker panics).
    /// An experiment is attempted at most `retries + 1` times for
    /// transient causes.
    pub retries: usize,
    /// First retry backoff in milliseconds; doubles per retry. A fixed
    /// schedule, so wall time never influences *whether* something
    /// retries — only how fast.
    pub backoff_ms: u64,
    /// Quarantine corrupt cache entries (move the file to
    /// `cache/quarantine/`) and recompute, instead of failing the
    /// experiment.
    pub quarantine: bool,
    /// Walk the [`SolverDegrade`] ladder on CG non-convergence instead
    /// of failing the experiment on the first stall.
    pub ladder: bool,
    /// Per-experiment wall-clock budget in seconds. Checked between
    /// attempts: once exhausted, no further retries or ladder rungs are
    /// tried and the experiment fails with
    /// [`Error::DeadlineExceeded`].
    pub deadline_s: Option<f64>,
    /// Per-experiment CG iteration budget: a *successful* run that used
    /// more iterations fails with [`Error::BudgetExceeded`] (a runaway
    /// guard for sweep services).
    pub max_cg_iters: Option<usize>,
}

impl Default for Resilience {
    fn default() -> Self {
        Resilience {
            retries: 2,
            backoff_ms: 10,
            quarantine: true,
            ladder: true,
            deadline_s: None,
            max_cg_iters: None,
        }
    }
}

/// A deterministic transient I/O error used by injected faults: fixed
/// message, fixed pseudo-path, so failure reports are byte-identical
/// across runs.
pub(super) fn injected_io(site: &str, key: &str) -> Error {
    Error::io(
        PathBuf::from(format!("<injected:{site}:{key}>")),
        std::io::Error::new(std::io::ErrorKind::Interrupted, "injected transient fault"),
    )
}

/// The dispatch injection point, called inside the runner's
/// `catch_unwind` just before an experiment runs.
///
/// # Errors
///
/// [`Error::Io`] for an injected transient.
///
/// # Panics
///
/// Panics when the armed plan injects a `panic` fault here — by design;
/// the runner's `catch_unwind` turns it into
/// [`Error::WorkerPanic`].
pub(super) fn dispatch_fault(experiment: &str) -> Result<(), Error> {
    if !stacksim_faults::armed() {
        return Ok(());
    }
    match stacksim_faults::check(SITE_DISPATCH, experiment) {
        // audit:allow(SA006) the injected panic is the product: the runner's
        // catch_unwind must observe a real unwind to exercise recovery
        Some(Fault::Panic) => panic!("injected panic in experiment '{experiment}'"),
        Some(Fault::Stall { ms }) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Ok(())
        }
        Some(Fault::IoTransient) => Err(injected_io(SITE_DISPATCH, experiment)),
        _ => Ok(()),
    }
}

/// All declared fault-site tables: `(model path, component, sites)` per
/// instrumented crate. The SL070 pass and the plan loader both consume
/// this.
pub fn declared_fault_sites() -> Vec<(&'static str, &'static str, &'static [&'static str])> {
    vec![
        ("faults.harness", COMPONENT, SITES),
        (
            "faults.thermal",
            stacksim_thermal::faults::COMPONENT,
            stacksim_thermal::faults::SITES,
        ),
        ("faults.serve", SERVE_COMPONENT, SERVE_SITES),
        ("faults.session", SESSION_COMPONENT, SESSION_SITES),
    ]
}

/// Parses and validates a `stacksim-faults/1` plan document.
///
/// Every rule must reference a declared site; unknown sites are a load
/// error (the static SL070 pass cannot see plan files, so the loader is
/// where a typo'd site name gets caught).
///
/// # Errors
///
/// A human-readable description of the first schema violation.
pub fn parse_fault_plan(text: &str) -> Result<FaultPlan, String> {
    let doc = Json::parse(text)?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == stacksim_faults::SCHEMA => {}
        Some(s) => return Err(format!("schema '{s}' is not '{}'", stacksim_faults::SCHEMA)),
        None => return Err("missing 'schema' string".to_string()),
    }
    let seed = match doc.get("seed") {
        None => 0,
        Some(v) => v.as_u64().ok_or("'seed' must be a non-negative integer")?,
    };
    let entries = doc
        .get("rules")
        .and_then(Json::as_arr)
        .ok_or("missing 'rules' array")?;
    let known: Vec<&str> = declared_fault_sites()
        .iter()
        .flat_map(|(_, _, sites)| sites.iter().copied())
        .collect();
    let mut rules = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let at = |field: &str| format!("rules[{i}].{field}");
        let site = entry
            .get("site")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{} must be a string", at("site")))?;
        if !known.contains(&site) {
            return Err(format!(
                "{} references undeclared fault site '{site}' (known: {})",
                at("site"),
                known.join(", ")
            ));
        }
        let key = entry.get("key").and_then(Json::as_str).unwrap_or("");
        let kind = entry
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{} must be a string", at("kind")))?;
        let ms = match entry.get("ms") {
            None => 50,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| format!("{} must be a non-negative integer", at("ms")))?,
        };
        let fault = Fault::parse(kind, ms)
            .ok_or_else(|| format!("{} names unknown fault kind '{kind}'", at("kind")))?;
        let times = match entry.get("times") {
            None => Some(1),
            Some(v) => match v.as_u64() {
                Some(0) => None, // 0 = unlimited
                Some(t) => Some(t),
                None => return Err(format!("{} must be a non-negative integer", at("times"))),
            },
        };
        let after = match entry.get("after") {
            None => 0,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| format!("{} must be a non-negative integer", at("after")))?,
        };
        let prob = match entry.get("prob") {
            None => None,
            Some(v) => {
                let p = v
                    .as_f64()
                    .filter(|p| *p > 0.0 && *p <= 1.0)
                    .ok_or_else(|| format!("{} must be a number in (0, 1]", at("prob")))?;
                Some(p)
            }
        };
        rules.push(FaultRule {
            site: site.to_string(),
            key: key.to_string(),
            fault,
            times,
            after,
            prob,
        });
    }
    Ok(FaultPlan { seed, rules })
}

/// Schema tag of the machine-readable failure report.
pub const FAILURES_SCHEMA: &str = "stacksim-failures/1";

/// One failed experiment in the failure report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureEntry {
    /// Experiment name.
    pub name: String,
    /// Its configuration digest (empty for dependency skips).
    pub digest: String,
    /// Stable failure class (see [`Error::kind`]).
    pub kind: String,
    /// The rendered error.
    pub error: String,
    /// Dispatch attempts made (0 for dependency skips).
    pub attempts: u64,
    /// Whether a corrupt cache entry was quarantined along the way.
    pub quarantined: bool,
}

/// The machine-readable `failures[]` document a `--keep-going` run
/// writes. Deterministic: entries keep schedule (selection) order and
/// carry no wall times, so the same plan and seed produce byte-identical
/// reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailureReport {
    /// Failed experiments, in schedule order.
    pub failures: Vec<FailureEntry>,
}

impl FailureReport {
    /// Collects every failed entry of a run outcome.
    pub fn from_outcome(outcome: &RunOutcome) -> Self {
        FailureReport {
            failures: outcome
                .report
                .entries
                .iter()
                .filter(|e| e.error.is_some())
                .map(|e| FailureEntry {
                    name: e.name.clone(),
                    digest: e.digest.clone(),
                    kind: e.error_kind.clone().unwrap_or_default(),
                    error: e.error.clone().unwrap_or_default(),
                    attempts: e.attempts,
                    quarantined: e.quarantined,
                })
                .collect(),
        }
    }

    /// The JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::Str(FAILURES_SCHEMA.to_string())),
            (
                "failures",
                Json::Arr(
                    self.failures
                        .iter()
                        .map(|e| {
                            Json::obj(vec![
                                ("name", Json::Str(e.name.clone())),
                                ("digest", Json::Str(e.digest.clone())),
                                ("kind", Json::Str(e.kind.clone())),
                                ("error", Json::Str(e.error.clone())),
                                ("attempts", Json::Num(e.attempts as f64)),
                                ("quarantined", Json::Bool(e.quarantined)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Serializes the report (newline-terminated).
    pub fn encode(&self) -> String {
        let mut text = self.to_json().encode();
        text.push('\n');
        text
    }

    /// Writes the report to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on filesystem failure.
    pub fn write(&self, path: &std::path::Path) -> Result<(), Error> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| Error::io(parent.to_path_buf(), e))?;
            }
        }
        std::fs::write(path, self.encode()).map_err(|e| Error::io(path.to_path_buf(), e))
    }

    /// Validates and re-parses a `stacksim-failures/1` document (the
    /// `stacksim stats --failures` path).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first schema violation.
    pub fn validate(text: &str) -> Result<FailureReport, String> {
        let doc = Json::parse(text)?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(s) if s == FAILURES_SCHEMA => {}
            Some(s) => return Err(format!("schema '{s}' is not '{FAILURES_SCHEMA}'")),
            None => return Err("missing 'schema' string".to_string()),
        }
        let entries = doc
            .get("failures")
            .and_then(Json::as_arr)
            .ok_or("missing 'failures' array")?;
        let mut failures = Vec::with_capacity(entries.len());
        for (i, entry) in entries.iter().enumerate() {
            let at = |field: &str| format!("failures[{i}].{field}");
            let str_field = |field: &str| {
                entry
                    .get(field)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("{} must be a string", at(field)))
            };
            failures.push(FailureEntry {
                name: str_field("name")?,
                digest: str_field("digest")?,
                kind: str_field("kind")?,
                error: str_field("error")?,
                attempts: entry
                    .get("attempts")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("{} must be a non-negative integer", at("attempts")))?,
                quarantined: entry
                    .get("quarantined")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| format!("{} must be a bool", at("quarantined")))?,
            });
        }
        Ok(FailureReport { failures })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_rungs_are_ordered_and_exhaust() {
        let mut rung = SolverDegrade::AsConfigured;
        let mut labels = vec![rung.label()];
        while let Some(next) = rung.next() {
            assert!(next > rung);
            rung = next;
            labels.push(rung.label());
        }
        assert_eq!(labels, ["none", "jacobi", "raised-iters", "cold-start"]);
    }

    #[test]
    fn ladder_apply_is_cumulative_per_rung() {
        let base = SolverConfig::builder()
            .preconditioner(Preconditioner::LineZ)
            .build();
        let cfg = SolverDegrade::ForceJacobi.apply(base);
        assert_eq!(cfg.preconditioner, Preconditioner::Jacobi);
        assert_eq!(cfg.max_iters, base.max_iters);
        assert!(cfg.warm_start);
        let cfg = SolverDegrade::RaiseIters.apply(base);
        assert_eq!(cfg.max_iters, base.max_iters * 8);
        assert!(cfg.warm_start);
        let cfg = SolverDegrade::ColdStart.apply(base);
        assert_eq!(cfg.max_iters, base.max_iters * 8);
        assert!(!cfg.warm_start);
        // untouched on the first rung
        assert_eq!(SolverDegrade::AsConfigured.apply(base), base);
    }

    #[test]
    fn plan_parser_round_trips_a_full_document() {
        let text = format!(
            "{{\"schema\":\"{}\",\"seed\":7,\"rules\":[\
             {{\"site\":\"harness.cache.load\",\"key\":\"fig3\",\"kind\":\"corrupt\"}},\
             {{\"site\":\"thermal.cg\",\"key\":\"jacobi\",\"kind\":\"stall\",\"ms\":5,\
               \"times\":0,\"after\":2}},\
             {{\"site\":\"harness.dispatch\",\"kind\":\"panic\",\"prob\":0.25}}]}}",
            stacksim_faults::SCHEMA
        );
        let plan = parse_fault_plan(&text).expect("plan parses");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(plan.rules[0].fault, Fault::Corrupt);
        assert_eq!(plan.rules[0].times, Some(1), "times defaults to 1");
        assert_eq!(plan.rules[1].fault, Fault::Stall { ms: 5 });
        assert_eq!(plan.rules[1].times, None, "times 0 means unlimited");
        assert_eq!(plan.rules[1].after, 2);
        assert_eq!(plan.rules[2].prob, Some(0.25));
        assert_eq!(plan.rules[2].key, "", "key defaults to match-any");
    }

    #[test]
    fn plan_parser_rejects_bad_documents() {
        let plan = |body: &str| parse_fault_plan(body).expect_err("must reject");
        assert!(plan("{}").contains("schema"));
        assert!(plan("{\"schema\":\"nope\",\"rules\":[]}").contains("schema"));
        let e = plan(
            "{\"schema\":\"stacksim-faults/1\",\"rules\":[\
             {\"site\":\"harness.nonesuch\",\"kind\":\"panic\"}]}",
        );
        assert!(e.contains("undeclared fault site"), "{e}");
        let e = plan(
            "{\"schema\":\"stacksim-faults/1\",\"rules\":[\
             {\"site\":\"harness.dispatch\",\"kind\":\"frobnicate\"}]}",
        );
        assert!(e.contains("unknown fault kind"), "{e}");
        let e = plan(
            "{\"schema\":\"stacksim-faults/1\",\"rules\":[\
             {\"site\":\"harness.dispatch\",\"kind\":\"panic\",\"prob\":1.5}]}",
        );
        assert!(e.contains("prob"), "{e}");
    }

    #[test]
    fn failure_report_round_trips_and_validates() {
        let report = FailureReport {
            failures: vec![FailureEntry {
                name: "fig5:pcg".into(),
                digest: "abcd".into(),
                kind: "worker-panic".into(),
                error: "experiment 'fig5:pcg' panicked".into(),
                attempts: 3,
                quarantined: false,
            }],
        };
        let text = report.encode();
        let back = FailureReport::validate(&text).expect("validates");
        assert_eq!(back, report);
        assert!(FailureReport::validate("{\"schema\":\"nope\"}").is_err());
        assert!(
            FailureReport::validate("{\"schema\":\"stacksim-failures/1\"}").is_err(),
            "failures array is required"
        );
    }

    #[test]
    fn declared_sites_cover_harness_and_thermal() {
        let tables = declared_fault_sites();
        let all: Vec<&str> = tables
            .iter()
            .flat_map(|(_, _, s)| s.iter().copied())
            .collect();
        assert!(all.contains(&SITE_CACHE_LOAD));
        assert!(all.contains(&SITE_DISPATCH));
        assert!(all.contains(&stacksim_thermal::faults::SITE_CG));
    }
}
