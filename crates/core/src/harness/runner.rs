//! Dependency-aware parallel execution of registered experiments.
//!
//! The runner expands a selection to its transitive dependency closure,
//! validates the graph (no cycles, no dangling edges), then fans the ready
//! set out across worker threads. Each experiment first consults the memo
//! cache; a hit skips the run entirely (telemetry shows zero solver
//! iterations), a miss runs, records telemetry and stores the artifact.

use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use stacksim_thermal::SolveError;
use stacksim_workloads::WorkloadParams;

use super::artifact::Artifact;
use super::cache::MemoCache;
use super::experiment::{Ctx, Experiment, Telemetry};
use super::json::Json;
use super::registry::Registry;
use super::resilience::{self, Resilience, SolverDegrade};
use crate::error::Error;

/// How a [`Runner`] executes.
///
/// `#[non_exhaustive]`: construct via [`RunOptions::builder`] (or start
/// from [`RunOptions::default`] and set fields) so new knobs can land
/// without breaking callers.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RunOptions {
    /// Workload parameters handed to every experiment.
    pub params: WorkloadParams,
    /// Worker threads; `0` means one per available CPU.
    pub jobs: usize,
    /// The memo cache (disabled by default).
    pub cache: MemoCache,
    /// Run the `stacksim check` lint passes over an experiment's model
    /// before dispatching it (cache misses only — a hit proves the same
    /// configuration already ran to completion). On by default; invalid
    /// models fail fast with [`Error::InvalidModel`] instead of panicking
    /// mid-run.
    pub preflight: bool,
    /// Failure-handling policy: transient retries, cache quarantine, the
    /// solver degradation ladder, and per-experiment budgets.
    pub resilience: Resilience,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            params: WorkloadParams::paper(),
            jobs: 0,
            cache: MemoCache::disabled(),
            preflight: true,
            resilience: Resilience::default(),
        }
    }
}

impl RunOptions {
    /// Starts a builder at the defaults (paper-scale params, one worker
    /// per CPU, disabled cache, preflight on, default resilience).
    #[must_use]
    pub fn builder() -> RunOptionsBuilder {
        RunOptionsBuilder {
            options: RunOptions::default(),
        }
    }
}

/// Builds a [`RunOptions`]; the supported way to construct one now that
/// the struct is `#[non_exhaustive]`.
#[derive(Debug, Clone)]
pub struct RunOptionsBuilder {
    options: RunOptions,
}

impl RunOptionsBuilder {
    /// Workload parameters handed to every experiment.
    #[must_use]
    pub fn params(mut self, params: WorkloadParams) -> Self {
        self.options.params = params;
        self
    }

    /// Worker threads; `0` means one per available CPU.
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.options.jobs = jobs;
        self
    }

    /// Run everything on one worker thread (`jobs = 1`).
    #[must_use]
    pub fn serial(self) -> Self {
        self.jobs(1)
    }

    /// The memo cache to consult and fill.
    #[must_use]
    pub fn cache(mut self, cache: MemoCache) -> Self {
        self.options.cache = cache;
        self
    }

    /// Whether to lint an experiment's model before a cache-missing run.
    #[must_use]
    pub fn preflight(mut self, preflight: bool) -> Self {
        self.options.preflight = preflight;
        self
    }

    /// The failure-handling policy.
    #[must_use]
    pub fn resilience(mut self, resilience: Resilience) -> Self {
        self.options.resilience = resilience;
        self
    }

    /// Finishes the build.
    #[must_use]
    pub fn build(self) -> RunOptions {
        self.options
    }
}

/// One experiment's row in the run report.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// The experiment name.
    pub name: String,
    /// Its configuration digest (the cache key).
    pub digest: String,
    /// Whether the artifact came from the memo cache.
    pub cached: bool,
    /// Wall time in seconds (near zero for cache hits).
    pub wall_s: f64,
    /// The failure, if the experiment did not produce an artifact.
    pub error: Option<String>,
    /// Stable machine-readable failure class ([`Error::kind`]), set
    /// whenever `error` is.
    pub error_kind: Option<String>,
    /// Execution attempts made: 1 for a clean run or cache hit, more
    /// when retries or ladder rungs were needed, 0 for dependency skips.
    pub attempts: u64,
    /// Whether a corrupt cache entry was quarantined along the way.
    pub quarantined: bool,
    /// The degradation-ladder rung that finally succeeded, if the run
    /// needed one (`jacobi` / `raised-iters` / `cold-start`).
    pub fallback: Option<String>,
    /// Solver/memory telemetry recorded during the run (empty for cache
    /// hits — nothing was simulated).
    pub telemetry: Telemetry,
}

impl ExperimentReport {
    /// A fresh row with nothing recorded yet.
    fn blank(name: &str, digest: String) -> ExperimentReport {
        ExperimentReport {
            name: name.to_string(),
            digest,
            cached: false,
            wall_s: 0.0,
            error: None,
            error_kind: None,
            attempts: 0,
            quarantined: false,
            fallback: None,
            telemetry: Telemetry::default(),
        }
    }

    /// The row's JSON form, as embedded in [`RunReport::to_json`] (and
    /// served by `stacksim serve`'s status endpoint).
    pub fn to_json(&self) -> Json {
        let opt_str = |v: &Option<String>| match v {
            Some(s) => Json::Str(s.clone()),
            None => Json::Null,
        };
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("digest", Json::Str(self.digest.clone())),
            ("cached", Json::Bool(self.cached)),
            ("wall_s", Json::Num(self.wall_s)),
            ("error", opt_str(&self.error)),
            ("error_kind", opt_str(&self.error_kind)),
            ("attempts", Json::Num(self.attempts as f64)),
            ("quarantined", Json::Bool(self.quarantined)),
            ("fallback", opt_str(&self.fallback)),
            ("telemetry", self.telemetry.to_json()),
        ])
    }
}

/// The machine-readable record of one harness invocation.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Worker threads used.
    pub jobs: usize,
    /// Total wall time in seconds.
    pub wall_s: f64,
    /// Per-experiment rows, in dependency (schedule) order.
    pub entries: Vec<ExperimentReport>,
}

impl RunReport {
    /// The JSON document written by `stacksim run --report`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("jobs", Json::Num(self.jobs as f64)),
            ("wall_s", Json::Num(self.wall_s)),
            (
                "experiments",
                Json::Arr(self.entries.iter().map(ExperimentReport::to_json).collect()),
            ),
        ])
    }

    /// Writes the JSON report to a file.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on filesystem failure.
    pub fn write(&self, path: &std::path::Path) -> Result<(), Error> {
        std::fs::write(path, self.to_json().encode()).map_err(|e| Error::io(path, e))
    }

    /// Total CG iterations across all experiments — zero when everything
    /// came from the cache.
    pub fn total_cg_iterations(&self) -> usize {
        self.entries
            .iter()
            .map(|e| e.telemetry.solver.iterations)
            .sum()
    }

    /// Total simulated memory references across all experiments.
    pub fn total_trace_records(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| e.telemetry.trace_records())
            .sum()
    }
}

/// Everything a run produced.
#[derive(Debug)]
pub struct RunOutcome {
    /// The telemetry report.
    pub report: RunReport,
    /// Artifacts by experiment name (absent for failed experiments).
    pub artifacts: HashMap<String, Arc<Artifact>>,
    /// Root-cause failures, by experiment name (dependency skips are only
    /// in the report).
    pub errors: Vec<(String, Error)>,
}

/// Executes experiments from a [`Registry`] under [`RunOptions`].
#[derive(Debug)]
pub struct Runner {
    registry: Registry,
    options: RunOptions,
}

struct State {
    ready: VecDeque<String>,
    remaining_deps: HashMap<String, usize>,
    dependents: HashMap<String, Vec<String>>,
    results: HashMap<String, Arc<Artifact>>,
    failed: HashSet<String>,
    reports: Vec<ExperimentReport>,
    errors: Vec<(String, Error)>,
    active: usize,
    done: usize,
    total: usize,
}

impl Runner {
    /// Pairs a registry with run options.
    pub fn new(registry: Registry, options: RunOptions) -> Self {
        Runner { registry, options }
    }

    /// Runs every registered experiment.
    ///
    /// # Errors
    ///
    /// Structural registry problems only; per-experiment failures are
    /// recorded in the outcome.
    pub fn run_all(&self) -> Result<RunOutcome, Error> {
        let names: Vec<String> = self
            .registry
            .names()
            .into_iter()
            .map(str::to_string)
            .collect();
        self.run(&names)
    }

    /// Runs a selection of experiments (plus their transitive
    /// dependencies) and returns artifacts and telemetry.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownExperiment`] for names not in the registry,
    /// [`Error::MissingDependency`] for dangling dependency edges and
    /// [`Error::DependencyCycle`] for cyclic graphs. Failures *inside*
    /// experiments do not abort the run; they are recorded in
    /// [`RunOutcome::errors`] and the report.
    pub fn run(&self, names: &[String]) -> Result<RunOutcome, Error> {
        let start = Instant::now();
        let selection = self.expand(names)?;
        let total = selection.len();
        let mut run_span = stacksim_obs::span(super::obs::EVENT_RUN);
        run_span.field("experiments", total as u64);

        // Kahn's algorithm both validates acyclicity and seeds the ready
        // queue deterministically (registration order among ties).
        let mut remaining_deps = HashMap::new();
        let mut dependents: HashMap<String, Vec<String>> = HashMap::new();
        for name in &selection {
            let exp = self.registry.get(name).ok_or_else(|| Error::Internal {
                detail: format!("selection '{name}' vanished from the registry"),
            })?;
            let deps = exp.deps();
            remaining_deps.insert(name.clone(), deps.len());
            for dep in deps {
                dependents.entry(dep).or_default().push(name.clone());
            }
        }
        {
            let mut counts = remaining_deps.clone();
            let mut queue: VecDeque<&String> = selection
                .iter()
                .filter(|n| counts.get(*n) == Some(&0))
                .collect();
            let mut seen = 0;
            while let Some(n) = queue.pop_front() {
                seen += 1;
                for d in dependents.get(n.as_str()).into_iter().flatten() {
                    let Some(c) = counts.get_mut(d) else {
                        return Err(Error::Internal {
                            detail: format!("dependent '{d}' missing from the selection"),
                        });
                    };
                    *c -= 1;
                    if *c == 0 {
                        queue.push_back(d);
                    }
                }
            }
            if seen != total {
                let on_cycle = selection
                    .iter()
                    .find(|n| counts.get(*n).is_some_and(|c| *c > 0))
                    .ok_or_else(|| Error::Internal {
                        detail: "cycle detected but no node with open deps".to_string(),
                    })?;
                return Err(Error::DependencyCycle {
                    name: on_cycle.clone(),
                });
            }
        }

        let ready: VecDeque<String> = selection
            .iter()
            .filter(|n| remaining_deps.get(*n) == Some(&0))
            .cloned()
            .collect();
        let state = Mutex::new(State {
            ready,
            remaining_deps,
            dependents,
            results: HashMap::new(),
            failed: HashSet::new(),
            reports: Vec::new(),
            errors: Vec::new(),
            active: 0,
            done: 0,
            total,
        });
        let cv = Condvar::new();

        let jobs = if self.options.jobs == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.options.jobs
        };
        let workers = jobs.min(total.max(1));

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| self.worker(&state, &cv));
            }
        });

        // A worker can only poison the mutex by panicking between lock and
        // unlock; the state it guards is still structurally sound, so
        // recover it rather than cascading the panic.
        let mut st = state
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // report rows in deterministic (selection) order; unknown names
        // (impossible unless a worker misbehaved) sort last
        st.reports.sort_by_key(|r| {
            selection
                .iter()
                .position(|n| *n == r.name)
                .unwrap_or(usize::MAX)
        });
        let wall_s = start.elapsed().as_secs_f64();
        run_span.field("wall_us", (wall_s * 1e6) as u64);
        drop(run_span);
        Ok(RunOutcome {
            report: RunReport {
                jobs: workers,
                wall_s,
                entries: st.reports,
            },
            artifacts: st.results,
            errors: st.errors,
        })
    }

    /// Expands names to the transitive dependency closure, in
    /// registration order.
    fn expand(&self, names: &[String]) -> Result<Vec<String>, Error> {
        let mut wanted = HashSet::new();
        let mut stack = Vec::new();
        for name in names {
            if self.registry.get(name).is_none() {
                return Err(Error::UnknownExperiment { name: name.clone() });
            }
            if wanted.insert(name.clone()) {
                stack.push(name.clone());
            }
        }
        while let Some(name) = stack.pop() {
            let exp = self.registry.get(&name).ok_or_else(|| Error::Internal {
                detail: format!("'{name}' vanished from the registry mid-expansion"),
            })?;
            for dep in exp.deps() {
                if self.registry.get(&dep).is_none() {
                    return Err(Error::MissingDependency {
                        experiment: name.clone(),
                        dependency: dep,
                    });
                }
                if wanted.insert(dep.clone()) {
                    stack.push(dep);
                }
            }
        }
        Ok(self
            .registry
            .names()
            .into_iter()
            .filter(|n| wanted.contains(*n))
            .map(str::to_string)
            .collect())
    }

    /// Locks the scheduler state, recovering from poisoning (the guarded
    /// bookkeeping stays structurally sound even if a worker panicked).
    fn lock_state<'a>(state: &'a Mutex<State>) -> std::sync::MutexGuard<'a, State> {
        state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn worker(&self, state: &Mutex<State>, cv: &Condvar) {
        loop {
            let name = {
                let mut st = Self::lock_state(state);
                loop {
                    if let Some(n) = st.ready.pop_front() {
                        st.active += 1;
                        break Some(n);
                    }
                    if st.done == st.total {
                        break None;
                    }
                    st = cv
                        .wait(st)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            let Some(name) = name else {
                cv.notify_all();
                return;
            };

            let outcome = match self.registry.get(&name) {
                Some(exp) => {
                    let deps: HashMap<String, Arc<Artifact>> = {
                        let st = Self::lock_state(state);
                        exp.deps()
                            .into_iter()
                            .filter_map(|d| st.results.get(&d).map(|a| (d, a.clone())))
                            .collect()
                    };
                    self.execute(exp.as_ref(), deps)
                }
                None => {
                    // Unreachable unless the registry changed under us;
                    // record the invariant violation instead of panicking
                    // the worker pool.
                    let error = Error::Internal {
                        detail: format!("scheduled experiment '{name}' is not registered"),
                    };
                    let mut report = ExperimentReport::blank(&name, String::new());
                    report.error = Some(error.to_string());
                    report.error_kind = Some(error.kind().to_string());
                    (report, Err(error))
                }
            };

            let mut st = Self::lock_state(state);
            st.active -= 1;
            st.done += 1;
            match outcome {
                (report, Ok(artifact)) => {
                    let artifact = Arc::new(artifact);
                    st.results.insert(name.clone(), artifact);
                    st.reports.push(report);
                    let unblocked: Vec<String> =
                        st.dependents.get(&name).cloned().unwrap_or_default();
                    for d in unblocked {
                        // absent counters (impossible for a selected
                        // dependent) are simply left alone
                        if let Some(c) = st.remaining_deps.get_mut(&d) {
                            *c -= 1;
                            if *c == 0 && !st.failed.contains(&d) {
                                st.ready.push_back(d);
                            }
                        }
                    }
                }
                (report, Err(error)) => {
                    st.reports.push(report);
                    st.errors.push((name.clone(), error));
                    Self::fail_dependents(&mut st, &name);
                }
            }
            cv.notify_all();
        }
    }

    /// Marks every transitive dependent of `root` as skipped.
    fn fail_dependents(st: &mut State, root: &str) {
        st.failed.insert(root.to_string());
        let mut queue: VecDeque<String> =
            st.dependents.get(root).cloned().unwrap_or_default().into();
        while let Some(name) = queue.pop_front() {
            if !st.failed.insert(name.clone()) {
                continue;
            }
            st.done += 1;
            if stacksim_obs::enabled() {
                stacksim_obs::counter(super::obs::FAILURES).add(1);
            }
            let skip = Error::DependencyFailed {
                experiment: name.clone(),
                dependency: root.to_string(),
            };
            let mut report = ExperimentReport::blank(&name, String::new());
            report.error = Some(skip.to_string());
            report.error_kind = Some(skip.kind().to_string());
            st.reports.push(report);
            for d in st.dependents.get(&name).into_iter().flatten() {
                queue.push_back(d.clone());
            }
        }
    }

    /// Runs one experiment under the resilience policy: cache probe, then
    /// the real run on a miss, with retries, quarantine and the solver
    /// degradation ladder wrapped around every attempt.
    fn execute(
        &self,
        exp: &dyn Experiment,
        deps: HashMap<String, Arc<Artifact>>,
    ) -> (ExperimentReport, Result<Artifact, Error>) {
        let name = exp.name().to_string();
        let digest = exp.params_digest(&self.options.params);
        let start = Instant::now();
        let mut span = stacksim_obs::span(super::obs::EVENT_EXPERIMENT);
        span.field("experiment", name.clone());
        let mut report = ExperimentReport::blank(&name, digest);

        let result = self.execute_attempts(exp, &deps, &mut report, start);

        report.wall_s = start.elapsed().as_secs_f64();
        if let Err(e) = &result {
            report.error = Some(e.to_string());
            report.error_kind = Some(e.kind().to_string());
        }
        if stacksim_obs::enabled() {
            let wall_us = (report.wall_s * 1e6) as u64;
            stacksim_obs::counter(super::obs::EXPERIMENTS).add(1);
            stacksim_obs::counter(if report.cached {
                super::obs::CACHE_HITS
            } else {
                super::obs::CACHE_MISSES
            })
            .add(1);
            if result.is_err() {
                stacksim_obs::counter(super::obs::FAILURES).add(1);
            }
            stacksim_obs::histogram(super::obs::EXPERIMENT_WALL_US).record(wall_us);
            span.field("cached", report.cached);
            span.field("ok", result.is_ok());
            span.field("wall_us", wall_us);
        }
        drop(span);
        (report, result)
    }

    /// The resilience loop around [`Runner::attempt_once`]: retries
    /// transient failures with deterministic exponential backoff, walks
    /// the [`SolverDegrade`] ladder on non-convergence, and enforces the
    /// per-experiment deadline and iteration budgets.
    fn execute_attempts(
        &self,
        exp: &dyn Experiment,
        deps: &HashMap<String, Arc<Artifact>>,
        report: &mut ExperimentReport,
        start: Instant,
    ) -> Result<Artifact, Error> {
        let policy = &self.options.resilience;
        let mut degrade = SolverDegrade::AsConfigured;
        let mut retries_left = policy.retries;
        let mut backoff = Duration::from_millis(policy.backoff_ms);
        loop {
            match self.attempt_once(exp, deps, report, degrade) {
                Ok(artifact) => {
                    if let Some(limit) = policy.max_cg_iters {
                        let used = report.telemetry.solver.iterations as u64;
                        if used > limit as u64 {
                            return Err(Error::BudgetExceeded {
                                experiment: report.name.clone(),
                                what: "cg-iterations",
                                limit: limit as u64,
                                used,
                            });
                        }
                    }
                    if degrade != SolverDegrade::AsConfigured {
                        report.fallback = Some(degrade.label().to_string());
                    }
                    return Ok(artifact);
                }
                Err(e) => {
                    // the deadline bounds recovery, not first failure: a
                    // failed attempt past the budget stops retrying
                    if let Some(limit_s) = policy.deadline_s {
                        if start.elapsed().as_secs_f64() >= limit_s {
                            return Err(Error::DeadlineExceeded {
                                experiment: report.name.clone(),
                                limit_s,
                            });
                        }
                    }
                    match &e {
                        Error::Solve(SolveError::NoConvergence { .. }) if policy.ladder => {
                            let Some(next) = degrade.next() else {
                                return Err(e);
                            };
                            degrade = next;
                            if stacksim_obs::enabled() {
                                stacksim_obs::counter(super::obs::SOLVER_FALLBACKS).add(1);
                            }
                        }
                        e if e.is_transient() && retries_left > 0 => {
                            retries_left -= 1;
                            if stacksim_obs::enabled() {
                                stacksim_obs::counter(super::obs::RUNNER_RETRIES).add(1);
                            }
                            std::thread::sleep(backoff);
                            backoff = backoff.saturating_mul(2);
                        }
                        _ => return Err(e),
                    }
                }
            }
        }
    }

    /// One attempt: cache probe (with quarantine on corruption), then
    /// preflight and the run itself under `catch_unwind`.
    fn attempt_once(
        &self,
        exp: &dyn Experiment,
        deps: &HashMap<String, Arc<Artifact>>,
        report: &mut ExperimentReport,
        degrade: SolverDegrade,
    ) -> Result<Artifact, Error> {
        let name = report.name.clone();
        let digest = report.digest.clone();
        report.attempts += 1;
        match self.options.cache.load(&name, &digest) {
            Ok(Some(artifact)) => {
                report.cached = true;
                return Ok(artifact);
            }
            Ok(None) => {}
            Err(Error::CacheCorrupt { .. }) if self.options.resilience.quarantine => {
                // move the poisoned entry aside and recompute in place —
                // the run heals the cache instead of failing on it
                self.options.cache.quarantine(&name, &digest)?;
                report.quarantined = true;
            }
            Err(e) => return Err(e),
        }
        if self.options.preflight {
            super::check::preflight(&name, &self.options.params)?;
        }
        let ctx = Ctx::new(&name, self.options.params, deps.clone()).with_degrade(degrade);
        let run = catch_unwind(AssertUnwindSafe(|| {
            resilience::dispatch_fault(&name)?;
            let artifact = exp.run(&ctx)?;
            Ok((artifact, ctx.into_telemetry()))
        }));
        match run {
            Ok(Ok((artifact, telemetry))) => {
                report.telemetry = telemetry;
                self.options.cache.store(&name, &digest, &artifact)?;
                Ok(artifact)
            }
            Ok(Err(e)) => Err(e),
            Err(_) => Err(Error::WorkerPanic {
                experiment: name.clone(),
            }),
        }
    }
}

/// Runs a single experiment (plus dependencies) with a disabled cache —
/// the convenience path the per-figure binaries use.
///
/// # Errors
///
/// Structural registry problems, or the first root-cause experiment
/// failure.
pub fn run_one(name: &str, params: WorkloadParams) -> Result<Artifact, Error> {
    let runner = Runner::new(
        Registry::standard(),
        RunOptions {
            params,
            ..RunOptions::default()
        },
    );
    let mut outcome = runner.run(&[name.to_string()])?;
    if let Some(artifact) = outcome.artifacts.remove(name) {
        return Ok(Arc::try_unwrap(artifact).unwrap_or_else(|a| (*a).clone()));
    }
    match outcome.errors.into_iter().next() {
        Some((_, e)) => Err(e),
        None => Err(Error::ArtifactUnavailable {
            experiment: name.to_string(),
            wanted: name.to_string(),
        }),
    }
}
