//! The [`Sim`] session: an embed-or-serve facade over the experiment
//! harness.
//!
//! A `Sim` is constructed once (via [`SimBuilder`]) and then accepts any
//! number of typed [`ExperimentRequest`]s over its lifetime. It owns what
//! used to be per-CLI-process state — the experiment [`Registry`], the
//! shared (optionally sharded and size-bounded) [`MemoCache`], the
//! resilience policy, and an optional fault plan — so a long-running
//! process (the `stacksim serve` daemon, a test harness, an exploration
//! driver) can serve thousands of requests from one warm cache.
//!
//! # Request lifecycle
//!
//! ```text
//! submit ──▶ Queued ──▶ Running ──▶ Done
//!    │          ▲
//!    └── dedup ─┘   (identical in-flight config: same slot, same handle)
//! ```
//!
//! * **submit** resolves the request against the session's base
//!   parameters, digests it (the digest is the memo-cache key, so
//!   parameterised variants are first-class), and returns a
//!   [`RequestHandle`] immediately.
//! * **dedup** — a request whose `(experiment, digest, faults)` triple
//!   matches one already queued or running does not enqueue new work: it
//!   receives a handle to the existing slot (observable via
//!   [`RequestHandle::id`] and the `serve.dedup_hits` counter). The
//!   underlying experiment runs exactly once.
//! * **batching** — the scheduler thread drains the queue, groups
//!   adjacent requests with identical workload parameters and fault
//!   setting, and hands each group to one [`Runner`] invocation, so
//!   concurrent requests share dependency scheduling and worker threads.
//! * **Done** — the handle yields a [`RequestOutcome`]: the per-request
//!   [`ExperimentReport`] (telemetry, cache/attempt accounting) and the
//!   artifact on success.
//!
//! Dropping the `Sim` (or calling [`Sim::shutdown`]) drains: everything
//! already submitted still runs to completion before the scheduler exits.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use stacksim_faults::FaultPlan;
use stacksim_workloads::{Scale, WorkloadParams};

use super::artifact::Artifact;
use super::cache::MemoCache;
use super::registry::Registry;
use super::resilience::Resilience;
use super::runner::{ExperimentReport, RunOptions, RunOutcome, Runner};
use crate::error::Error;

/// A typed request for one experiment, optionally overriding the
/// session's base workload parameters (a *parameterised variant*). Every
/// override is folded into the experiment digest, so variants memoize
/// independently and identical variants deduplicate.
#[derive(Debug, Clone)]
pub struct ExperimentRequest {
    name: String,
    scale: Option<Scale>,
    seed: Option<u64>,
    threads: Option<usize>,
    chunk: Option<usize>,
    solver_threads: Option<usize>,
    faults: bool,
    deadline_ms: Option<u64>,
}

impl ExperimentRequest {
    /// A request for the named experiment at the session's base
    /// parameters.
    pub fn new(name: impl Into<String>) -> Self {
        ExperimentRequest {
            name: name.into(),
            scale: None,
            seed: None,
            threads: None,
            chunk: None,
            solver_threads: None,
            faults: false,
            deadline_ms: None,
        }
    }

    /// The experiment name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Override the generation scale.
    #[must_use]
    pub fn scale(mut self, scale: Scale) -> Self {
        self.scale = Some(scale);
        self
    }

    /// Override the trace seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Override the workload thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Override the interleave chunk.
    #[must_use]
    pub fn chunk(mut self, chunk: usize) -> Self {
        self.chunk = Some(chunk);
        self
    }

    /// Override the solver worker threads (execution-only: results are
    /// bit-identical for any value, so this does not split the cache).
    #[must_use]
    pub fn solver_threads(mut self, solver_threads: usize) -> Self {
        self.solver_threads = Some(solver_threads);
        self
    }

    /// Opt this request into the session's fault plan (chaos testing).
    /// Fault-injected requests never deduplicate against clean ones.
    #[must_use]
    pub fn faults(mut self, faults: bool) -> Self {
        self.faults = faults;
        self
    }

    /// A per-request wall-clock budget in milliseconds, fed into the
    /// batch's [`Resilience::deadline_s`] recovery budget: once it runs
    /// out no further retries or ladder rungs are tried and the request
    /// fails with [`Error::DeadlineExceeded`](crate::Error), releasing
    /// its scheduler slot. Execution policy only — it never splits the
    /// memo-cache digest, but requests with different deadlines do not
    /// deduplicate onto each other.
    #[must_use]
    pub fn deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// The canonical journal encoding of this request (every set field,
    /// in fixed order) — also the identity key recovery deduplicates by.
    pub(crate) fn to_journal_json(&self) -> super::json::Json {
        use super::json::Json;
        let mut fields = vec![("experiment", Json::Str(self.name.clone()))];
        if let Some(scale) = self.scale {
            let label = match scale {
                Scale::Test => "test",
                Scale::Paper => "paper",
            };
            fields.push(("scale", Json::Str(label.to_string())));
        }
        if let Some(seed) = self.seed {
            fields.push(("seed", Json::Num(seed as f64)));
        }
        if let Some(threads) = self.threads {
            fields.push(("threads", Json::Num(threads as f64)));
        }
        if let Some(chunk) = self.chunk {
            fields.push(("chunk", Json::Num(chunk as f64)));
        }
        if let Some(solver_threads) = self.solver_threads {
            fields.push(("solver_threads", Json::Num(solver_threads as f64)));
        }
        if self.faults {
            fields.push(("faults", Json::Bool(true)));
        }
        if let Some(deadline_ms) = self.deadline_ms {
            fields.push(("deadline_ms", Json::Num(deadline_ms as f64)));
        }
        Json::obj(fields)
    }

    /// Decodes a journal `request` object back into a request. `None`
    /// when required fields are missing or mistyped (the recovery path
    /// treats that as a corrupt record, never an error).
    pub(crate) fn from_journal_json(doc: &super::json::Json) -> Option<ExperimentRequest> {
        use super::json::Json;
        let mut req = ExperimentRequest::new(doc.get("experiment").and_then(Json::as_str)?);
        if let Some(scale) = doc.get("scale") {
            req.scale = Some(match scale.as_str()? {
                "test" => Scale::Test,
                "paper" => Scale::Paper,
                _ => return None,
            });
        }
        if let Some(v) = doc.get("seed") {
            req.seed = Some(v.as_u64()?);
        }
        if let Some(v) = doc.get("threads") {
            req.threads = Some(v.as_u64()? as usize);
        }
        if let Some(v) = doc.get("chunk") {
            req.chunk = Some(v.as_u64()? as usize);
        }
        if let Some(v) = doc.get("solver_threads") {
            req.solver_threads = Some(v.as_u64()? as usize);
        }
        if let Some(v) = doc.get("faults") {
            req.faults = v.as_bool()?;
        }
        if let Some(v) = doc.get("deadline_ms") {
            req.deadline_ms = Some(v.as_u64()?);
        }
        Some(req)
    }

    /// The request's effective workload parameters over a session base.
    ///
    /// # Errors
    ///
    /// [`Error::Internal`] when the overridden parameters are invalid
    /// (e.g. zero threads).
    pub fn resolve(&self, base: &WorkloadParams) -> Result<WorkloadParams, Error> {
        let mut p = *base;
        if let Some(scale) = self.scale {
            p.scale = scale;
        }
        if let Some(seed) = self.seed {
            p.seed = seed;
        }
        if let Some(threads) = self.threads {
            p.threads = threads;
        }
        if let Some(chunk) = self.chunk {
            p.chunk = chunk;
        }
        if let Some(solver_threads) = self.solver_threads {
            p.solver_threads = solver_threads;
        }
        p.validate().map_err(|e| Error::Internal {
            detail: format!("request '{}' rejected: {e}", self.name),
        })?;
        Ok(p)
    }
}

/// Where a submitted request currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestStatus {
    /// Accepted, waiting for the scheduler to batch it.
    Queued,
    /// Handed to a [`Runner`]; the experiment (or its batch) is running.
    Running,
    /// Finished — [`RequestHandle::try_outcome`] yields the result.
    Done,
}

impl RequestStatus {
    /// Stable lowercase label (`queued` / `running` / `done`), as served
    /// by the HTTP status endpoint.
    pub fn label(&self) -> &'static str {
        match self {
            RequestStatus::Queued => "queued",
            RequestStatus::Running => "running",
            RequestStatus::Done => "done",
        }
    }
}

/// Everything one finished request produced.
#[derive(Debug)]
pub struct RequestOutcome {
    /// The per-experiment report row: digest, cache/attempt accounting,
    /// telemetry, and the error if the run failed.
    pub report: ExperimentReport,
    /// The artifact, on success.
    pub artifact: Option<Arc<Artifact>>,
}

impl RequestOutcome {
    /// Whether the request produced an artifact.
    pub fn is_ok(&self) -> bool {
        self.artifact.is_some()
    }
}

/// One submitted request's slot: shared by every deduplicated handle.
#[derive(Debug)]
struct Slot {
    id: u64,
    name: String,
    digest: String,
    params: WorkloadParams,
    faults: bool,
    deadline_ms: Option<u64>,
    status: Mutex<SlotState>,
    done: Condvar,
}

/// The dedup key: requests are identical when the experiment, digest,
/// fault opt-in *and deadline* all match (a deadline is execution
/// policy, so it must not silently widen or narrow someone else's
/// budget).
type DedupKey = (String, String, bool, Option<u64>);

impl Slot {
    fn dedup_key(&self) -> DedupKey {
        (
            self.name.clone(),
            self.digest.clone(),
            self.faults,
            self.deadline_ms,
        )
    }
}

#[derive(Debug)]
enum SlotState {
    Queued,
    Running,
    Done(Arc<RequestOutcome>),
}

impl Slot {
    fn lock(&self) -> MutexGuard<'_, SlotState> {
        self.status
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn finish(&self, outcome: RequestOutcome) {
        *self.lock() = SlotState::Done(Arc::new(outcome));
        self.done.notify_all();
    }
}

/// A pollable/awaitable handle to one submitted request. Clones (and
/// deduplicated submissions) share the same underlying slot.
#[derive(Debug, Clone)]
pub struct RequestHandle {
    slot: Arc<Slot>,
}

impl RequestHandle {
    /// The session-unique request id. Deduplicated submissions return the
    /// *same* id — two handles with equal ids share one execution.
    pub fn id(&self) -> u64 {
        self.slot.id
    }

    /// The experiment name.
    pub fn name(&self) -> &str {
        &self.slot.name
    }

    /// The request's configuration digest (its memo-cache key).
    pub fn digest(&self) -> &str {
        &self.slot.digest
    }

    /// The effective workload parameters this request runs under.
    pub fn params(&self) -> WorkloadParams {
        self.slot.params
    }

    /// Whether this request opted into fault injection.
    pub fn faults(&self) -> bool {
        self.slot.faults
    }

    /// The request's current lifecycle state.
    pub fn status(&self) -> RequestStatus {
        match &*self.slot.lock() {
            SlotState::Queued => RequestStatus::Queued,
            SlotState::Running => RequestStatus::Running,
            SlotState::Done(_) => RequestStatus::Done,
        }
    }

    /// The outcome, if the request already finished.
    pub fn try_outcome(&self) -> Option<Arc<RequestOutcome>> {
        match &*self.slot.lock() {
            SlotState::Done(outcome) => Some(outcome.clone()),
            _ => None,
        }
    }

    /// Blocks until the request finishes and returns its outcome.
    pub fn wait(&self) -> Arc<RequestOutcome> {
        let mut st = self.slot.lock();
        loop {
            if let SlotState::Done(outcome) = &*st {
                return outcome.clone();
            }
            st = self
                .slot
                .done
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Blocks until the request finishes *or* `timeout` elapses — the
    /// bounded long-poll the HTTP status endpoint is built on, so a slow
    /// experiment can never pin a connection worker indefinitely.
    /// Returns `None` on timeout; the request keeps running.
    pub fn wait_timeout(&self, timeout: std::time::Duration) -> Option<Arc<RequestOutcome>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.slot.lock();
        loop {
            if let SlotState::Done(outcome) = &*st {
                return Some(outcome.clone());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            st = self
                .slot
                .done
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
    }
}

/// A point-in-time snapshot of the session's request accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Requests submitted (dedup hits included).
    pub submitted: u64,
    /// Submissions coalesced onto an identical in-flight request.
    pub dedup_hits: u64,
    /// Requests currently queued or running.
    pub inflight: u64,
    /// Requests finished.
    pub completed: u64,
}

/// Scheduler bookkeeping, behind the session mutex.
struct SchedState {
    /// Submitted slots the scheduler has not picked up yet, in order.
    pending: Vec<Arc<Slot>>,
    /// Queued *or running* slots by [`DedupKey`].
    inflight: HashMap<DedupKey, Arc<Slot>>,
    /// Raw runner outcomes of every batch, for callers that want the
    /// batch-level report (the CLI).
    outcomes: Vec<RunOutcome>,
    /// Slots currently running in a batch (for `wait_idle`).
    running: usize,
    paused: bool,
    shutdown: bool,
    next_id: u64,
}

struct Inner {
    registry: Registry,
    base: WorkloadParams,
    jobs: usize,
    cache: MemoCache,
    preflight: bool,
    resilience: Resilience,
    fault_plan: Option<FaultPlan>,
    /// A plan the *caller* armed process-wide (network chaos) that must
    /// be restored — not disarmed — after an opted-in batch.
    ambient_plan: Option<FaultPlan>,
    /// Admission bound: submissions that would push the queued+running
    /// count past this are shed with [`Error::Overloaded`].
    max_pending: Option<usize>,
    /// The crash-recovery journal, when the session is durable.
    journal: Option<Arc<super::journal::RequestJournal>>,
    state: Mutex<SchedState>,
    /// Wakes the scheduler on submit / resume / shutdown.
    work: Condvar,
    /// Wakes `wait_idle` when a batch finishes.
    idle: Condvar,
    submitted: AtomicU64,
    dedup_hits: AtomicU64,
    completed: AtomicU64,
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, SchedState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn inflight_of(st: &SchedState) -> u64 {
        (st.pending.len() + st.running) as u64
    }

    fn publish_inflight(st: &SchedState) {
        if stacksim_obs::enabled() {
            stacksim_obs::gauge(super::obs::SERVE_INFLIGHT).set(Self::inflight_of(st) as f64);
        }
    }
}

/// Configures and constructs a [`Sim`] session.
#[derive(Debug)]
pub struct SimBuilder {
    registry: Option<Registry>,
    base: WorkloadParams,
    jobs: usize,
    cache: MemoCache,
    preflight: bool,
    resilience: Resilience,
    fault_plan: Option<FaultPlan>,
    ambient_plan: Option<FaultPlan>,
    max_pending: Option<usize>,
    journal: Option<Arc<super::journal::RequestJournal>>,
    start_paused: bool,
}

impl Default for SimBuilder {
    fn default() -> Self {
        SimBuilder {
            registry: None,
            base: WorkloadParams::paper(),
            jobs: 0,
            cache: MemoCache::disabled(),
            preflight: true,
            resilience: Resilience::default(),
            fault_plan: None,
            ambient_plan: None,
            max_pending: None,
            journal: None,
            start_paused: false,
        }
    }
}

impl SimBuilder {
    /// The experiment registry (defaults to [`Registry::standard`]).
    #[must_use]
    pub fn registry(mut self, registry: Registry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Base workload parameters requests resolve their overrides against.
    #[must_use]
    pub fn params(mut self, params: WorkloadParams) -> Self {
        self.base = params;
        self
    }

    /// Worker threads per batch; `0` means one per available CPU.
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// The session's shared memo cache.
    #[must_use]
    pub fn cache(mut self, cache: MemoCache) -> Self {
        self.cache = cache;
        self
    }

    /// Whether batches lint experiment models before cache-missing runs.
    #[must_use]
    pub fn preflight(mut self, preflight: bool) -> Self {
        self.preflight = preflight;
        self
    }

    /// The failure-handling policy every batch runs under.
    #[must_use]
    pub fn resilience(mut self, resilience: Resilience) -> Self {
        self.resilience = resilience;
        self
    }

    /// The fault plan armed around requests that opt in via
    /// [`ExperimentRequest::faults`]. Without one, opted-in requests run
    /// clean.
    #[must_use]
    pub fn fault_plan(mut self, plan: impl Into<Option<FaultPlan>>) -> Self {
        self.fault_plan = plan.into();
        self
    }

    /// A plan the caller armed process-wide *before* building the
    /// session (network-level chaos: `serve.*` / `session.*` rules).
    /// After an opted-in batch the scheduler re-arms this plan instead
    /// of disarming the fault plane, so ambient rules stay live for the
    /// session's whole lifetime. Rule evaluation counters reset at each
    /// re-arm; ambient plans should use `prob` or unlimited-`times`
    /// rules, which are insensitive to that.
    #[must_use]
    pub fn ambient_fault_plan(mut self, plan: impl Into<Option<FaultPlan>>) -> Self {
        self.ambient_plan = plan.into();
        self
    }

    /// Bound the admission queue: a submission that would push the
    /// queued+running request count past `max_pending` is shed with
    /// [`Error::Overloaded`] (and counted in `serve.shed`) instead of
    /// enqueued. Dedup hits are always admitted — they add no work.
    /// `None` (the default) admits everything.
    #[must_use]
    pub fn max_pending(mut self, max_pending: impl Into<Option<usize>>) -> Self {
        self.max_pending = max_pending.into();
        self
    }

    /// Journal accepted requests and terminal outcomes to this
    /// crash-recovery journal (see
    /// [`RequestJournal`](super::journal::RequestJournal)). Append
    /// failures degrade durability but never fail a request.
    #[must_use]
    pub fn journal(
        mut self,
        journal: impl Into<Option<Arc<super::journal::RequestJournal>>>,
    ) -> Self {
        self.journal = journal.into();
        self
    }

    /// Start with the scheduler paused: submissions queue (and
    /// deduplicate) but nothing runs until [`Sim::resume`]. This is how a
    /// caller batches a known set of requests into one runner invocation.
    #[must_use]
    pub fn start_paused(mut self, paused: bool) -> Self {
        self.start_paused = paused;
        self
    }

    /// Builds the session and starts its scheduler thread.
    #[must_use]
    pub fn build(self) -> Sim {
        let inner = Arc::new(Inner {
            registry: self.registry.unwrap_or_else(Registry::standard),
            base: self.base,
            jobs: self.jobs,
            cache: self.cache,
            preflight: self.preflight,
            resilience: self.resilience,
            fault_plan: self.fault_plan,
            ambient_plan: self.ambient_plan,
            max_pending: self.max_pending,
            journal: self.journal,
            state: Mutex::new(SchedState {
                pending: Vec::new(),
                inflight: HashMap::new(),
                outcomes: Vec::new(),
                running: 0,
                paused: self.start_paused,
                shutdown: false,
                next_id: 0,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
            submitted: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        });
        let scheduler = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("sim-scheduler".into())
                .spawn(move || scheduler_loop(&inner))
                .ok()
        };
        Sim {
            inner,
            scheduler: Mutex::new(scheduler),
        }
    }
}

/// A long-lived simulation session: submit [`ExperimentRequest`]s, poll
/// or await their [`RequestHandle`]s. See the [module docs](self) for the
/// request lifecycle.
pub struct Sim {
    inner: Arc<Inner>,
    scheduler: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("base", &self.inner.base)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Sim {
    /// Starts a builder at the defaults: standard registry, paper-scale
    /// base parameters, disabled cache, default resilience, no faults.
    #[must_use]
    pub fn builder() -> SimBuilder {
        SimBuilder::default()
    }

    /// The session's experiment registry.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// The base workload parameters requests resolve against.
    pub fn base_params(&self) -> WorkloadParams {
        self.inner.base
    }

    /// Submits a request and returns its handle immediately.
    ///
    /// A request identical to one already queued or running (same
    /// experiment, same digest, same fault opt-in) is *deduplicated*: the
    /// returned handle shares the existing slot and id, and the
    /// experiment runs once.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownExperiment`] for names not in the registry;
    /// [`Error::Overloaded`] when admission control sheds the request
    /// (the queued+running count sits at the session's `max_pending`
    /// bound — nothing was enqueued, the caller may retry later);
    /// [`Error::Internal`] for invalid parameter overrides or a session
    /// already shut down.
    pub fn submit(&self, request: &ExperimentRequest) -> Result<RequestHandle, Error> {
        let params = request.resolve(&self.inner.base)?;
        let exp =
            self.inner
                .registry
                .get(request.name())
                .ok_or_else(|| Error::UnknownExperiment {
                    name: request.name().to_string(),
                })?;
        let digest = exp.params_digest(&params);
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        if stacksim_obs::enabled() {
            stacksim_obs::counter(super::obs::SERVE_REQUESTS).add(1);
        }

        let key = (
            request.name().to_string(),
            digest.clone(),
            request.faults,
            request.deadline_ms,
        );
        let mut st = self.inner.lock();
        if st.shutdown {
            return Err(Error::Internal {
                detail: "sim session is shut down".to_string(),
            });
        }
        if let Some(slot) = st.inflight.get(&key) {
            if matches!(&*slot.lock(), SlotState::Done(_)) {
                // the batch finished this slot but the scheduler has not
                // swept it out of the dedup table yet; a post-completion
                // resubmission is new work (a cache hit at most), never a
                // stale dedup hit
                st.inflight.remove(&key);
            } else {
                self.inner.dedup_hits.fetch_add(1, Ordering::Relaxed);
                if stacksim_obs::enabled() {
                    stacksim_obs::counter(super::obs::SERVE_DEDUP_HITS).add(1);
                }
                return Ok(RequestHandle { slot: slot.clone() });
            }
        }
        // admission control, atomic with enqueue under the session lock:
        // a shed request allocates nothing and releases nothing
        if let Some(limit) = self.inner.max_pending {
            let inflight = Inner::inflight_of(&st);
            if inflight >= limit as u64 {
                if stacksim_obs::enabled() {
                    stacksim_obs::counter(super::obs::SERVE_SHED).add(1);
                }
                return Err(Error::Overloaded {
                    pending: inflight,
                    limit: limit as u64,
                });
            }
        }
        let slot = Arc::new(Slot {
            id: st.next_id,
            name: request.name().to_string(),
            digest,
            params,
            faults: request.faults,
            deadline_ms: request.deadline_ms,
            status: Mutex::new(SlotState::Queued),
            done: Condvar::new(),
        });
        st.next_id += 1;
        st.pending.push(slot.clone());
        st.inflight.insert(key, slot.clone());
        Inner::publish_inflight(&st);
        let id = slot.id;
        drop(st);
        // durability is best-effort: a failed append (disk gone, or the
        // session.journal fault site) degrades recovery, not the request
        if let Some(journal) = &self.inner.journal {
            let _ = journal.record_accepted(id, request);
        }
        self.inner.work.notify_all();
        Ok(RequestHandle { slot })
    }

    /// Unpauses a session built with
    /// [`start_paused`](SimBuilder::start_paused), releasing everything
    /// queued so far as (batched) work.
    pub fn resume(&self) {
        let mut st = self.inner.lock();
        st.paused = false;
        drop(st);
        self.inner.work.notify_all();
    }

    /// Blocks until no request is queued or running. On a paused session
    /// this returns once the *running* batch (if any) finishes.
    pub fn wait_idle(&self) {
        let mut st = self.inner.lock();
        while st.running > 0 || (!st.paused && !st.pending.is_empty()) {
            st = self
                .inner
                .idle
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Takes the accumulated batch-level [`RunOutcome`]s (one per runner
    /// invocation the scheduler made). The CLI uses this to render the
    /// classic run report; per-request callers use [`RequestHandle`]s.
    pub fn drain_outcomes(&self) -> Vec<RunOutcome> {
        std::mem::take(&mut self.inner.lock().outcomes)
    }

    /// A snapshot of the session's request accounting.
    pub fn stats(&self) -> SimStats {
        let inflight = Inner::inflight_of(&self.inner.lock());
        SimStats {
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            dedup_hits: self.inner.dedup_hits.load(Ordering::Relaxed),
            inflight,
            completed: self.inner.completed.load(Ordering::Relaxed),
        }
    }

    /// Shuts the session down gracefully: everything already submitted
    /// still runs (a paused session is resumed for the drain), then the
    /// scheduler thread exits and is joined. Further submissions fail.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        {
            let mut st = self.inner.lock();
            st.shutdown = true;
            st.paused = false;
        }
        self.inner.work.notify_all();
        let handle = self
            .scheduler
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for Sim {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The scheduler thread: drain pending requests in batches of identical
/// `(params, faults)` until shutdown — and on shutdown, finish the drain
/// before exiting.
fn scheduler_loop(inner: &Inner) {
    loop {
        let batch = {
            let mut st = inner.lock();
            loop {
                // a shutdown drains: paused is overridden, pending still runs
                if !st.pending.is_empty() && (!st.paused || st.shutdown) {
                    break;
                }
                if st.shutdown {
                    return;
                }
                st = inner
                    .work
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            // group the head request with every pending request sharing
            // its workload parameters and fault setting (submission order
            // is preserved for the rest)
            let Some(head) = st.pending.first().cloned() else {
                continue;
            };
            let mut batch = Vec::new();
            let mut rest = Vec::new();
            for slot in std::mem::take(&mut st.pending) {
                if slot.params == head.params
                    && slot.faults == head.faults
                    && slot.deadline_ms == head.deadline_ms
                {
                    batch.push(slot);
                } else {
                    rest.push(slot);
                }
            }
            st.pending = rest;
            st.running = batch.len();
            for slot in &batch {
                *slot.lock() = SlotState::Running;
            }
            batch
        };

        // a panic escaping the batch (a runner bug, a poisoned artifact)
        // must not kill the scheduler thread: every handle into this batch
        // would block in `wait()` forever, and every later submission
        // would queue unserved. Contain it and fail the batch's slots.
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_batch(inner, &batch);
        }));
        if run.is_err() {
            restore_fault_plane(inner);
            for slot in &batch {
                if matches!(&*slot.lock(), SlotState::Done(_)) {
                    continue;
                }
                let mut report = missing_report(slot);
                report.error = Some(format!(
                    "scheduler batch panicked while running '{}'",
                    slot.name
                ));
                report.error_kind = Some("worker-panic".to_string());
                finish_slot(
                    inner,
                    slot,
                    RequestOutcome {
                        report,
                        artifact: None,
                    },
                );
            }
        }

        let mut st = inner.lock();
        st.running = 0;
        for slot in &batch {
            st.inflight.remove(&slot.dedup_key());
        }
        inner
            .completed
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        Inner::publish_inflight(&st);
        drop(st);
        inner.idle.notify_all();
    }
}

/// Runs one batch through a [`Runner`], arming the session fault plan
/// around it when the batch opted in, and publishes per-slot outcomes.
fn run_batch(inner: &Inner, batch: &[Arc<Slot>]) {
    let Some(head) = batch.first() else {
        return;
    };
    let names: Vec<String> = batch.iter().map(|s| s.name.clone()).collect();
    let mut resilience = inner.resilience.clone();
    if let Some(deadline_ms) = head.deadline_ms {
        // the per-request budget propagates into the runner's existing
        // deadline machinery; when the session policy already carries a
        // deadline, the tighter one wins
        let request_s = deadline_ms as f64 / 1000.0;
        resilience.deadline_s = Some(match resilience.deadline_s {
            Some(policy_s) => policy_s.min(request_s),
            None => request_s,
        });
    }
    let options = RunOptions::builder()
        .params(head.params)
        .jobs(inner.jobs)
        .cache(inner.cache.clone())
        .preflight(inner.preflight)
        .resilience(resilience)
        .build();
    let runner = Runner::new(inner.registry.clone(), options);

    // batches run serially on this one scheduler thread, so arming the
    // process-global fault plane cannot leak into a clean batch. An
    // opted-in batch sees the experiment plan *plus* any ambient
    // (network-chaos) rules, and the ambient plan is restored after.
    let armed_here = head.faults && inner.fault_plan.is_some();
    if armed_here {
        if let Some(mut plan) = inner.fault_plan.clone() {
            if let Some(ambient) = &inner.ambient_plan {
                plan.rules.extend(ambient.rules.iter().cloned());
            }
            stacksim_faults::arm(plan);
        }
    }
    let result = runner.run(&names);
    if armed_here {
        restore_fault_plane(inner);
    }

    match result {
        Ok(outcome) => {
            // extract every slot's view first, then record the batch
            // outcome *before* finishing any slot: the instant `finish`
            // wakes a waiter, the waiter may call `drain_outcomes` and
            // must already see this batch there
            let finished: Vec<RequestOutcome> = batch
                .iter()
                .map(|slot| {
                    let report = outcome
                        .report
                        .entries
                        .iter()
                        .find(|e| e.name == slot.name)
                        .cloned()
                        .unwrap_or_else(|| missing_report(slot));
                    let artifact = outcome.artifacts.get(&slot.name).cloned();
                    RequestOutcome { report, artifact }
                })
                .collect();
            inner.lock().outcomes.push(outcome);
            for (slot, out) in batch.iter().zip(finished) {
                finish_slot(inner, slot, out);
            }
        }
        Err(e) => {
            // a structural failure (unknown dep, cycle) fails every slot
            // of the batch with the same root cause
            let detail = e.to_string();
            let kind = e.kind().to_string();
            for slot in batch {
                let mut report = missing_report(slot);
                report.error = Some(detail.clone());
                report.error_kind = Some(kind.clone());
                finish_slot(
                    inner,
                    slot,
                    RequestOutcome {
                        report,
                        artifact: None,
                    },
                );
            }
        }
    }
}

/// Restores the process-global fault plane after an opted-in batch: back
/// to the caller's ambient (network-chaos) plan when one exists, clean
/// otherwise.
fn restore_fault_plane(inner: &Inner) {
    match &inner.ambient_plan {
        Some(ambient) => stacksim_faults::arm(ambient.clone()),
        None => stacksim_faults::disarm(),
    }
}

/// Publishes a slot's terminal outcome: journals it, counts expired
/// deadlines, and wakes every waiter.
fn finish_slot(inner: &Inner, slot: &Slot, outcome: RequestOutcome) {
    if outcome.report.error_kind.as_deref() == Some("deadline") && stacksim_obs::enabled() {
        stacksim_obs::counter(super::obs::SERVE_DEADLINE_EXCEEDED).add(1);
    }
    if let Some(journal) = &inner.journal {
        let _ = journal.record_done(slot.id, outcome.is_ok());
    }
    slot.finish(outcome);
}

/// A report row for a slot the runner produced no entry for (structural
/// failure, or an invariant slip).
fn missing_report(slot: &Slot) -> ExperimentReport {
    ExperimentReport {
        name: slot.name.clone(),
        digest: slot.digest.clone(),
        cached: false,
        wall_s: 0.0,
        error: Some(format!("experiment '{}' produced no report", slot.name)),
        error_kind: Some("internal".to_string()),
        attempts: 0,
        quarantined: false,
        fallback: None,
        telemetry: Default::default(),
    }
}
