//! Study orchestration: every table and figure of *Die Stacking (3D)
//! Microarchitecture* (Black et al., MICRO 2006) as a callable experiment.
//!
//! | Paper artefact | Entry point |
//! |---|---|
//! | Fig. 3 (conductivity sensitivity) | [`sensitivity::fig3`] |
//! | Fig. 5 (RMS CPMA + bandwidth)     | [`memory_logic::fig5`] |
//! | Fig. 6 (baseline power/thermal map) | [`memory_logic::fig6`] |
//! | Fig. 7 (stack options)            | [`StackOption`] |
//! | Fig. 8 (stacked-cache thermals)   | [`memory_logic::fig8`] |
//! | Fig. 9/10 (floorplans)            | `stacksim_floorplan::{p4, fold}` |
//! | Fig. 11 (Logic+Logic thermals)    | [`logic_logic::fig11`] |
//! | Table 4 (per-path gains)          | [`logic_logic::table4`] |
//! | Table 5 (V/f scaling)             | [`logic_logic::table5`] |
//! | §3 headline numbers               | [`memory_logic::Fig5Data::headline`] |
//!
//! All of the above are also registered as named experiments in the
//! [`harness`] — `fig3`, `fig5` (and its twelve `fig5:<bench>` points),
//! `fig6`, `fig8`, `fig11`, `table4`, `table5`, `headline` — which the
//! `stacksim` CLI runs as a dependency-aware parallel fan-out with disk
//! memoization and per-experiment telemetry. Prefer
//! [`harness::run_one`] / [`harness::Runner`] over calling the study
//! functions directly when you want caching, parallelism or a run report.
//!
//! **Migration note:** since the harness redesign every study entry point
//! returns `Result<_, `[`Error`]`>` (previously they panicked on solver
//! failure), and the config structs are `#[non_exhaustive]` with builders
//! (`WorkloadParams::builder()`, `EngineConfig::builder()`,
//! `SolverConfig::builder()`).
//!
//! # Example
//!
//! ```
//! use stacksim_core::memory_logic::run_benchmark;
//! use stacksim_workloads::{RmsBenchmark, WorkloadParams};
//!
//! let row = run_benchmark(RmsBenchmark::Conj, &WorkloadParams::test())?;
//! assert!(row.cpma.iter().all(|&c| c > 0.0));
//! # Ok::<(), stacksim_core::Error>(())
//! ```
//!
//! Or through the harness, memoized:
//!
//! ```no_run
//! use stacksim_core::harness::run_one;
//! use stacksim_workloads::WorkloadParams;
//!
//! let artifact = run_one("table4", WorkloadParams::test())?;
//! # Ok::<(), stacksim_core::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod harness;
pub mod logic_logic;
pub mod memory_logic;
pub mod report;
pub mod sensitivity;
pub mod stacking;

pub mod prelude {
    //! One-stop imports for driving the harness: the runner, the memo
    //! cache, the `Sim` session types, and the workload parameters.
    //!
    //! ```
    //! use stacksim_core::prelude::*;
    //!
    //! let sim = Sim::builder().params(WorkloadParams::test()).build();
    //! let handle = sim.submit(&ExperimentRequest::new("fig5:gauss"))?;
    //! assert!(handle.wait().is_ok());
    //! # Ok::<(), stacksim_core::Error>(())
    //! ```

    pub use crate::error::Error;
    pub use crate::harness::{
        default_cache_dir, run_one, Artifact, ExperimentReport, ExperimentRequest, MemoCache,
        MemoCacheBuilder, Registry, RequestHandle, RequestOutcome, RequestStatus, Resilience,
        RunOptions, RunOptionsBuilder, RunOutcome, RunReport, Runner, Sim, SimBuilder, SimStats,
    };
    pub use stacksim_workloads::{Scale, WorkloadParams, WorkloadParamsBuilder};
}

pub use error::Error;
pub use logic_logic::{Fig11Point, Table4, Table4Row, Table5Row};
pub use memory_logic::{Fig5Data, Fig5Row, Headline, ThermalPoint};
pub use report::{fmt_f, TextTable};
pub use sensitivity::Fig3Data;
pub use stacking::StackOption;
