//! The Logic+Logic study (§4): Table 4 per-path gains, Fig. 11 thermals
//! and Table 5 voltage/frequency scaling.

use stacksim_floorplan::p4::pentium4_147w;
use stacksim_floorplan::{fold, worst_case_stack, FoldOptions, StackedFloorplan};
use stacksim_ooo::{suite, CoreConfig, Simulator, WireConfig, WirePath};
use stacksim_power::scaling::{OperatingPoint, ScalingModel};
use stacksim_thermal::{solve_with_stats, Boundary, LayerStack, SolveStats, SolverConfig};

use crate::error::Error;

/// One Table 4 row: a wire path, the stage reduction, the paper's gain and
/// the measured gain.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// The functional path.
    pub path: WirePath,
    /// Table 4's "% of Stages Eliminated" text.
    pub stages: &'static str,
    /// Measured performance gain, percent.
    pub measured_pct: f64,
    /// The paper's reported gain, percent.
    pub paper_pct: f64,
}

/// The Table 4 data set.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4 {
    /// Per-path rows in Table 4 order.
    pub rows: Vec<Table4Row>,
    /// Measured gain with *all* paths folded (the "Total" row).
    pub total_pct: f64,
}

/// Runs the Table 4 experiment: per-path and combined speedups averaged
/// over the eight workload classes. `uops_per_class` trades precision for
/// runtime (60 000 reproduces the paper-scale numbers; tests use less).
///
/// # Errors
///
/// Currently infallible, but returns [`enum@Error`] like every other study
/// entry point so the harness can treat all experiments uniformly.
pub fn table4(uops_per_class: usize, seed: u64) -> Result<Table4, Error> {
    let workloads = suite(uops_per_class, seed);
    let planar: Vec<u64> = workloads
        .iter()
        .map(|(_, u)| Simulator::new(CoreConfig::planar()).run(u).cycles)
        .collect();

    let gain_for = |wire: WireConfig| -> f64 {
        let cfg = CoreConfig {
            wire,
            ..CoreConfig::planar()
        };
        let sim = Simulator::new(cfg);
        let mut acc = 0.0;
        for ((_, uops), base) in workloads.iter().zip(&planar) {
            acc += *base as f64 / sim.run(uops).cycles as f64 - 1.0;
        }
        100.0 * acc / workloads.len() as f64
    };

    let rows = WirePath::all()
        .into_iter()
        .map(|path| Table4Row {
            path,
            stages: path.paper_stage_reduction(),
            measured_pct: gain_for(path.apply(WireConfig::planar())),
            paper_pct: path.paper_gain_pct(),
        })
        .collect();
    Ok(Table4 {
        rows,
        total_pct: gain_for(WireConfig::folded_3d()),
    })
}

/// One Fig. 11 bar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig11Point {
    /// Bar label.
    pub label: &'static str,
    /// Peak temperature in °C.
    pub peak_c: f64,
    /// Total power in watts.
    pub power_w: f64,
    /// The paper's reported value.
    pub paper_c: f64,
}

/// Builds the folded 3D floorplan used by Fig. 11 / Table 5.
///
/// # Errors
///
/// Returns [`Error::Fold`] if the P4 floorplan cannot be packed onto
/// two dies — impossible for the shipped floorplan (a unit test pins
/// it), but propagated instead of panicking.
pub fn folded_p4() -> Result<StackedFloorplan, Error> {
    Ok(fold(&pentium4_147w(), FoldOptions::default())?)
}

fn solve_p4_stack(
    stack3d: &StackedFloorplan,
    power_scale: f64,
    cfg: SolverConfig,
) -> Result<(f64, SolveStats), Error> {
    let d0 = &stack3d.dies()[0];
    let d1 = &stack3d.dies()[1];
    let ny = (cfg.nx * 17 / 20).max(1);
    let planar_area = pentium4_147w().area();
    let bc = Boundary::performance().scaled_to_area(planar_area, d0.area());
    let stack = LayerStack::two_die(
        d0.width(),
        d0.height(),
        d0.power_grid(cfg.nx, ny).scaled(power_scale),
        d1.power_grid(cfg.nx, ny).scaled(power_scale),
        false,
    );
    let sol = solve_with_stats(&stack, bc, cfg)?;
    Ok((sol.field.peak(), sol.stats))
}

/// Solves the three Fig. 11 configurations: planar baseline (147 W), the
/// repaired 3D fold (125 W at ~1.3× density) and the worst case (147 W at
/// 2× density).
///
/// # Errors
///
/// Propagates the first solver failure.
pub fn fig11() -> Result<Vec<Fig11Point>, Error> {
    Ok(fig11_instrumented()?.0)
}

/// [`fig11`], also returning the accumulated CG statistics of the three
/// thermal solves.
///
/// # Errors
///
/// Propagates the first solver failure.
pub fn fig11_instrumented() -> Result<(Vec<Fig11Point>, SolveStats), Error> {
    fig11_with(SolverConfig::default())
}

/// [`fig11_instrumented`] under an explicit solver configuration — the
/// harness threads its execution knobs (worker threads, preconditioner)
/// through here.
///
/// # Errors
///
/// Propagates the first solver failure.
pub fn fig11_with(cfg: SolverConfig) -> Result<(Vec<Fig11Point>, SolveStats), Error> {
    let planar = pentium4_147w();
    let ny = (cfg.nx * 17 / 20).max(1);
    let mut stats = SolveStats::default();

    let base = solve_with_stats(
        &LayerStack::planar(
            planar.width(),
            planar.height(),
            planar.power_grid(cfg.nx, ny),
        ),
        Boundary::performance(),
        cfg,
    )?;
    stats.absorb(base.stats);

    let folded = folded_p4()?;
    let (folded_peak, s) = solve_p4_stack(&folded, 1.0, cfg)?;
    stats.absorb(s);

    let wc = worst_case_stack(&planar);
    let (wc_peak, s) = solve_p4_stack(&wc, 1.0, cfg)?;
    stats.absorb(s);

    let points = vec![
        Fig11Point {
            label: "2D Baseline",
            peak_c: base.field.peak(),
            power_w: planar.total_power(),
            paper_c: 98.6,
        },
        Fig11Point {
            label: "3D",
            peak_c: folded_peak,
            power_w: folded.total_power(),
            paper_c: 112.5,
        },
        Fig11Point {
            label: "3D Worstcase",
            peak_c: wc_peak,
            power_w: wc.total_power(),
            paper_c: 124.75,
        },
    ];
    Ok((points, stats))
}

/// One Table 5 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5Row {
    /// Row label ("Baseline", "Same Pwr", ...).
    pub label: &'static str,
    /// Power in watts.
    pub power_w: f64,
    /// Power as a percentage of the planar baseline.
    pub power_pct: f64,
    /// Peak temperature in °C (thermally solved).
    pub temp_c: f64,
    /// Performance as a percentage of the planar baseline.
    pub perf_pct: f64,
    /// Supply voltage relative to nominal.
    pub vcc: f64,
    /// Frequency relative to nominal.
    pub freq: f64,
}

/// Runs the Table 5 scaling study. Each row's temperature column is solved
/// with the finite-volume model on the folded stack (the baseline row uses
/// the planar stack), exactly as the paper "simulated using the tool
/// described in Section 2.3".
///
/// # Errors
///
/// Propagates the first thermal-solver failure.
pub fn table5() -> Result<Vec<Table5Row>, Error> {
    Ok(table5_instrumented()?.0)
}

/// [`table5`], also returning the accumulated CG statistics of every
/// thermal solve — including the ~24 solves of the Same-Temp bisection.
///
/// # Errors
///
/// Propagates the first thermal-solver failure.
pub fn table5_instrumented() -> Result<(Vec<Table5Row>, SolveStats), Error> {
    table5_with(SolverConfig::default())
}

/// [`table5_instrumented`] under an explicit solver configuration — the
/// harness threads its execution knobs (worker threads, preconditioner)
/// through here.
///
/// # Errors
///
/// Propagates the first thermal-solver failure.
pub fn table5_with(cfg: SolverConfig) -> Result<(Vec<Table5Row>, SolveStats), Error> {
    let planar = pentium4_147w();
    let ny = (cfg.nx * 17 / 20).max(1);
    let mut stats = SolveStats::default();
    let baseline = solve_with_stats(
        &LayerStack::planar(
            planar.width(),
            planar.height(),
            planar.power_grid(cfg.nx, ny),
        ),
        Boundary::performance(),
        cfg,
    )?;
    stats.absorb(baseline.stats);
    let baseline_temp = baseline.field.peak();

    let folded = folded_p4()?;
    let model = ScalingModel::fig11_3d();
    // the folded floorplan already carries the 15% power saving; scale
    // factors below are relative to its 125 W nominal
    let folded_nominal = folded.total_power();

    let mut rows = Vec::new();
    rows.push(Table5Row {
        label: "Baseline",
        power_w: 147.0,
        power_pct: 100.0,
        temp_c: baseline_temp,
        perf_pct: 100.0,
        vcc: 1.0,
        freq: 1.0,
    });

    let make_row =
        |label: &'static str, point: OperatingPoint| -> Result<(Table5Row, SolveStats), Error> {
            let power = model.power(point);
            let (temp, s) = solve_p4_stack(&folded, power / folded_nominal, cfg)?;
            Ok((
                Table5Row {
                    label,
                    power_w: power,
                    power_pct: 100.0 * power / 147.0,
                    temp_c: temp,
                    perf_pct: model.perf(point),
                    vcc: point.vcc,
                    freq: point.freq,
                },
                s,
            ))
        };

    let (row, s) = make_row("Same Pwr", model.scale_freq_to_power(147.0))?;
    stats.absorb(s);
    rows.push(row);
    let (row, s) = make_row("Same Freq.", OperatingPoint::nominal())?;
    stats.absorb(s);
    rows.push(row);
    // find the joint scale where the folded stack returns to the baseline
    // peak temperature (bisection over thermal solves)
    let same_temp = {
        let mut lo = 0.5f64;
        let mut hi = 1.1f64;
        for _ in 0..24 {
            let mid = 0.5 * (lo + hi);
            let point = OperatingPoint::scaled_together(mid);
            let (t, s) = solve_p4_stack(&folded, point.power_factor(), cfg)?;
            stats.absorb(s);
            if t > baseline_temp {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        OperatingPoint::scaled_together(0.5 * (lo + hi))
    };
    let (row, s) = make_row("Same Temp", same_temp)?;
    stats.absorb(s);
    rows.push(row);
    let (row, s) = make_row("Same Perf.", model.scale_to_perf(100.0))?;
    stats.absorb(s);
    rows.push(row);
    Ok((rows, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_small_run_preserves_shape() {
        let t = table4(12_000, 3).unwrap();
        assert_eq!(t.rows.len(), 10);
        // the big three remain the big three
        let gain = |p: WirePath| {
            t.rows
                .iter()
                .find(|r| r.path == p)
                .expect("row exists")
                .measured_pct
        };
        let fp = gain(WirePath::FpLatency);
        let store = gain(WirePath::StoreLifetime);
        let fe = gain(WirePath::FrontEnd);
        assert!(fp > 2.0, "FP latency dominates: {fp}");
        assert!(store > 1.0, "store lifetime matters: {store}");
        assert!(fe < 1.0, "front end is minor: {fe}");
        // the combined machine gains roughly the paper's 15%
        assert!(
            t.total_pct > 10.0 && t.total_pct < 25.0,
            "total {}",
            t.total_pct
        );
    }

    #[test]
    fn fig11_ordering_and_baseline() {
        let pts = fig11().unwrap();
        assert_eq!(pts.len(), 3);
        assert!(
            (pts[0].peak_c - 98.6).abs() < 1.5,
            "baseline {:.2}",
            pts[0].peak_c
        );
        assert!(
            (pts[1].peak_c - 112.5).abs() < 2.5,
            "3D {:.2}",
            pts[1].peak_c
        );
        assert!(pts[1].peak_c < pts[2].peak_c, "repair beats worst case");
        assert!((pts[1].power_w - 125.0).abs() < 1.0, "15% power saving");
        assert!(
            (pts[2].power_w - 147.0).abs() < 1e-6,
            "worst case saves nothing"
        );
    }

    #[test]
    fn table5_rows_follow_the_papers_shape() {
        let rows = table5().unwrap();
        assert_eq!(rows.len(), 5);
        let by = |l: &str| rows.iter().find(|r| r.label == l).expect("row");
        let baseline = by("Baseline");
        let same_pwr = by("Same Pwr");
        let same_freq = by("Same Freq.");
        let same_temp = by("Same Temp");
        let same_perf = by("Same Perf.");
        // Same Pwr: 147 W, ~129% perf at ~1.18 freq
        assert!((same_pwr.power_w - 147.0).abs() < 0.5);
        assert!((same_pwr.freq - 1.176).abs() < 0.02);
        assert!((same_pwr.perf_pct - 129.0).abs() < 2.0);
        // Same Freq: 125 W / 115%
        assert!((same_freq.power_pct - 85.0).abs() < 0.5);
        assert!((same_freq.perf_pct - 115.0).abs() < 1e-9);
        // Same Temp: lower voltage, large power cut, still faster than 2D
        assert!(
            same_temp.vcc < 1.0 && same_temp.vcc > 0.85,
            "vcc {}",
            same_temp.vcc
        );
        assert!((same_temp.temp_c - baseline.temp_c).abs() < 0.5);
        assert!(same_temp.perf_pct > 104.0);
        assert!(same_temp.power_pct < 80.0, "power {}", same_temp.power_pct);
        // Same Perf: ~0.82 scale, under half the baseline power
        assert!((same_perf.vcc - 0.817).abs() < 0.02);
        assert!(same_perf.power_pct < 50.0);
        assert!(same_perf.temp_c < baseline.temp_c);
    }
}
