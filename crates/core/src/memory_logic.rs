//! The Memory+Logic study (§3): Fig. 5 performance/bandwidth, Fig. 6/8
//! thermals, and the headline numbers.

use stacksim_floorplan::PowerGrid;
use stacksim_mem::{Engine, EngineConfig, MemTelemetry, MemoryHierarchy};
use stacksim_power::bus_power_w;
use stacksim_thermal::{
    solve_with_stats, Boundary, LayerStack, SolveStats, SolverConfig, TemperatureField,
};
use stacksim_workloads::{RmsBenchmark, WorkloadParams};

use crate::error::Error;
use crate::stacking::StackOption;

/// Fraction of each trace treated as cache warm-up (excluded from metrics).
pub const WARMUP_FRACTION: f64 = 0.4;

/// One Fig. 5 bar group: a benchmark's CPMA and off-die bandwidth across
/// the four capacity options.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// The benchmark.
    pub benchmark: RmsBenchmark,
    /// CPMA per option, in [`StackOption::all`] order.
    pub cpma: [f64; 4],
    /// Off-die bandwidth (GB/s) per option.
    pub bandwidth: [f64; 4],
}

impl Fig5Row {
    /// CPMA reduction of option `i` relative to the 4 MB baseline
    /// (positive = better).
    pub fn cpma_reduction(&self, i: usize) -> f64 {
        1.0 - self.cpma[i] / self.cpma[0]
    }
}

/// The full Fig. 5 data set.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Data {
    /// Per-benchmark rows, in Table 1 order.
    pub rows: Vec<Fig5Row>,
}

impl Fig5Data {
    /// Arithmetic-mean CPMA per option (the Fig. 5 "Avg" group).
    pub fn mean_cpma(&self) -> [f64; 4] {
        let mut out = [0.0; 4];
        for r in &self.rows {
            for (o, c) in out.iter_mut().zip(&r.cpma) {
                *o += c;
            }
        }
        for o in &mut out {
            *o /= self.rows.len() as f64;
        }
        out
    }

    /// Arithmetic-mean bandwidth per option.
    pub fn mean_bandwidth(&self) -> [f64; 4] {
        let mut out = [0.0; 4];
        for r in &self.rows {
            for (o, b) in out.iter_mut().zip(&r.bandwidth) {
                *o += b;
            }
        }
        for o in &mut out {
            *o /= self.rows.len() as f64;
        }
        out
    }

    /// The §3 headline numbers at the 32 MB option (index 2): mean CPMA
    /// reduction, peak per-benchmark reduction, bandwidth reduction factor
    /// and bus-power saving in watts.
    pub fn headline(&self) -> Headline {
        let mean = self.mean_cpma();
        let bw = self.mean_bandwidth();
        let peak = self
            .rows
            .iter()
            .map(|r| r.cpma_reduction(2))
            .fold(f64::NEG_INFINITY, f64::max);
        Headline {
            mean_cpma_reduction: 1.0 - mean[2] / mean[0],
            peak_cpma_reduction: peak,
            bandwidth_reduction_factor: if bw[2] > 0.0 {
                bw[0] / bw[2]
            } else {
                f64::INFINITY
            },
            bus_power_saving_w: bus_power_w(bw[0]) - bus_power_w(bw[2]),
            baseline_bus_power_w: bus_power_w(bw[0]),
        }
    }
}

/// The §3 headline summary (paper: 13% mean, ~50–55% peak, 3× bandwidth,
/// ~0.5 W bus power).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Headline {
    /// Mean CPMA reduction at 32 MB vs the 4 MB baseline.
    pub mean_cpma_reduction: f64,
    /// Largest per-benchmark CPMA reduction at 32 MB.
    pub peak_cpma_reduction: f64,
    /// Mean bandwidth reduction factor at 32 MB.
    pub bandwidth_reduction_factor: f64,
    /// Bus power saved at 32 MB, in watts.
    pub bus_power_saving_w: f64,
    /// Baseline bus power, in watts.
    pub baseline_bus_power_w: f64,
}

impl Headline {
    /// Fractional bus-power reduction.
    pub fn bus_power_reduction(&self) -> f64 {
        if self.baseline_bus_power_w > 0.0 {
            self.bus_power_saving_w / self.baseline_bus_power_w
        } else {
            0.0
        }
    }
}

/// Runs one benchmark across all four options.
///
/// # Errors
///
/// Returns [`Error::Config`] if an option's hierarchy preset fails
/// validation; otherwise infallible.
pub fn run_benchmark(benchmark: RmsBenchmark, params: &WorkloadParams) -> Result<Fig5Row, Error> {
    Ok(run_benchmark_instrumented(benchmark, params)?.0)
}

/// [`run_benchmark`], also returning the per-option memory-engine
/// telemetry (one [`MemTelemetry`] per Fig. 7 option, in
/// [`StackOption::all`] order).
///
/// # Errors
///
/// See [`run_benchmark`].
pub fn run_benchmark_instrumented(
    benchmark: RmsBenchmark,
    params: &WorkloadParams,
) -> Result<(Fig5Row, [MemTelemetry; 4]), Error> {
    let trace = benchmark.generate(params);
    let mut cpma = [0.0; 4];
    let mut bandwidth = [0.0; 4];
    let mut telemetry = [MemTelemetry::default(); 4];
    for (i, option) in StackOption::all().into_iter().enumerate() {
        let mut engine = Engine::new(
            MemoryHierarchy::new(option.hierarchy())?,
            EngineConfig::default(),
        );
        let result = engine.run_warmed(&trace, WARMUP_FRACTION);
        cpma[i] = result.cpma;
        bandwidth[i] = result.offdie_gb_per_sec;
        telemetry[i] = result.telemetry();
    }
    Ok((
        Fig5Row {
            benchmark,
            cpma,
            bandwidth,
        },
        telemetry,
    ))
}

/// Runs the full Fig. 5 study: all twelve RMS benchmarks across the four
/// Fig. 7 options. At paper scale this simulates ~130 M references.
///
/// # Errors
///
/// See [`run_benchmark`].
pub fn fig5(params: &WorkloadParams) -> Result<Fig5Data, Error> {
    Ok(Fig5Data {
        rows: RmsBenchmark::all()
            .iter()
            .map(|b| run_benchmark(*b, params))
            .collect::<Result<_, _>>()?,
    })
}

/// The thermal result for one Fig. 8 bar.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalPoint {
    /// The option.
    pub option: StackOption,
    /// Peak stack temperature in °C.
    pub peak_c: f64,
    /// Total stack power in watts.
    pub power_w: f64,
    /// The solved field (for thermal-map rendering, Fig. 6(b)/8(b)).
    pub field: TemperatureField,
}

/// Builds the thermal stack for one option.
pub fn thermal_stack(option: StackOption, grid: usize) -> LayerStack {
    let cpu = option.cpu_floorplan();
    let (w, h) = (cpu.width(), cpu.height());
    let ny = (grid * 17 / 20).max(1);
    let power: PowerGrid = cpu.power_grid(grid, ny);
    match option.stacked_floorplan() {
        None => LayerStack::planar(w, h, power),
        Some(top) => LayerStack::two_die(
            w,
            h,
            power,
            top.power_grid(grid, ny),
            option.stacked_die_is_dram(),
        ),
    }
}

/// [`thermal_stack`] with every power grid scaled by `power_factor` —
/// the V/f axis of `stacksim explore`: dynamic power scales as V²·f
/// while the floorplan geometry is unchanged.
pub fn thermal_stack_scaled(option: StackOption, grid: usize, power_factor: f64) -> LayerStack {
    let cpu = option.cpu_floorplan();
    let (w, h) = (cpu.width(), cpu.height());
    let ny = (grid * 17 / 20).max(1);
    let power = cpu.power_grid(grid, ny).scaled(power_factor);
    match option.stacked_floorplan() {
        None => LayerStack::planar(w, h, power),
        Some(top) => LayerStack::two_die(
            w,
            h,
            power,
            top.power_grid(grid, ny).scaled(power_factor),
            option.stacked_die_is_dram(),
        ),
    }
}

/// Solves the Fig. 8 thermal comparison across all four options.
///
/// # Errors
///
/// Propagates the first solver failure.
pub fn fig8() -> Result<Vec<ThermalPoint>, Error> {
    Ok(fig8_instrumented()?.0)
}

/// [`fig8`], also returning the accumulated CG statistics of the four
/// thermal solves.
///
/// # Errors
///
/// Propagates the first solver failure.
pub fn fig8_instrumented() -> Result<(Vec<ThermalPoint>, SolveStats), Error> {
    fig8_with(SolverConfig::default())
}

/// [`fig8_instrumented`] under an explicit solver configuration — the
/// harness threads its execution knobs (worker threads, preconditioner)
/// through here.
///
/// # Errors
///
/// Propagates the first solver failure.
pub fn fig8_with(cfg: SolverConfig) -> Result<(Vec<ThermalPoint>, SolveStats), Error> {
    let bc = Boundary::desktop();
    let mut stats = SolveStats::default();
    let mut points = Vec::new();
    for option in StackOption::all() {
        let stack = thermal_stack(option, cfg.nx);
        let sol = solve_with_stats(&stack, bc, cfg)?;
        stats.absorb(sol.stats);
        points.push(ThermalPoint {
            option,
            peak_c: sol.field.peak(),
            power_w: option.total_power(),
            field: sol.field,
        });
    }
    Ok((points, stats))
}

/// Solves the baseline planar thermal map of Fig. 6: returns the power
/// grid and the temperature field of the active layer.
///
/// # Errors
///
/// Propagates solver failure.
pub fn fig6() -> Result<(PowerGrid, TemperatureField), Error> {
    let (out, _) = fig6_instrumented()?;
    Ok(out)
}

/// [`fig6`], also returning the CG statistics of the solve.
///
/// # Errors
///
/// Propagates solver failure.
pub fn fig6_instrumented() -> Result<((PowerGrid, TemperatureField), SolveStats), Error> {
    fig6_with(SolverConfig::default())
}

/// [`fig6_instrumented`] under an explicit solver configuration.
///
/// # Errors
///
/// Propagates solver failure.
pub fn fig6_with(cfg: SolverConfig) -> Result<((PowerGrid, TemperatureField), SolveStats), Error> {
    let option = StackOption::Planar4M;
    let cpu = option.cpu_floorplan();
    let ny = (cfg.nx * 17 / 20).max(1);
    let grid = cpu.power_grid(cfg.nx, ny);
    let stack = thermal_stack(option, cfg.nx);
    let sol = solve_with_stats(&stack, Boundary::desktop(), cfg)?;
    Ok(((grid, sol.field), sol.stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_matches_paper_within_a_degree() {
        let pts = fig8().unwrap();
        let paper = [88.35, 92.85, 88.43, 90.27];
        for (p, target) in pts.iter().zip(paper) {
            assert!(
                (p.peak_c - target).abs() < 1.2,
                "{}: {:.2} vs paper {target}",
                p.option,
                p.peak_c
            );
        }
        // the 32 MB DRAM option is thermally near-free (paper: +0.08 C)
        let delta = pts[2].peak_c - pts[0].peak_c;
        assert!(delta.abs() < 0.6, "32 MB delta {delta:.2}");
        // SRAM stacking heats the most
        assert!(pts[1].peak_c > pts[3].peak_c && pts[3].peak_c > pts[2].peak_c);
    }

    #[test]
    fn fig6_baseline_map_shape() {
        let (grid, field) = fig6().unwrap();
        assert!((grid.total() - 92.0).abs() < 1e-6);
        let peak = field.peak();
        assert!((peak - 88.35).abs() < 1.0, "peak {peak:.2}");
        // the die's coolest spot sits over the L2 (bottom half);
        // paper: 59 C with the epoxy-fillet edge effect we do not model
        let active = field.layer_by_name("active 1").expect("active layer");
        let min = active.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(min > 55.0 && min < 70.0, "coolest {min:.2}");
    }

    #[test]
    fn test_scale_fig5_shows_capacity_separation() {
        // at test scale only shape sanity is checked: valid metrics and
        // capacity-insensitive benchmarks staying flat
        let row = run_benchmark(RmsBenchmark::Conj, &WorkloadParams::test()).unwrap();
        for c in row.cpma {
            assert!(c > 0.0 && c < 100.0);
        }
    }

    #[test]
    fn headline_math() {
        let data = Fig5Data {
            rows: vec![
                Fig5Row {
                    benchmark: RmsBenchmark::Gauss,
                    cpma: [4.0, 4.0, 2.0, 2.0],
                    bandwidth: [12.0, 12.0, 4.0, 4.0],
                },
                Fig5Row {
                    benchmark: RmsBenchmark::Conj,
                    cpma: [1.0, 1.0, 1.0, 1.0],
                    bandwidth: [0.0, 0.0, 0.0, 0.0],
                },
            ],
        };
        let h = data.headline();
        assert!((h.mean_cpma_reduction - 0.4).abs() < 1e-9);
        assert!((h.peak_cpma_reduction - 0.5).abs() < 1e-9);
        assert!((h.bandwidth_reduction_factor - 3.0).abs() < 1e-9);
        assert!((h.bus_power_reduction() - 2.0 / 3.0).abs() < 1e-9);
    }
}
