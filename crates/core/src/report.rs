//! Plain-text table rendering for the `fig*`/`table*` regenerator binaries.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header count.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns (first column left-aligned,
    /// the rest right-aligned).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    let _ = write!(out, "{:<w$}", c, w = widths[i]);
                } else {
                    let _ = write!(out, "{:>w$}", c, w = widths[i]);
                }
            }
            out.push('\n');
        };
        line(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with the given precision (helper for report rows).
pub fn fmt_f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> TextTable {
        let mut t = TextTable::new(["bench", "CPMA", "BW"]);
        t.row(["gauss", "3.10", "15.42"]);
        t.row(["svm", "7.08", "9.72"]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let r = table().render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("bench"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // right-aligned numeric columns line up
        let c1 = lines[2].rfind("3.10").unwrap() + 4;
        let c2 = lines[3].rfind("7.08").unwrap() + 4;
        assert_eq!(c1, c2);
    }

    #[test]
    fn csv_roundtrip_structure() {
        let csv = table().to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().next().unwrap(), "bench,CPMA,BW");
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TextTable::new(["a"]);
        t.row(["x,y"]);
        assert!(t.to_csv().contains("\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn fmt_helper() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
    }
}
