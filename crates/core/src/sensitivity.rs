//! The Fig. 3 thermal-sensitivity study: peak temperature of a stacked
//! microprocessor as the Cu metal layer or bonding layer conductivity is
//! swept from 60 down to 3 W/mK.

use stacksim_thermal::sweep::{
    conductivity_sweep_multi_stats, conductivity_sweep_stats, fig3_conductivities, SweepPoint,
};
use stacksim_thermal::{Boundary, LayerStack, SolveStats, SolverConfig};

use crate::error::Error;
use crate::logic_logic::folded_p4;

/// The two Fig. 3 curves.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Data {
    /// Peak temperature vs Cu metal layer conductivity.
    pub cu_metal: Vec<SweepPoint>,
    /// Peak temperature vs bonding layer conductivity.
    pub bond: Vec<SweepPoint>,
}

impl Fig3Data {
    /// Temperature increase along a curve from its best (60 W/mK) to its
    /// worst (3 W/mK) point.
    pub fn span(points: &[SweepPoint]) -> f64 {
        let lo = points
            .iter()
            .map(|p| p.peak_c)
            .fold(f64::INFINITY, f64::min);
        let hi = points
            .iter()
            .map(|p| p.peak_c)
            .fold(f64::NEG_INFINITY, f64::max);
        hi - lo
    }
}

/// Runs the Fig. 3 sweep on the Logic+Logic two-die stack (the "stacked
/// microprocessor" of the figure): the far die's heat crosses both metal
/// stacks and the bond, which is what makes the metal curve dominate.
///
/// # Errors
///
/// Propagates the first solver failure.
pub fn fig3() -> Result<Fig3Data, Error> {
    Ok(fig3_instrumented()?.0)
}

/// [`fig3`], also returning the accumulated CG statistics of every solve
/// across both sweeps.
///
/// # Errors
///
/// Propagates the first solver failure.
pub fn fig3_instrumented() -> Result<(Fig3Data, SolveStats), Error> {
    fig3_with(SolverConfig::default())
}

/// [`fig3_instrumented`] under an explicit solver configuration — the
/// harness threads its execution knobs (worker threads, preconditioner)
/// through here; `stacksim bench` uses it to time the sweep end to end.
///
/// # Errors
///
/// Propagates the first solver failure.
pub fn fig3_with(cfg: SolverConfig) -> Result<(Fig3Data, SolveStats), Error> {
    let (stack, bc) = fig3_stack(&cfg)?;
    let ks = fig3_conductivities();
    let mut stats = SolveStats::default();
    // "the traditional metal stack on the two die": both metal layers
    let (cu_metal, s) =
        conductivity_sweep_multi_stats(&stack, &["cu metal 1", "cu metal 2"], &ks, bc, cfg)?;
    stats.absorb(s);
    let (bond, s) = conductivity_sweep_stats(&stack, "bond", &ks, bc, cfg)?;
    stats.absorb(s);
    Ok((Fig3Data { cu_metal, bond }, stats))
}

/// The Fig. 3 sweep with every point solved by the frozen pre-optimization
/// solver ([`stacksim_thermal::reference`]): branchy stencil, unfused CG,
/// cold starts. `stacksim bench` uses this as the baseline every speedup
/// is measured against. Results are identical to [`fig3_with`] up to the
/// solver tolerance.
///
/// # Errors
///
/// Propagates the first solver failure.
pub fn fig3_reference(cfg: SolverConfig) -> Result<(Fig3Data, SolveStats), Error> {
    let (stack, bc) = fig3_stack(&cfg)?;
    let ks = fig3_conductivities();
    let mut stats = SolveStats::default();
    let mut sweep_ref = |layers: &[&str]| -> Result<Vec<SweepPoint>, Error> {
        let mut out = Vec::with_capacity(ks.len());
        for &k in &ks {
            let mut swept = stack.clone();
            for name in layers {
                swept = swept
                    .with_layer_conductivity(name, k)
                    .map_err(Error::from)?;
            }
            let sol = stacksim_thermal::reference::solve_with_stats(&swept, bc, cfg)?;
            stats.absorb(sol.stats);
            out.push(SweepPoint {
                k,
                peak_c: sol.field.peak(),
            });
        }
        Ok(out)
    };
    let cu_metal = sweep_ref(&["cu metal 1", "cu metal 2"])?;
    let bond = sweep_ref(&["bond"])?;
    Ok((Fig3Data { cu_metal, bond }, stats))
}

/// The Fig. 3 sweep with every point solved cold (from ambient) by the
/// *optimized* kernel, ignoring the warm-start chaining [`fig3_with`]
/// uses. `stacksim bench` reports it as the kernel-only leg, isolating the
/// stencil/fusion gains from the warm-start and preconditioner gains.
/// Results are identical to [`fig3_with`] up to the solver tolerance.
///
/// # Errors
///
/// Propagates the first solver failure.
pub fn fig3_cold_with(cfg: SolverConfig) -> Result<(Fig3Data, SolveStats), Error> {
    let (stack, bc) = fig3_stack(&cfg)?;
    let ks = fig3_conductivities();
    let mut stats = SolveStats::default();
    let mut sweep_cold = |layers: &[&str]| -> Result<Vec<SweepPoint>, Error> {
        let mut out = Vec::with_capacity(ks.len());
        for &k in &ks {
            let mut swept = stack.clone();
            for name in layers {
                swept = swept
                    .with_layer_conductivity(name, k)
                    .map_err(Error::from)?;
            }
            let sol = stacksim_thermal::solve_with_stats(&swept, bc, cfg)?;
            stats.absorb(sol.stats);
            out.push(SweepPoint {
                k,
                peak_c: sol.field.peak(),
            });
        }
        Ok(out)
    };
    let cu_metal = sweep_cold(&["cu metal 1", "cu metal 2"])?;
    let bond = sweep_cold(&["bond"])?;
    Ok((Fig3Data { cu_metal, bond }, stats))
}

/// The two-die stack and boundary condition both Fig. 3 sweeps run over.
/// Public so `stacksim bench` can report the grid it timed (layer count,
/// cell count) without duplicating the construction.
pub fn fig3_stack(cfg: &SolverConfig) -> Result<(LayerStack, Boundary), Error> {
    let folded = folded_p4()?;
    let d0 = &folded.dies()[0];
    let d1 = &folded.dies()[1];
    let ny = (cfg.nx * 17 / 20).max(1);
    let planar_area = stacksim_floorplan::p4::pentium4_147w().area();
    let bc = Boundary::performance().scaled_to_area(planar_area, d0.area());
    let stack = LayerStack::two_die(
        d0.width(),
        d0.height(),
        d0.power_grid(cfg.nx, ny),
        d1.power_grid(cfg.nx, ny),
        false,
    );
    Ok((stack, bc))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_shape_matches_the_paper() {
        let data = fig3().unwrap();
        // both curves rise monotonically as conductivity falls
        for curve in [&data.cu_metal, &data.bond] {
            for w in curve.windows(2) {
                assert!(w[0].k > w[1].k, "grid is descending");
                assert!(
                    w[1].peak_c >= w[0].peak_c - 1e-6,
                    "peak rises as k falls: {:?}",
                    curve
                );
            }
        }
        // the metal layer has the stronger temperature impact (Fig. 3's
        // conclusion: "the metal layer has a more significant temperature
        // impact")
        let metal_span = Fig3Data::span(&data.cu_metal);
        let bond_span = Fig3Data::span(&data.bond);
        assert!(
            metal_span > bond_span,
            "metal span {metal_span:.2} vs bond span {bond_span:.2}"
        );
        // the paper's Fig. 3 y-axis spans roughly 82..90 C: a few degrees
        // of sensitivity, not tens
        assert!(
            metal_span > 0.5 && metal_span < 20.0,
            "span {metal_span:.2}"
        );
    }
}
