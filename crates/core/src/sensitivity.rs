//! The Fig. 3 thermal-sensitivity study: peak temperature of a stacked
//! microprocessor as the Cu metal layer or bonding layer conductivity is
//! swept from 60 down to 3 W/mK.

use stacksim_thermal::sweep::{
    conductivity_sweep_multi_stats, conductivity_sweep_stats, fig3_conductivities, SweepPoint,
};
use stacksim_thermal::{Boundary, LayerStack, SolveStats, SolverConfig};

use crate::error::Error;
use crate::logic_logic::folded_p4;

/// The two Fig. 3 curves.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Data {
    /// Peak temperature vs Cu metal layer conductivity.
    pub cu_metal: Vec<SweepPoint>,
    /// Peak temperature vs bonding layer conductivity.
    pub bond: Vec<SweepPoint>,
}

impl Fig3Data {
    /// Temperature increase along a curve from its best (60 W/mK) to its
    /// worst (3 W/mK) point.
    pub fn span(points: &[SweepPoint]) -> f64 {
        let lo = points
            .iter()
            .map(|p| p.peak_c)
            .fold(f64::INFINITY, f64::min);
        let hi = points
            .iter()
            .map(|p| p.peak_c)
            .fold(f64::NEG_INFINITY, f64::max);
        hi - lo
    }
}

/// Runs the Fig. 3 sweep on the Logic+Logic two-die stack (the "stacked
/// microprocessor" of the figure): the far die's heat crosses both metal
/// stacks and the bond, which is what makes the metal curve dominate.
///
/// # Errors
///
/// Propagates the first solver failure.
pub fn fig3() -> Result<Fig3Data, Error> {
    Ok(fig3_instrumented()?.0)
}

/// [`fig3`], also returning the accumulated CG statistics of every solve
/// across both sweeps.
///
/// # Errors
///
/// Propagates the first solver failure.
pub fn fig3_instrumented() -> Result<(Fig3Data, SolveStats), Error> {
    let folded = folded_p4();
    let d0 = &folded.dies()[0];
    let d1 = &folded.dies()[1];
    let cfg = SolverConfig::default();
    let ny = (cfg.nx * 17 / 20).max(1);
    let planar_area = stacksim_floorplan::p4::pentium4_147w().area();
    let bc = Boundary::performance().scaled_to_area(planar_area, d0.area());
    let stack = LayerStack::two_die(
        d0.width(),
        d0.height(),
        d0.power_grid(cfg.nx, ny),
        d1.power_grid(cfg.nx, ny),
        false,
    );
    let ks = fig3_conductivities();
    let mut stats = SolveStats::default();
    // "the traditional metal stack on the two die": both metal layers
    let (cu_metal, s) =
        conductivity_sweep_multi_stats(&stack, &["cu metal 1", "cu metal 2"], &ks, bc, cfg)?;
    stats.absorb(s);
    let (bond, s) = conductivity_sweep_stats(&stack, "bond", &ks, bc, cfg)?;
    stats.absorb(s);
    Ok((Fig3Data { cu_metal, bond }, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_shape_matches_the_paper() {
        let data = fig3().unwrap();
        // both curves rise monotonically as conductivity falls
        for curve in [&data.cu_metal, &data.bond] {
            for w in curve.windows(2) {
                assert!(w[0].k > w[1].k, "grid is descending");
                assert!(
                    w[1].peak_c >= w[0].peak_c - 1e-6,
                    "peak rises as k falls: {:?}",
                    curve
                );
            }
        }
        // the metal layer has the stronger temperature impact (Fig. 3's
        // conclusion: "the metal layer has a more significant temperature
        // impact")
        let metal_span = Fig3Data::span(&data.cu_metal);
        let bond_span = Fig3Data::span(&data.bond);
        assert!(
            metal_span > bond_span,
            "metal span {metal_span:.2} vs bond span {bond_span:.2}"
        );
        // the paper's Fig. 3 y-axis spans roughly 82..90 C: a few degrees
        // of sensitivity, not tens
        assert!(
            metal_span > 0.5 && metal_span < 20.0,
            "span {metal_span:.2}"
        );
    }
}
