//! The four Fig. 7 stacking options as one study handle.

use stacksim_floorplan::core2::core2_duo_92w;
use stacksim_floorplan::{uniform_die, Floorplan};
use stacksim_mem::HierarchyConfig;

/// One of the memory-stacking options of Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StackOption {
    /// (a) The planar baseline: 4 MB on-die SRAM L2.
    Planar4M,
    /// (b) 8 MB SRAM stacked for a 12 MB L2.
    Sram12M,
    /// (c) 32 MB stacked DRAM, on-die SRAM L2 removed (tags on die).
    Dram32M,
    /// (d) 64 MB stacked DRAM, the old L2 array holds the tags.
    Dram64M,
}

impl StackOption {
    /// All four options in Fig. 5 / Fig. 8 order.
    pub fn all() -> [StackOption; 4] {
        [
            StackOption::Planar4M,
            StackOption::Sram12M,
            StackOption::Dram32M,
            StackOption::Dram64M,
        ]
    }

    /// Last-level-cache capacity label in MB.
    pub fn capacity_mb(&self) -> u32 {
        match self {
            StackOption::Planar4M => 4,
            StackOption::Sram12M => 12,
            StackOption::Dram32M => 32,
            StackOption::Dram64M => 64,
        }
    }

    /// Fig. 8 bar label.
    pub fn label(&self) -> &'static str {
        match self {
            StackOption::Planar4M => "2D 4MB",
            StackOption::Sram12M => "3D 12MB",
            StackOption::Dram32M => "3D 32MB",
            StackOption::Dram64M => "3D 64MB",
        }
    }

    /// The memory-hierarchy configuration simulated for Fig. 5.
    pub fn hierarchy(&self) -> HierarchyConfig {
        match self {
            StackOption::Planar4M => HierarchyConfig::core2_baseline(),
            StackOption::Sram12M => HierarchyConfig::stacked_sram_12mb(),
            StackOption::Dram32M => HierarchyConfig::stacked_dram_32mb(),
            StackOption::Dram64M => HierarchyConfig::stacked_dram_64mb(),
        }
    }

    /// Power of the stacked (top) die in watts, per the Fig. 7 block
    /// diagrams: 8 MB SRAM = 14 W, 32 MB DRAM = 3.1 W, 64 MB DRAM = 6.2 W.
    pub fn stacked_die_power(&self) -> f64 {
        match self {
            StackOption::Planar4M => 0.0,
            StackOption::Sram12M => stacksim_power::sram_power_w(8.0),
            StackOption::Dram32M => stacksim_power::dram_power_w(32.0),
            StackOption::Dram64M => stacksim_power::dram_power_w(64.0),
        }
    }

    /// Whether the stacked die is DRAM (Al metal stack) rather than SRAM.
    pub fn stacked_die_is_dram(&self) -> bool {
        matches!(self, StackOption::Dram32M | StackOption::Dram64M)
    }

    /// The CPU-die floorplan for the thermal study. In option (c) the 4 MB
    /// SRAM array shrinks to the stacked-DRAM tag store (~2 MB of tags on
    /// the same footprint); in (d) the old L2 array serves as the tag store
    /// at its full 7 W.
    pub fn cpu_floorplan(&self) -> Floorplan {
        let base = core2_duo_92w();
        match self {
            StackOption::Dram32M => {
                let mut f = Floorplan::new("core2-32m", base.width(), base.height());
                for b in base.blocks() {
                    if b.name() == "l2" {
                        f.push(b.with_power_scaled(3.5 / 7.0));
                    } else {
                        f.push(b.clone());
                    }
                }
                f
            }
            _ => base,
        }
    }

    /// The stacked (top) die floorplan, if any. Cache dies are uniform
    /// ("the cache-only die in the stack has uniform power").
    pub fn stacked_floorplan(&self) -> Option<Floorplan> {
        if *self == StackOption::Planar4M {
            return None;
        }
        let base = core2_duo_92w();
        let name = match self {
            StackOption::Sram12M => "sram8",
            StackOption::Dram32M => "dram32",
            StackOption::Dram64M => "dram64",
            StackOption::Planar4M => unreachable!(),
        };
        Some(uniform_die(
            name,
            base.width(),
            base.height(),
            self.stacked_die_power(),
        ))
    }

    /// Total stack power (CPU die + stacked die) in watts.
    pub fn total_power(&self) -> f64 {
        self.cpu_floorplan().total_power()
            + self.stacked_floorplan().map_or(0.0, |f| f.total_power())
    }
}

impl std::fmt::Display for StackOption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_match_fig7() {
        let caps: Vec<u32> = StackOption::all().iter().map(|o| o.capacity_mb()).collect();
        assert_eq!(caps, vec![4, 12, 32, 64]);
    }

    #[test]
    fn stacked_die_powers_match_fig7() {
        assert_eq!(StackOption::Planar4M.stacked_die_power(), 0.0);
        assert!((StackOption::Sram12M.stacked_die_power() - 14.0).abs() < 1e-9);
        assert!((StackOption::Dram32M.stacked_die_power() - 3.1).abs() < 1e-9);
        assert!((StackOption::Dram64M.stacked_die_power() - 6.2).abs() < 1e-9);
    }

    #[test]
    fn total_power_ordering_matches_the_paper() {
        // 12 MB SRAM: 106 W (92 + 14); 32 MB is *below* baseline + DRAM
        // because the on-die L2 shrank to tags
        let p4 = StackOption::Planar4M.total_power();
        let p12 = StackOption::Sram12M.total_power();
        let p32 = StackOption::Dram32M.total_power();
        let p64 = StackOption::Dram64M.total_power();
        assert!((p4 - 92.0).abs() < 1e-9);
        assert!((p12 - 106.0).abs() < 1e-9);
        assert!(p32 < p4 + 3.2, "32 MB option saves SRAM power: {p32}");
        assert!((p64 - 98.2).abs() < 1e-9);
    }

    #[test]
    fn hierarchies_validate() {
        for o in StackOption::all() {
            o.hierarchy().validate().unwrap();
            assert_eq!(
                o.hierarchy().llc_capacity(),
                u64::from(o.capacity_mb()) << 20
            );
        }
    }

    #[test]
    fn floorplans_validate() {
        for o in StackOption::all() {
            o.cpu_floorplan().validate().unwrap();
            if let Some(top) = o.stacked_floorplan() {
                top.validate().unwrap();
                assert_eq!(o.stacked_die_is_dram(), top.name().starts_with("dram"));
            }
        }
    }
}
