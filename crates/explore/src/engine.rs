//! The exploration engine: drives a design-space search through the
//! [`Sim`] session API and assembles the `stacksim-explore/1` frontier
//! artifact.
//!
//! Each design point decomposes into two sub-experiments — the standard
//! `fig5:<bench>` memory point and an `explore:thermal:*` operating
//! point — so overlapping configurations deduplicate naturally: a
//! 576-point default space needs only 12 memory runs and 48 thermal
//! solves, everything else is reuse. Both sub-results land in the memo
//! cache under their ordinary digests, which is what makes a second,
//! overlapping exploration (or a plain `stacksim run fig5`) nearly
//! free.
//!
//! Determinism contract: for a fixed `(spec, mode, budget, seed)` the
//! emitted artifact is byte-identical at any `--jobs`, any thread
//! schedule and any cache state — selection is a pure function of the
//! seed, results are bit-identical by the solver/engine contracts, and
//! the artifact orders points canonically. Wall-clock facts (cache and
//! dedup hits, CG iterations) are therefore reported *next to* the
//! artifact, never inside it.

use std::collections::{BTreeMap, BTreeSet};

use stacksim_core::harness::json::Json;
use stacksim_core::harness::{obs as harness_obs, Artifact, ExperimentRequest, MemoCache, Sim};
use stacksim_core::{Error, StackOption};
use stacksim_power::{bus_power_w, PERF_PER_FREQ};
use stacksim_workloads::WorkloadParams;

use crate::experiments::{mem_point_name, registry_for, thermal_point_name};
use crate::pareto::{frontier, sensitivities, Objectives};
use crate::search::{grid_select, random_select, Evolver, SearchMode};
use crate::space::{PointIdx, SpaceSpec};

/// The artifact schema identifier.
pub const EXPLORE_SCHEMA: &str = "stacksim-explore/1";

/// Largest evolutionary wave (the effective population size).
const EVOLVE_POP: usize = 16;

/// Why an exploration failed.
#[derive(Debug)]
pub enum ExploreError {
    /// The space spec was invalid.
    Spec(String),
    /// A sub-experiment could not be submitted or failed to run.
    Run(Error),
    /// A sub-experiment ran and failed.
    Failed {
        /// The sub-experiment's name.
        name: String,
        /// The failure it reported.
        detail: String,
    },
    /// A sub-experiment completed with the wrong artifact shape.
    Artifact {
        /// The sub-experiment's name.
        name: String,
        /// What was wrong with its result.
        detail: String,
    },
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::Spec(detail) => write!(f, "invalid design space: {detail}"),
            ExploreError::Run(e) => write!(f, "exploration sub-experiment failed: {e}"),
            ExploreError::Failed { name, detail } => {
                write!(f, "sub-experiment '{name}' failed: {detail}")
            }
            ExploreError::Artifact { name, detail } => {
                write!(
                    f,
                    "sub-experiment '{name}' returned an unusable artifact: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for ExploreError {}

impl From<Error> for ExploreError {
    fn from(e: Error) -> Self {
        ExploreError::Run(e)
    }
}

/// One exploration's inputs.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// The design space to search.
    pub spec: SpaceSpec,
    /// How the space is walked.
    pub mode: SearchMode,
    /// Maximum design points to evaluate; `0` means the whole space.
    pub budget: usize,
    /// Seed fixing the search trajectory (random and evolve modes).
    pub seed: u64,
}

impl ExploreConfig {
    /// A full-grid search of `spec`.
    pub fn grid(spec: SpaceSpec) -> ExploreConfig {
        ExploreConfig {
            spec,
            mode: SearchMode::Grid,
            budget: 0,
            seed: 0,
        }
    }

    /// The effective budget (the whole space when `budget` is `0`).
    fn effective_budget(&self) -> usize {
        let total = self.spec.total_points();
        if self.budget == 0 {
            total
        } else {
            self.budget.min(total)
        }
    }
}

/// What an exploration produced: the canonical artifact plus the
/// execution accounting the artifact deliberately excludes.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// The `stacksim-explore/1` artifact, canonically encoded.
    pub artifact_json: String,
    /// Design points evaluated.
    pub evaluated: usize,
    /// Points on the Pareto frontier.
    pub frontier_size: usize,
    /// Sub-experiment requests actually submitted to the session.
    pub requests: u64,
    /// Submitted requests served from the memo cache.
    pub cache_hits: u64,
    /// Sub-experiment needs satisfied without a submission, because an
    /// earlier point in this exploration already covered them.
    pub dedup_hits: u64,
    /// CG iterations the session spent on this exploration (zero when
    /// everything came from cache).
    pub cg_iterations: u64,
}

impl ExploreOutcome {
    /// Fraction of sub-experiment needs served without fresh work:
    /// `(dedup + cached) / (dedup + submitted)`. `1.0` for an empty
    /// exploration.
    pub fn hit_rate(&self) -> f64 {
        let total = self.dedup_hits + self.requests;
        if total == 0 {
            return 1.0;
        }
        (self.dedup_hits + self.cache_hits) as f64 / total as f64
    }
}

/// Builds a session over [`registry_for`]`(spec)` and runs one
/// exploration on it — the entry point the CLI and the serve endpoint
/// share. The session starts paused so the opening wave lands in one
/// batched runner invocation.
///
/// # Errors
///
/// [`ExploreError`] on an invalid spec or a failing sub-experiment.
pub fn run_exploration(
    cfg: &ExploreConfig,
    params: WorkloadParams,
    jobs: usize,
    cache: MemoCache,
) -> Result<ExploreOutcome, ExploreError> {
    cfg.spec.validate().map_err(ExploreError::Spec)?;
    let sim = Sim::builder()
        .registry(registry_for(&cfg.spec))
        .params(params)
        .jobs(jobs)
        .cache(cache)
        .preflight(true)
        .start_paused(true)
        .build();
    let outcome = explore(&sim, cfg);
    sim.shutdown();
    outcome
}

/// Runs one exploration on an existing session (whose registry must
/// cover the spec — use [`registry_for`]). See [`run_exploration`] for
/// the self-contained form.
///
/// # Errors
///
/// [`ExploreError`] on an invalid spec or a failing sub-experiment.
pub fn explore(sim: &Sim, cfg: &ExploreConfig) -> Result<ExploreOutcome, ExploreError> {
    cfg.spec.validate().map_err(ExploreError::Spec)?;
    let budget = cfg.effective_budget();
    let mut eval = Evaluator::new(sim, &cfg.spec);

    let mut evaluated: Vec<PointIdx> = match cfg.mode {
        SearchMode::Grid => grid_select(&cfg.spec, budget),
        SearchMode::Random => random_select(&cfg.spec, budget, cfg.seed),
        SearchMode::Evolve => Vec::new(),
    };
    if cfg.mode == SearchMode::Evolve {
        let mut evolver = Evolver::new(cfg.seed);
        while evaluated.len() < budget {
            let n = (budget - evaluated.len()).min(EVOLVE_POP);
            let wave = if evaluated.is_empty() {
                evolver.initial_wave(&cfg.spec, n)
            } else {
                let objectives: Vec<Objectives> =
                    evaluated.iter().map(|p| eval.objectives(p)).collect();
                let parents: Vec<PointIdx> = evaluated
                    .iter()
                    .zip(frontier(&objectives))
                    .filter(|(_, on_front)| *on_front)
                    .map(|(p, _)| *p)
                    .collect();
                evolver.next_wave(&cfg.spec, &parents, n)
            };
            if wave.is_empty() {
                break; // space exhausted below budget
            }
            eval.evaluate(&wave)?;
            evaluated.extend(wave);
        }
        evaluated.sort_unstable();
    } else {
        eval.evaluate(&evaluated)?;
    }

    let objectives: Vec<Objectives> = evaluated.iter().map(|p| eval.objectives(p)).collect();
    let on_frontier = frontier(&objectives);
    let frontier_size = on_frontier.iter().filter(|f| **f).count() as u64;

    if stacksim_obs::enabled() {
        stacksim_obs::counter(harness_obs::EXPLORE_POINTS).add(evaluated.len() as u64);
        stacksim_obs::counter(harness_obs::EXPLORE_REQUESTS).add(eval.requests);
        stacksim_obs::counter(harness_obs::EXPLORE_CACHE_HITS).add(eval.cache_hits);
        stacksim_obs::counter(harness_obs::EXPLORE_DEDUP_HITS).add(eval.dedup_hits);
        stacksim_obs::gauge(harness_obs::EXPLORE_FRONTIER_SIZE).set(frontier_size as f64);
    }

    let artifact_json = encode_artifact(cfg, &evaluated, &objectives, &on_frontier, &eval);
    Ok(ExploreOutcome {
        artifact_json,
        evaluated: evaluated.len(),
        frontier_size: frontier_size as usize,
        requests: eval.requests,
        cache_hits: eval.cache_hits,
        dedup_hits: eval.dedup_hits,
        cg_iterations: eval.cg_iterations,
    })
}

/// What a sub-experiment handle was fetched for.
enum Want {
    /// The memory point of benchmark index `bi`.
    Mem(usize),
    /// The thermal point of `(oi, di, vi)`.
    Thermal(usize, usize, usize),
}

/// Accumulated sub-experiment results and request accounting.
struct Evaluator<'a> {
    sim: &'a Sim,
    spec: &'a SpaceSpec,
    /// `bi` → `(cpma, bandwidth)` across [`StackOption::all`] order.
    mem: BTreeMap<usize, ([f64; 4], [f64; 4])>,
    /// `(oi, di, vi)` → `(peak_c, scaled die power)`.
    thermal: BTreeMap<(usize, usize, usize), (f64, f64)>,
    /// `oi` → column into the Fig. 5 row arrays.
    option_col: Vec<usize>,
    requests: u64,
    cache_hits: u64,
    dedup_hits: u64,
    cg_iterations: u64,
    resumed: bool,
}

impl<'a> Evaluator<'a> {
    fn new(sim: &'a Sim, spec: &'a SpaceSpec) -> Evaluator<'a> {
        let all = StackOption::all();
        let option_col = spec
            .options
            .iter()
            .map(|o| all.iter().position(|a| a == o).unwrap_or(0))
            .collect();
        Evaluator {
            sim,
            spec,
            mem: BTreeMap::new(),
            thermal: BTreeMap::new(),
            option_col,
            requests: 0,
            cache_hits: 0,
            dedup_hits: 0,
            cg_iterations: 0,
            resumed: false,
        }
    }

    /// Fetches every sub-result the batch still misses. Needs already
    /// covered — by an earlier batch or by an earlier point of this one
    /// — count as dedup hits and cost nothing.
    fn evaluate(&mut self, batch: &[PointIdx]) -> Result<(), ExploreError> {
        let mut want_mem: BTreeSet<usize> = BTreeSet::new();
        let mut want_thermal: BTreeSet<(usize, usize, usize)> = BTreeSet::new();
        for p in batch {
            if self.mem.contains_key(&p.bi) || !want_mem.insert(p.bi) {
                self.dedup_hits += 1;
            }
            let key = (p.oi, p.di, p.vi);
            if self.thermal.contains_key(&key) || !want_thermal.insert(key) {
                self.dedup_hits += 1;
            }
        }

        let mut handles = Vec::with_capacity(want_mem.len() + want_thermal.len());
        for &bi in &want_mem {
            let name = mem_point_name(self.spec.benchmarks[bi]);
            let handle = self.sim.submit(&ExperimentRequest::new(&name))?;
            handles.push((handle, Want::Mem(bi)));
        }
        for &(oi, di, vi) in &want_thermal {
            let name = thermal_point_name(
                self.spec.options[oi],
                self.spec.boundaries[di],
                self.spec.vf[vi],
            );
            let handle = self.sim.submit(&ExperimentRequest::new(&name))?;
            handles.push((handle, Want::Thermal(oi, di, vi)));
        }
        self.requests += handles.len() as u64;
        if !self.resumed {
            // the opening batch was queued against a paused session; one
            // resume releases it as a single runner invocation
            self.sim.resume();
            self.resumed = true;
        }

        for (handle, want) in handles {
            let outcome = handle.wait();
            if let Some(detail) = &outcome.report.error {
                return Err(ExploreError::Failed {
                    name: handle.name().to_string(),
                    detail: detail.clone(),
                });
            }
            if outcome.report.cached {
                self.cache_hits += 1;
            }
            self.cg_iterations += outcome.report.telemetry.solver.iterations as u64;
            let artifact = outcome.artifact.as_deref();
            match (want, artifact) {
                (Want::Mem(bi), Some(Artifact::Fig5Row(row))) => {
                    self.mem.insert(bi, (row.cpma, row.bandwidth));
                }
                (Want::Thermal(oi, di, vi), Some(Artifact::ExplorePoint { metrics })) => {
                    let metric = |key: &str| {
                        metrics
                            .iter()
                            .find(|(name, _)| name == key)
                            .map(|(_, value)| *value)
                            .ok_or_else(|| ExploreError::Artifact {
                                name: handle.name().to_string(),
                                detail: format!("missing metric '{key}'"),
                            })
                    };
                    self.thermal
                        .insert((oi, di, vi), (metric("peak_c")?, metric("power_w")?));
                }
                (want, artifact) => {
                    return Err(ExploreError::Artifact {
                        name: handle.name().to_string(),
                        detail: format!(
                            "expected a {} artifact, got {}",
                            match want {
                                Want::Mem(_) => "fig5_row",
                                Want::Thermal(..) => "explore_point",
                            },
                            artifact.map_or("nothing", Artifact::kind)
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// The raw measurements of one evaluated point.
    ///
    /// # Panics
    ///
    /// Panics if the point was never [`evaluate`](Self::evaluate)d — an
    /// engine-internal ordering bug, not a user-reachable state.
    fn measurements(&self, p: &PointIdx) -> PointMeasurements {
        let col = self.option_col[p.oi];
        let (cpma_row, bw_row) = self.mem[&p.bi];
        let (peak_c, die_power_w) = self.thermal[&(p.oi, p.di, p.vi)];
        let vf = self.spec.vf[p.vi];
        // +0.82% performance per +1% frequency (Table 5), applied to the
        // inverse of cycles-per-memory-access; off-die traffic scales
        // with frequency, so bus power sees the scaled bandwidth
        let cpma = cpma_row[col];
        let bus_w = bus_power_w(bw_row[col] * vf);
        PointMeasurements {
            cpma,
            bus_w,
            objectives: Objectives {
                perf: (1.0 + PERF_PER_FREQ * (vf - 1.0)) / cpma,
                peak_c,
                power_w: die_power_w + bus_w,
            },
        }
    }

    /// The point's objectives (see [`measurements`](Self::measurements)).
    fn objectives(&self, p: &PointIdx) -> Objectives {
        self.measurements(p).objectives
    }
}

/// One evaluated point's measurements, for the artifact.
struct PointMeasurements {
    cpma: f64,
    bus_w: f64,
    objectives: Objectives,
}

/// Encodes the canonical `stacksim-explore/1` artifact. `evaluated`
/// must already be canonically sorted.
fn encode_artifact(
    cfg: &ExploreConfig,
    evaluated: &[PointIdx],
    objectives: &[Objectives],
    on_frontier: &[bool],
    eval: &Evaluator<'_>,
) -> String {
    let spec = &cfg.spec;
    let points: Vec<Json> = evaluated
        .iter()
        .zip(on_frontier)
        .map(|(p, front)| {
            let m = eval.measurements(p);
            Json::obj(vec![
                ("option", Json::Str(spec.options[p.oi].label().to_string())),
                (
                    "benchmark",
                    Json::Str(spec.benchmarks[p.bi].name().to_string()),
                ),
                (
                    "boundary",
                    Json::Str(spec.boundaries[p.di].label().to_string()),
                ),
                ("vf", Json::Num(spec.vf[p.vi])),
                ("perf", Json::Num(m.objectives.perf)),
                ("cpma", Json::Num(m.cpma)),
                ("peak_c", Json::Num(m.objectives.peak_c)),
                ("power_w", Json::Num(m.objectives.power_w)),
                ("bus_w", Json::Num(m.bus_w)),
                ("frontier", Json::Bool(*front)),
            ])
        })
        .collect();
    let ranked = sensitivities(
        &evaluated
            .iter()
            .copied()
            .zip(objectives.iter().copied())
            .collect::<Vec<_>>(),
        spec,
    );
    let sensitivity: Vec<Json> = ranked
        .iter()
        .map(|s| {
            Json::obj(vec![
                ("axis", Json::Str(s.axis.to_string())),
                ("score", Json::Num(s.score)),
                ("perf", Json::Num(s.perf)),
                ("peak_c", Json::Num(s.peak_c)),
                ("power_w", Json::Num(s.power_w)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("schema", Json::Str(EXPLORE_SCHEMA.to_string())),
        ("mode", Json::Str(cfg.mode.label().to_string())),
        ("seed", Json::Num(cfg.seed as f64)),
        ("budget", Json::Num(cfg.effective_budget() as f64)),
        ("space", spec.to_json()),
        ("total_points", Json::Num(spec.total_points() as f64)),
        ("evaluated", Json::Num(evaluated.len() as f64)),
        (
            "frontier_size",
            Json::Num(on_frontier.iter().filter(|f| **f).count() as f64),
        ),
        ("points", Json::Arr(points)),
        ("sensitivity", Json::Arr(sensitivity)),
    ])
    .encode()
}
