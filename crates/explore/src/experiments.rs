//! The thermal sub-experiments `stacksim explore` registers on top of
//! the standard registry.
//!
//! A design point needs two ingredients: its memory-side performance
//! (CPMA and off-die bandwidth, which the standard `fig5:<bench>`
//! experiments already produce — explore shares their memo cache with
//! every other caller) and its thermal operating point (peak temperature
//! and scaled die power, which depend on the stack option, boundary and
//! V/f scale but not on the benchmark). This module contributes the
//! thermal half: one [`ThermalPointExp`] per `(option, boundary, vf)`
//! combination, named so close V/f values can never collide.

use stacksim_core::harness::{Artifact, Ctx, Digest, Experiment, ParamSensitivity, Registry};
use stacksim_core::memory_logic::thermal_stack_scaled;
use stacksim_core::{Error, StackOption};
use stacksim_power::OperatingPoint;
use stacksim_thermal::{solve_with_stats, SolverConfig};
use stacksim_workloads::{RmsBenchmark, WorkloadParams};

use crate::space::{BoundaryChoice, SpaceSpec};

/// Version of the explore experiment family's digest schema. Bump when
/// the thermal-point computation changes meaning.
const EXPLORE_SCHEMA_VERSION: u64 = 1;

/// The short, name-safe slug of a stack option.
pub fn option_slug(option: StackOption) -> &'static str {
    match option {
        StackOption::Planar4M => "2d4",
        StackOption::Sram12M => "3d12",
        StackOption::Dram32M => "3d32",
        StackOption::Dram64M => "3d64",
    }
}

/// The registry name of the memory-side experiment a point depends on —
/// the standard per-benchmark Fig. 5 point, so exploration hits the same
/// cache entries as `stacksim run fig5`.
pub fn mem_point_name(bench: RmsBenchmark) -> String {
    format!("fig5:{}", bench.name())
}

/// The registry name of the thermal-side experiment for one
/// `(option, boundary, vf)` combination. The V/f scale is embedded as
/// its `f64` bit pattern, so distinct-but-close values get distinct
/// names (the registry panics on duplicates).
pub fn thermal_point_name(option: StackOption, boundary: BoundaryChoice, vf: f64) -> String {
    format!(
        "explore:thermal:{}:{}:vf{:016x}",
        option_slug(option),
        boundary.label(),
        vf.to_bits()
    )
}

/// The standard registry extended with every thermal combination of
/// `spec`. The registry is fixed at `Sim` construction, so all
/// combinations are registered up front; random and evolutionary
/// searches simply touch a subset.
pub fn registry_for(spec: &SpaceSpec) -> Registry {
    let mut registry = Registry::standard();
    for &option in &spec.options {
        for &boundary in &spec.boundaries {
            for &vf in &spec.vf {
                registry.add(std::sync::Arc::new(ThermalPointExp::new(
                    option, boundary, vf,
                )));
            }
        }
    }
    registry
}

/// One thermal operating point: the stack of one option solved under
/// one boundary with every power grid scaled by the V/f point's
/// `V² · f` dynamic-power factor. Produces an
/// [`Artifact::ExplorePoint`] with `peak_c` and `power_w`.
#[derive(Debug)]
pub struct ThermalPointExp {
    option: StackOption,
    boundary: BoundaryChoice,
    vf: f64,
    name: String,
}

impl ThermalPointExp {
    /// Builds the experiment for one `(option, boundary, vf)` combo.
    pub fn new(option: StackOption, boundary: BoundaryChoice, vf: f64) -> ThermalPointExp {
        ThermalPointExp {
            option,
            boundary,
            vf,
            name: thermal_point_name(option, boundary, vf),
        }
    }
}

impl Experiment for ThermalPointExp {
    fn name(&self) -> &str {
        &self.name
    }

    fn sensitivity(&self) -> ParamSensitivity {
        // Fixed-input: the result depends only on the combination baked
        // into the experiment, never on the workload parameters.
        ParamSensitivity::none()
    }

    fn params_digest(&self, _params: &WorkloadParams) -> String {
        let cfg = SolverConfig::default();
        let mut d = Digest::new();
        d.u64(EXPLORE_SCHEMA_VERSION)
            .str(&self.name)
            // semantic solver inputs; `threads` is deliberately absent
            // (bit-identical for any value, same as the standard registry)
            .usize(cfg.nx)
            .usize(cfg.ny)
            .usize(cfg.max_iters)
            .f64(cfg.tolerance)
            .str(cfg.preconditioner.label())
            .f64(self.vf)
            .str(self.option.label())
            .str(self.boundary.label());
        d.hex()
    }

    fn run(&self, ctx: &Ctx) -> Result<Artifact, Error> {
        let cfg = ctx.solver_config(
            SolverConfig::builder()
                .threads(ctx.params.solver_threads)
                .build(),
        );
        let power_factor = OperatingPoint::scaled_together(self.vf).power_factor();
        let stack = thermal_stack_scaled(self.option, cfg.nx, power_factor);
        let solution = solve_with_stats(&stack, self.boundary.boundary(), cfg)?;
        ctx.record_solver(solution.stats);
        Ok(Artifact::ExplorePoint {
            metrics: vec![
                ("peak_c".to_string(), solution.field.peak()),
                (
                    "power_w".to_string(),
                    self.option.total_power() * power_factor,
                ),
            ],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_names_are_unique_across_the_default_space() {
        let spec = SpaceSpec::default_space();
        // registry_for panics on duplicate names; reaching here proves
        // uniqueness across all 48 combinations (plus the standard set)
        let registry = registry_for(&spec);
        let explore_names = registry
            .names()
            .iter()
            .filter(|n| n.starts_with("explore:thermal:"))
            .count();
        assert_eq!(explore_names, 4 * 2 * 6);
    }

    #[test]
    fn close_vf_values_get_distinct_names() {
        let a = thermal_point_name(StackOption::Planar4M, BoundaryChoice::Desktop, 1.0);
        let b = thermal_point_name(
            StackOption::Planar4M,
            BoundaryChoice::Desktop,
            1.0 + f64::EPSILON,
        );
        assert_ne!(a, b);
    }

    #[test]
    fn digest_ignores_workload_params_but_tracks_vf() {
        let exp = ThermalPointExp::new(StackOption::Sram12M, BoundaryChoice::Desktop, 1.05);
        let d1 = exp.params_digest(&WorkloadParams::test());
        let d2 = exp.params_digest(&WorkloadParams::paper());
        assert_eq!(d1, d2, "fixed-input experiment");
        let other = ThermalPointExp::new(StackOption::Sram12M, BoundaryChoice::Desktop, 1.10);
        assert_ne!(d1, other.params_digest(&WorkloadParams::test()));
    }

    /// The digest-coverage audit (`SL050`/`SL051`) accepts the whole
    /// explore-extended registry — declarations match digest behaviour.
    #[test]
    fn digest_audit_passes_on_the_extended_registry() {
        let registry = registry_for(&SpaceSpec::default_space());
        let report = stacksim_core::harness::digest_audit(&registry, &WorkloadParams::test());
        assert!(!report.has_errors(), "{}", report.render_pretty());
    }
}
