//! # stacksim-explore
//!
//! Pareto design-space exploration over the embeddable [`Sim`] session
//! API (`stacksim_core::harness`) — the engine behind `stacksim
//! explore`.
//!
//! A [`SpaceSpec`] declares four axes: stack option (cache size ×
//! hierarchy × layer split), benchmark, thermal boundary and V/f point.
//! A [`SearchMode`] walks their cartesian product under a fixed
//! experiment budget — exhaustively (`grid`), by seeded sampling
//! (`random`) or by mutating the running Pareto frontier (`evolve`).
//! Every design point decomposes into two memoized sub-experiments (the
//! standard `fig5:<bench>` memory point and an `explore:thermal:*`
//! operating point), so overlapping configurations deduplicate inside a
//! search and across searches through the shared memo cache.
//!
//! The result is a canonical `stacksim-explore/1` artifact: the
//! evaluated points with their objectives (performance, peak
//! temperature, power), Pareto-frontier membership and a per-axis
//! sensitivity ranking. For a fixed `(spec, mode, budget, seed)` the
//! artifact is **byte-identical** at any `--jobs` and any cache state;
//! execution accounting (cache/dedup hits, CG iterations) is reported
//! alongside in [`ExploreOutcome`], never inside the artifact.
//!
//! ```no_run
//! use stacksim_explore::{run_exploration, ExploreConfig, SpaceSpec};
//! use stacksim_core::harness::MemoCache;
//! use stacksim_workloads::WorkloadParams;
//!
//! let cfg = ExploreConfig::grid(SpaceSpec::default_space());
//! let outcome = run_exploration(&cfg, WorkloadParams::test(), 0, MemoCache::disabled())?;
//! println!("{} frontier points", outcome.frontier_size);
//! # Ok::<(), stacksim_explore::ExploreError>(())
//! ```
//!
//! [`Sim`]: stacksim_core::harness::Sim

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod experiments;
pub mod pareto;
pub mod report;
pub mod search;
pub mod space;

pub use engine::{
    explore, run_exploration, ExploreConfig, ExploreError, ExploreOutcome, EXPLORE_SCHEMA,
};
pub use experiments::{registry_for, ThermalPointExp};
pub use pareto::{dominates, frontier, sensitivities, AxisSensitivity, Objectives};
pub use report::render_report;
pub use search::{Evolver, SearchMode};
pub use space::{BoundaryChoice, PointIdx, SpaceSpec};
