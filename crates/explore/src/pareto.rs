//! Pareto dominance, frontier extraction and per-axis sensitivity.

use crate::space::{PointIdx, SpaceSpec};

/// The three objectives of one evaluated design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Relative performance (frequency-scaled inverse CPMA) — maximized.
    pub perf: f64,
    /// Peak die temperature in °C — minimized.
    pub peak_c: f64,
    /// Total power in W (scaled die power + off-die bus power) —
    /// minimized.
    pub power_w: f64,
}

/// Whether `a` Pareto-dominates `b`: at least as good on every
/// objective, strictly better on at least one.
pub fn dominates(a: &Objectives, b: &Objectives) -> bool {
    let geq = a.perf >= b.perf && a.peak_c <= b.peak_c && a.power_w <= b.power_w;
    let strict = a.perf > b.perf || a.peak_c < b.peak_c || a.power_w < b.power_w;
    geq && strict
}

/// Marks each point's frontier membership: `true` where no other point
/// dominates it. O(n²), which is fine at exploration budgets.
pub fn frontier(points: &[Objectives]) -> Vec<bool> {
    points
        .iter()
        .map(|p| !points.iter().any(|q| dominates(q, p)))
        .collect()
}

/// How strongly one axis drives the objectives: for each objective, the
/// range of per-value group means, normalized by the objective's overall
/// range (0 when the objective does not vary at all). `score` is the
/// mean of the three normalized ranges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AxisSensitivity {
    /// Axis name: `option`, `benchmark`, `boundary` or `vf`.
    pub axis: &'static str,
    /// Mean of the three per-objective normalized ranges.
    pub score: f64,
    /// Normalized range of per-value mean performance.
    pub perf: f64,
    /// Normalized range of per-value mean peak temperature.
    pub peak_c: f64,
    /// Normalized range of per-value mean power.
    pub power_w: f64,
}

/// Axis names in their fixed declaration order (the ranking tie-break).
const AXES: [&str; 4] = ["option", "benchmark", "boundary", "vf"];

/// Per-axis sensitivity over the evaluated points, ranked by descending
/// score; ties keep the fixed axis order. Deterministic: pure
/// arithmetic over the inputs in a fixed order.
pub fn sensitivities(points: &[(PointIdx, Objectives)], spec: &SpaceSpec) -> Vec<AxisSensitivity> {
    let axis_len = [
        spec.options.len(),
        spec.benchmarks.len(),
        spec.boundaries.len(),
        spec.vf.len(),
    ];
    let axis_index = |p: &PointIdx, axis: usize| match axis {
        0 => p.oi,
        1 => p.bi,
        2 => p.di,
        _ => p.vi,
    };
    let objective = |o: &Objectives, k: usize| match k {
        0 => o.perf,
        1 => o.peak_c,
        _ => o.power_w,
    };
    let mut ranked: Vec<AxisSensitivity> = AXES
        .iter()
        .enumerate()
        .map(|(axis, name)| {
            let mut per_objective = [0.0; 3];
            for (k, slot) in per_objective.iter_mut().enumerate() {
                let overall = value_range(points.iter().map(|(_, o)| objective(o, k)));
                if overall <= 0.0 {
                    continue; // the objective does not vary: no signal
                }
                // mean objective per axis value, range across values
                let mut sums = vec![(0.0f64, 0usize); axis_len[axis]];
                for (p, o) in points {
                    let slot = &mut sums[axis_index(p, axis)];
                    slot.0 += objective(o, k);
                    slot.1 += 1;
                }
                let means = sums
                    .iter()
                    .filter(|(_, n)| *n > 0)
                    .map(|(sum, n)| sum / *n as f64);
                *slot = value_range(means) / overall;
            }
            AxisSensitivity {
                axis: name,
                score: per_objective.iter().sum::<f64>() / 3.0,
                perf: per_objective[0],
                peak_c: per_objective[1],
                power_w: per_objective[2],
            }
        })
        .collect();
    // stable sort: equal scores keep the fixed axis order
    ranked.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    ranked
}

/// `max - min` over an iterator of values (0 for empty input).
fn value_range(values: impl Iterator<Item = f64>) -> f64 {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if hi > lo {
        hi - lo
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(perf: f64, peak_c: f64, power_w: f64) -> Objectives {
        Objectives {
            perf,
            peak_c,
            power_w,
        }
    }

    #[test]
    fn dominance_needs_a_strict_edge() {
        assert!(dominates(&o(2.0, 80.0, 100.0), &o(1.0, 90.0, 110.0)));
        assert!(dominates(&o(1.0, 80.0, 100.0), &o(1.0, 90.0, 100.0)));
        // identical points do not dominate each other
        assert!(!dominates(&o(1.0, 80.0, 100.0), &o(1.0, 80.0, 100.0)));
        // trade-offs in both directions: neither dominates
        assert!(!dominates(&o(2.0, 95.0, 100.0), &o(1.0, 80.0, 100.0)));
        assert!(!dominates(&o(1.0, 80.0, 100.0), &o(2.0, 95.0, 100.0)));
    }

    #[test]
    fn frontier_keeps_exactly_the_nondominated() {
        let points = [
            o(2.0, 80.0, 100.0), // frontier: best perf at best temp
            o(1.0, 90.0, 110.0), // dominated by the first
            o(1.5, 75.0, 120.0), // frontier: coolest
            o(2.0, 80.0, 90.0),  // dominates the first on power
        ];
        assert_eq!(frontier(&points), vec![false, false, true, true]);
        // identical duplicates survive together
        let twins = [o(1.0, 1.0, 1.0), o(1.0, 1.0, 1.0)];
        assert_eq!(frontier(&twins), vec![true, true]);
    }

    #[test]
    fn sensitivity_ranks_the_driving_axis_first() {
        let spec = crate::space::SpaceSpec::default_space();
        // perf varies only with oi; temperature only (and more weakly,
        // relative to nothing else moving) with vi
        let points: Vec<(PointIdx, Objectives)> = (0..4)
            .flat_map(|oi| {
                (0..6).map(move |vi| {
                    (
                        PointIdx {
                            oi,
                            bi: 0,
                            di: 0,
                            vi,
                        },
                        o(oi as f64, 80.0 + vi as f64, 100.0),
                    )
                })
            })
            .collect();
        let ranked = sensitivities(&points, &spec);
        assert_eq!(ranked.len(), 4);
        assert_eq!(ranked[0].axis, "option");
        assert_eq!(ranked[1].axis, "vf");
        // power never varies: it contributes no score anywhere
        assert!(ranked.iter().all(|s| s.power_w == 0.0));
        // untouched axes score zero and keep declaration order
        assert_eq!(ranked[2].axis, "benchmark");
        assert_eq!(ranked[3].axis, "boundary");
        assert!((ranked[0].perf - 1.0).abs() < 1e-12);
    }
}
