//! Human-readable rendering of a `stacksim-explore/1` artifact — the
//! `--report` view of the frontier and the sensitivity ranking.

use stacksim_core::harness::json::Json;
use stacksim_core::{fmt_f, TextTable};

use crate::engine::EXPLORE_SCHEMA;

/// Renders the frontier table and sensitivity ranking of an artifact.
///
/// # Errors
///
/// A description of why `artifact_json` is not a valid
/// `stacksim-explore/1` document.
pub fn render_report(artifact_json: &str) -> Result<String, String> {
    let doc = Json::parse(artifact_json).map_err(|e| format!("invalid artifact JSON: {e}"))?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != EXPLORE_SCHEMA {
        return Err(format!(
            "expected schema '{EXPLORE_SCHEMA}', got '{schema}'"
        ));
    }
    let num = |j: &Json, key: &str| {
        j.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("artifact misses numeric '{key}'"))
    };
    let text = |j: &Json, key: &str| {
        j.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("artifact misses string '{key}'"))
    };
    let arr = |key: &str| {
        doc.get(key)
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("artifact misses array '{key}'"))
    };

    let mut frontier = TextTable::new([
        "option", "bench", "boundary", "vf", "perf", "peak C", "power W",
    ]);
    let mut on_frontier = 0usize;
    let points = arr("points")?;
    for p in points {
        if p.get("frontier").and_then(Json::as_bool) != Some(true) {
            continue;
        }
        on_frontier += 1;
        frontier.row([
            text(p, "option")?,
            text(p, "benchmark")?,
            text(p, "boundary")?,
            fmt_f(num(p, "vf")?, 2),
            fmt_f(num(p, "perf")?, 4),
            fmt_f(num(p, "peak_c")?, 2),
            fmt_f(num(p, "power_w")?, 2),
        ]);
    }

    let mut ranking = TextTable::new(["axis", "score", "perf", "peak C", "power W"]);
    for s in arr("sensitivity")? {
        ranking.row([
            text(s, "axis")?,
            fmt_f(num(s, "score")?, 3),
            fmt_f(num(s, "perf")?, 3),
            fmt_f(num(s, "peak_c")?, 3),
            fmt_f(num(s, "power_w")?, 3),
        ]);
    }

    Ok(format!(
        "Pareto frontier ({on_frontier} of {} evaluated, mode {}, seed {}):\n{}\n\
         sensitivity ranking (normalized objective range per axis):\n{}",
        num(&doc, "evaluated")?,
        text(&doc, "mode")?,
        num(&doc, "seed")?,
        frontier.render(),
        ranking.render(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_wrong_schemas_and_garbage() {
        assert!(render_report("{").is_err());
        assert!(render_report("{\"schema\":\"stacksim-obs/1\"}").is_err());
        assert!(render_report("{\"schema\":\"stacksim-explore/1\"}").is_err());
    }
}
