//! Seeded, deterministic point selection: grid, random sampling and a
//! frontier-guided evolutionary search.
//!
//! Everything here is a pure function of `(spec, budget, seed)` plus —
//! for the evolutionary mode — the frontier fed back between waves.
//! Ordered containers (`BTreeSet`, sorted waves) keep iteration order
//! independent of hash seeds and thread schedules, which is what makes
//! the frontier artifact bit-identical at any `--jobs`.

use std::collections::BTreeSet;

use stacksim_rng::StdRng;

use crate::space::{PointIdx, SpaceSpec};

/// How the search walks the space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// The first `budget` points in canonical enumeration order.
    Grid,
    /// A seeded uniform sample without replacement.
    Random,
    /// Wave-based evolution: mutate the current Pareto frontier.
    Evolve,
}

impl SearchMode {
    /// The CLI/JSON label.
    pub fn label(&self) -> &'static str {
        match self {
            SearchMode::Grid => "grid",
            SearchMode::Random => "random",
            SearchMode::Evolve => "evolve",
        }
    }

    /// Parses a [`label`](Self::label) back into a mode.
    pub fn parse(label: &str) -> Option<SearchMode> {
        [SearchMode::Grid, SearchMode::Random, SearchMode::Evolve]
            .into_iter()
            .find(|m| m.label() == label)
    }
}

/// The first `budget` points in canonical order (the whole space when
/// the budget covers it).
pub fn grid_select(spec: &SpaceSpec, budget: usize) -> Vec<PointIdx> {
    (0..spec.total_points().min(budget))
        .map(|n| spec.nth(n))
        .collect()
}

/// A seeded uniform sample of `budget` distinct points (partial
/// Fisher–Yates over the canonical enumeration), returned in canonical
/// order. Same seed, same spec, same budget ⇒ same selection.
pub fn random_select(spec: &SpaceSpec, budget: usize, seed: u64) -> Vec<PointIdx> {
    let total = spec.total_points();
    let take = budget.min(total);
    let mut rng = StdRng::seed_from_u64(seed);
    // sparse Fisher–Yates: only the touched slots of the virtual
    // 0..total permutation are materialized
    let mut swapped: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    let mut picked = Vec::with_capacity(take);
    for i in 0..take {
        let j = rng.gen_range(i..total);
        let at = |k: usize, map: &std::collections::BTreeMap<usize, usize>| {
            map.get(&k).copied().unwrap_or(k)
        };
        let vj = at(j, &swapped);
        let vi = at(i, &swapped);
        swapped.insert(j, vi);
        picked.push(vj);
    }
    picked.sort_unstable();
    picked.into_iter().map(|n| spec.nth(n)).collect()
}

/// Per-axis mutation probability of the evolutionary search.
const MUTATE_P: f64 = 0.35;
/// How many mutation attempts to spend per offspring slot before
/// falling back to a random unseen point.
const MUTATE_TRIES: usize = 8;

/// The evolutionary search's state: a seeded RNG plus the set of points
/// already evaluated (offspring are deduplicated against it).
#[derive(Debug)]
pub struct Evolver {
    rng: StdRng,
    seen: BTreeSet<PointIdx>,
}

impl Evolver {
    /// A fresh evolver; `seed` fixes the whole search trajectory.
    pub fn new(seed: u64) -> Evolver {
        Evolver {
            rng: StdRng::seed_from_u64(seed),
            seen: BTreeSet::new(),
        }
    }

    /// The opening wave: `n` random unseen points, canonically sorted.
    pub fn initial_wave(&mut self, spec: &SpaceSpec, n: usize) -> Vec<PointIdx> {
        let mut wave = BTreeSet::new();
        while wave.len() < n {
            let Some(p) = self.random_unseen(spec) else {
                break;
            };
            self.seen.insert(p);
            wave.insert(p);
        }
        wave.into_iter().collect()
    }

    /// The next wave: up to `n` offspring mutated (±1 per axis with
    /// probability [`MUTATE_P`]) from the current frontier `parents`,
    /// deduplicated against everything already evaluated and topped up
    /// with random unseen points. Canonically sorted. Empty once the
    /// space is exhausted.
    pub fn next_wave(&mut self, spec: &SpaceSpec, parents: &[PointIdx], n: usize) -> Vec<PointIdx> {
        let mut wave = BTreeSet::new();
        for slot in 0..n {
            let mut child = None;
            if !parents.is_empty() {
                let parent = parents[slot % parents.len()];
                for _ in 0..MUTATE_TRIES {
                    let candidate = self.mutate(spec, parent);
                    if !self.seen.contains(&candidate) {
                        child = Some(candidate);
                        break;
                    }
                }
            }
            let Some(p) = child.or_else(|| self.random_unseen(spec)) else {
                break; // space exhausted
            };
            self.seen.insert(p);
            wave.insert(p);
        }
        wave.into_iter().collect()
    }

    /// One offspring: each axis steps ±1 (clamped to the axis) with
    /// probability [`MUTATE_P`].
    fn mutate(&mut self, spec: &SpaceSpec, parent: PointIdx) -> PointIdx {
        let mut child = parent;
        let axes: [(&mut usize, usize); 4] = [
            (&mut child.oi, spec.options.len()),
            (&mut child.bi, spec.benchmarks.len()),
            (&mut child.di, spec.boundaries.len()),
            (&mut child.vi, spec.vf.len()),
        ];
        for (value, len) in axes {
            if len > 1 && self.rng.gen_bool(MUTATE_P) {
                let up = self.rng.gen_bool(0.5);
                *value = if up {
                    (*value + 1).min(len - 1)
                } else {
                    value.saturating_sub(1)
                };
            }
        }
        child
    }

    /// A uniformly random point not yet evaluated, or `None` when the
    /// space is exhausted. Rejection-samples first (cheap while the
    /// space is mostly unexplored), then falls back to a linear scan.
    fn random_unseen(&mut self, spec: &SpaceSpec) -> Option<PointIdx> {
        let total = spec.total_points();
        if self.seen.len() >= total {
            return None;
        }
        for _ in 0..32 {
            let p = spec.nth(self.rng.gen_range(0..total));
            if !self.seen.contains(&p) {
                return Some(p);
            }
        }
        let start = self.rng.gen_range(0..total);
        (0..total)
            .map(|k| spec.nth((start + k) % total))
            .find(|p| !self.seen.contains(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SpaceSpec {
        SpaceSpec::parse(
            r#"{"options": ["2D 4MB", "3D 32MB"],
                "benchmarks": ["conj", "gauss"],
                "boundaries": ["desktop"],
                "vf": [1.0, 1.1]}"#,
        )
        .expect("valid spec")
    }

    #[test]
    fn grid_takes_the_canonical_prefix() {
        let spec = tiny_spec();
        let sel = grid_select(&spec, 3);
        assert_eq!(sel.len(), 3);
        assert_eq!(sel[0], spec.nth(0));
        assert_eq!(sel[2], spec.nth(2));
        // over-budget selection caps at the space size
        assert_eq!(grid_select(&spec, 1000).len(), spec.total_points());
    }

    #[test]
    fn random_is_seeded_distinct_and_sorted() {
        let spec = SpaceSpec::default_space();
        let a = random_select(&spec, 50, 7);
        let b = random_select(&spec, 50, 7);
        assert_eq!(a, b, "same seed, same sample");
        assert_ne!(a, random_select(&spec, 50, 8), "seed changes the sample");
        assert_eq!(a.len(), 50);
        let set: BTreeSet<PointIdx> = a.iter().copied().collect();
        assert_eq!(set.len(), 50, "sampling is without replacement");
        assert!(a.windows(2).all(|w| w[0] < w[1]), "canonically sorted");
        // budget over the space size returns the whole space
        assert_eq!(random_select(&spec, 10_000, 7).len(), spec.total_points());
    }

    #[test]
    fn evolver_is_seeded_and_exhausts_the_space() {
        let spec = tiny_spec();
        let total = spec.total_points();
        let run = |seed: u64| {
            let mut ev = Evolver::new(seed);
            let mut all = ev.initial_wave(&spec, 3);
            while all.len() < total {
                let wave = ev.next_wave(&spec, &all[..2.min(all.len())], 3);
                if wave.is_empty() {
                    break;
                }
                all.extend(wave);
            }
            all
        };
        let a = run(1);
        let b = run(1);
        assert_eq!(a, b, "same seed, same trajectory");
        let set: BTreeSet<PointIdx> = a.iter().copied().collect();
        assert_eq!(set.len(), a.len(), "no point evaluated twice");
        assert_eq!(set.len(), total, "the search can exhaust the space");
        // once exhausted, waves come back empty
        let mut ev = Evolver::new(1);
        let all = ev.initial_wave(&spec, total);
        assert_eq!(all.len(), total);
        assert!(ev.next_wave(&spec, &all, 3).is_empty());
    }

    #[test]
    fn mutation_stays_in_bounds() {
        let spec = tiny_spec();
        let mut ev = Evolver::new(9);
        let corner = PointIdx {
            oi: 1,
            bi: 1,
            di: 0,
            vi: 1,
        };
        for _ in 0..200 {
            let c = ev.mutate(&spec, corner);
            assert!(c.oi < 2 && c.bi < 2 && c.di < 1 && c.vi < 2);
        }
    }
}
