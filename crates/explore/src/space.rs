//! Declarative design spaces — the axes `stacksim explore` sweeps.
//!
//! A [`SpaceSpec`] is four independent axes: stack option (cache size ×
//! hierarchy × layer split), benchmark, thermal boundary and V/f point.
//! The cartesian product is the design space; a point is a tuple of
//! indices into the axes ([`PointIdx`]), and the canonical enumeration
//! order is the nested `option → benchmark → boundary → vf` loop.

use stacksim_core::harness::json::Json;
use stacksim_core::StackOption;
use stacksim_thermal::Boundary;
use stacksim_workloads::RmsBenchmark;

/// Which cooling configuration (Fig. 8's boundary condition set) a
/// design point is solved under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BoundaryChoice {
    /// The desktop heatsink/airflow point.
    Desktop,
    /// The high-performance cooling point.
    Performance,
}

impl BoundaryChoice {
    /// Both boundary choices, in canonical order.
    pub fn all() -> [BoundaryChoice; 2] {
        [BoundaryChoice::Desktop, BoundaryChoice::Performance]
    }

    /// The stable label used in specs, artifacts and experiment names.
    pub fn label(&self) -> &'static str {
        match self {
            BoundaryChoice::Desktop => "desktop",
            BoundaryChoice::Performance => "performance",
        }
    }

    /// Parses a [`label`](Self::label) back into a choice.
    pub fn parse(label: &str) -> Option<BoundaryChoice> {
        BoundaryChoice::all()
            .into_iter()
            .find(|b| b.label() == label)
    }

    /// The thermal solver boundary this choice denotes.
    pub fn boundary(&self) -> Boundary {
        match self {
            BoundaryChoice::Desktop => Boundary::desktop(),
            BoundaryChoice::Performance => Boundary::performance(),
        }
    }
}

/// One design point as indices into a [`SpaceSpec`]'s axes. `Ord` is the
/// canonical enumeration order (lexicographic on the tuple).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PointIdx {
    /// Index into [`SpaceSpec::options`].
    pub oi: usize,
    /// Index into [`SpaceSpec::benchmarks`].
    pub bi: usize,
    /// Index into [`SpaceSpec::boundaries`].
    pub di: usize,
    /// Index into [`SpaceSpec::vf`].
    pub vi: usize,
}

/// A declarative parameter space: the four axes the search sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceSpec {
    /// Stack options (cache size × hierarchy × layer split).
    pub options: Vec<StackOption>,
    /// RMS benchmarks driving the memory side.
    pub benchmarks: Vec<RmsBenchmark>,
    /// Thermal boundary configurations.
    pub boundaries: Vec<BoundaryChoice>,
    /// Relative V/f scale factors (1.0 = nominal; Vcc and frequency
    /// scale together, Table 5's 1:1 relation).
    pub vf: Vec<f64>,
}

/// The default V/f sweep around nominal.
const DEFAULT_VF: [f64; 6] = [0.85, 0.90, 0.95, 1.00, 1.05, 1.10];

impl SpaceSpec {
    /// The built-in full space: every stack option × all twelve
    /// benchmarks × both boundaries × six V/f points — 576 designs.
    pub fn default_space() -> SpaceSpec {
        SpaceSpec {
            options: StackOption::all().to_vec(),
            benchmarks: RmsBenchmark::all().to_vec(),
            boundaries: BoundaryChoice::all().to_vec(),
            vf: DEFAULT_VF.to_vec(),
        }
    }

    /// Total number of design points (the axes' cartesian product).
    pub fn total_points(&self) -> usize {
        self.options.len() * self.benchmarks.len() * self.boundaries.len() * self.vf.len()
    }

    /// The `n`-th point in canonical enumeration order.
    ///
    /// # Panics
    ///
    /// Panics if `n >= total_points()`.
    pub fn nth(&self, n: usize) -> PointIdx {
        assert!(n < self.total_points(), "point index out of range");
        let nv = self.vf.len();
        let nd = self.boundaries.len();
        let nb = self.benchmarks.len();
        PointIdx {
            oi: n / (nb * nd * nv),
            bi: n / (nd * nv) % nb,
            di: n / nv % nd,
            vi: n % nv,
        }
    }

    /// Checks the axes are non-empty, duplicate-free and physical.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.options.is_empty()
            || self.benchmarks.is_empty()
            || self.boundaries.is_empty()
            || self.vf.is_empty()
        {
            return Err("every axis needs at least one value".to_string());
        }
        for (axis, dup) in [
            ("options", has_dup(&self.options)),
            ("benchmarks", has_dup(&self.benchmarks)),
            ("boundaries", has_dup(&self.boundaries)),
        ] {
            if dup {
                return Err(format!("duplicate value on the '{axis}' axis"));
            }
        }
        for &vf in &self.vf {
            if !vf.is_finite() || vf <= 0.0 {
                return Err(format!("vf values must be finite and positive, got {vf}"));
            }
        }
        if self
            .vf
            .iter()
            .any(|a| self.vf.iter().filter(|b| a == *b).count() > 1)
        {
            return Err("duplicate value on the 'vf' axis".to_string());
        }
        Ok(())
    }

    /// Parses a JSON spec. Every axis is optional and defaults to the
    /// built-in full axis; `vf` accepts either an explicit array or a
    /// linear ramp `{"min": .., "max": .., "steps": N}`.
    ///
    /// # Errors
    ///
    /// A description of the malformed field. The parsed spec is also
    /// [`validate`](Self::validate)d.
    pub fn parse(text: &str) -> Result<SpaceSpec, String> {
        let doc = Json::parse(text).map_err(|e| format!("invalid JSON spec: {e}"))?;
        let mut spec = SpaceSpec::default_space();
        if let Some(v) = doc.get("options") {
            spec.options = str_axis(v, "options", |label| {
                StackOption::all().into_iter().find(|o| o.label() == label)
            })?;
        }
        if let Some(v) = doc.get("benchmarks") {
            spec.benchmarks = str_axis(v, "benchmarks", |name| {
                RmsBenchmark::all().into_iter().find(|b| b.name() == name)
            })?;
        }
        if let Some(v) = doc.get("boundaries") {
            spec.boundaries = str_axis(v, "boundaries", BoundaryChoice::parse)?;
        }
        if let Some(v) = doc.get("vf") {
            spec.vf = parse_vf(v)?;
        }
        spec.validate()?;
        Ok(spec)
    }

    /// The spec's JSON form, embedded verbatim in the frontier artifact.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "options",
                Json::Arr(
                    self.options
                        .iter()
                        .map(|o| Json::Str(o.label().to_string()))
                        .collect(),
                ),
            ),
            (
                "benchmarks",
                Json::Arr(
                    self.benchmarks
                        .iter()
                        .map(|b| Json::Str(b.name().to_string()))
                        .collect(),
                ),
            ),
            (
                "boundaries",
                Json::Arr(
                    self.boundaries
                        .iter()
                        .map(|d| Json::Str(d.label().to_string()))
                        .collect(),
                ),
            ),
            ("vf", Json::nums(self.vf.iter().copied())),
        ])
    }
}

fn has_dup<T: PartialEq>(values: &[T]) -> bool {
    values
        .iter()
        .enumerate()
        .any(|(i, a)| values[..i].contains(a))
}

/// Decodes a JSON array of labels through `lookup`.
fn str_axis<T>(v: &Json, axis: &str, lookup: impl Fn(&str) -> Option<T>) -> Result<Vec<T>, String> {
    let arr = v
        .as_arr()
        .ok_or_else(|| format!("'{axis}' must be an array of strings"))?;
    arr.iter()
        .map(|item| {
            let label = item
                .as_str()
                .ok_or_else(|| format!("'{axis}' must be an array of strings"))?;
            lookup(label).ok_or_else(|| format!("unknown value '{label}' on the '{axis}' axis"))
        })
        .collect()
}

/// Decodes the `vf` axis: an explicit array or a `{min,max,steps}` ramp.
fn parse_vf(v: &Json) -> Result<Vec<f64>, String> {
    if let Some(arr) = v.as_arr() {
        return arr
            .iter()
            .map(|x| {
                x.as_f64()
                    .ok_or_else(|| "'vf' entries must be numbers".to_string())
            })
            .collect();
    }
    let field = |k: &str| {
        v.get(k)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("'vf' ramp needs a numeric '{k}'"))
    };
    let (min, max) = (field("min")?, field("max")?);
    let steps = field("steps")? as usize;
    if steps < 2 || !(min.is_finite() && max.is_finite()) || min >= max {
        return Err("'vf' ramp needs min < max and steps >= 2".to_string());
    }
    Ok((0..steps)
        .map(|i| min + (max - min) * i as f64 / (steps - 1) as f64)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_space_has_576_points_and_validates() {
        let spec = SpaceSpec::default_space();
        assert_eq!(spec.total_points(), 4 * 12 * 2 * 6);
        spec.validate().expect("default space is valid");
    }

    #[test]
    fn nth_enumerates_the_nested_loop_order() {
        let spec = SpaceSpec::default_space();
        assert_eq!(
            spec.nth(0),
            PointIdx {
                oi: 0,
                bi: 0,
                di: 0,
                vi: 0
            }
        );
        assert_eq!(
            spec.nth(1),
            PointIdx {
                oi: 0,
                bi: 0,
                di: 0,
                vi: 1
            }
        );
        assert_eq!(
            spec.nth(6),
            PointIdx {
                oi: 0,
                bi: 0,
                di: 1,
                vi: 0
            }
        );
        assert_eq!(
            spec.nth(12),
            PointIdx {
                oi: 0,
                bi: 1,
                di: 0,
                vi: 0
            }
        );
        assert_eq!(
            spec.nth(144),
            PointIdx {
                oi: 1,
                bi: 0,
                di: 0,
                vi: 0
            }
        );
        let last = spec.nth(575);
        assert_eq!(
            last,
            PointIdx {
                oi: 3,
                bi: 11,
                di: 1,
                vi: 5
            }
        );
        // enumeration is strictly increasing in PointIdx order
        let points: Vec<PointIdx> = (0..spec.total_points()).map(|n| spec.nth(n)).collect();
        assert!(points.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn parse_accepts_partial_specs_and_ramps() {
        let spec = SpaceSpec::parse(
            r#"{"options": ["2D 4MB", "3D 32MB"],
                "benchmarks": ["conj", "gauss"],
                "boundaries": ["desktop"],
                "vf": {"min": 0.9, "max": 1.1, "steps": 3}}"#,
        )
        .expect("parses");
        assert_eq!(
            spec.options,
            vec![StackOption::Planar4M, StackOption::Dram32M]
        );
        assert_eq!(
            spec.benchmarks,
            vec![RmsBenchmark::Conj, RmsBenchmark::Gauss]
        );
        assert_eq!(spec.boundaries, vec![BoundaryChoice::Desktop]);
        assert_eq!(spec.vf, vec![0.9, 1.0, 1.1]);
        assert_eq!(spec.total_points(), 2 * 2 * 3);
        // omitted axes fall back to the full default axis
        let spec = SpaceSpec::parse(r#"{"benchmarks": ["svm"]}"#).expect("parses");
        assert_eq!(spec.options.len(), 4);
        assert_eq!(spec.vf.len(), 6);
    }

    #[test]
    fn parse_rejects_bad_specs() {
        for (spec, why) in [
            (r#"{"options": ["5D 1GB"]}"#, "unknown option"),
            (r#"{"benchmarks": []}"#, "empty axis"),
            (r#"{"vf": [0.0]}"#, "non-positive vf"),
            (r#"{"vf": [1.0, 1.0]}"#, "duplicate vf"),
            (
                r#"{"vf": {"min": 1.2, "max": 0.8, "steps": 3}}"#,
                "inverted ramp",
            ),
            (
                r#"{"boundaries": ["desktop", "desktop"]}"#,
                "duplicate boundary",
            ),
            ("{", "bad JSON"),
        ] {
            assert!(SpaceSpec::parse(spec).is_err(), "{why} must be rejected");
        }
    }

    #[test]
    fn spec_json_round_trips() {
        let spec = SpaceSpec::default_space();
        let encoded = Json::obj(vec![("spec", spec.to_json())]).encode();
        let reparsed = SpaceSpec::parse(
            &Json::parse(&encoded)
                .expect("valid")
                .get("spec")
                .expect("spec")
                .encode(),
        )
        .expect("round-trips");
        assert_eq!(reparsed, spec);
    }
}
