//! Deterministic fault injection for chaos testing the harness.
//!
//! A [`FaultPlan`] names *sites* (stable strings like `harness.cache.load`
//! or `thermal.cg`, declared by the instrumented crates) and describes
//! which evaluations of each site should fail, keyed by the site's
//! *key* — the experiment name at harness sites, the preconditioner label
//! at solver sites. Instrumented code asks [`check`] at each site; the
//! decision depends only on the plan, the key and the per-(rule, key)
//! evaluation count, never on wall-clock time or thread interleaving, so
//! the same plan and seed reproduce the same fault schedule run after run.
//!
//! The plane is compiled in always but zero-cost when no plan is armed:
//! [`armed`] is a single relaxed atomic load, and every injection point
//! guards its [`check`] call with it.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Schema tag of the fault-plan JSON document.
pub const SCHEMA: &str = "stacksim-faults/1";

/// Observability instruments of the fault plane (SL060 contract).
pub mod obs {
    /// Component tag of every instrument the fault plane owns.
    pub const COMPONENT: &str = "faults";
    /// Faults actually injected (fired rules, not mere evaluations).
    pub const INJECTED: &str = "faults.injected";
    /// Every instrument name the fault plane may register.
    pub const NAMES: &[&str] = &[INJECTED];
}

/// What an injection site is told to do when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Make the cache entry undecodable (in memory — the file on disk is
    /// untouched, so the quarantine path has something real to move).
    Corrupt,
    /// Present the cache entry as a 0-byte file.
    Truncate,
    /// Fail with a transient I/O error (retryable).
    IoTransient,
    /// Force the solver to report CG non-convergence.
    NoConvergence,
    /// Sleep before proceeding (a slow-solve stall; not an error).
    Stall {
        /// Stall duration in milliseconds.
        ms: u64,
    },
    /// Panic inside the instrumented code (caught by the runner's
    /// `catch_unwind` and surfaced as a worker panic).
    Panic,
}

impl Fault {
    /// Stable lowercase label, used by plan JSON and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Fault::Corrupt => "corrupt",
            Fault::Truncate => "truncate",
            Fault::IoTransient => "io-transient",
            Fault::NoConvergence => "no-convergence",
            Fault::Stall { .. } => "stall",
            Fault::Panic => "panic",
        }
    }

    /// Parses a plan-JSON kind label; `ms` is only used by `stall`.
    #[must_use]
    pub fn parse(kind: &str, ms: u64) -> Option<Fault> {
        match kind {
            "corrupt" => Some(Fault::Corrupt),
            "truncate" => Some(Fault::Truncate),
            "io-transient" => Some(Fault::IoTransient),
            "no-convergence" => Some(Fault::NoConvergence),
            "stall" => Some(Fault::Stall { ms }),
            "panic" => Some(Fault::Panic),
            _ => None,
        }
    }
}

/// One injection rule: which site, which keys, what to inject, and on
/// which matching evaluations to fire.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// The declared site name (e.g. `harness.cache.load`).
    pub site: String,
    /// Key pattern: empty matches every key, a trailing `*` matches by
    /// prefix, anything else matches exactly.
    pub key: String,
    /// What to inject when the rule fires.
    pub fault: Fault,
    /// Fire on at most this many matching evaluations; `None` fires on
    /// every one.
    pub times: Option<u64>,
    /// Skip this many matching evaluations before firing.
    pub after: u64,
    /// Fire pseudo-randomly with this probability instead of the
    /// `after`/`times` window. Deterministic: the decision hashes the
    /// plan seed, site, key and evaluation index.
    pub prob: Option<f64>,
}

impl FaultRule {
    /// A rule that always fires `fault` at `site` for keys matching `key`.
    pub fn always(site: impl Into<String>, key: impl Into<String>, fault: Fault) -> Self {
        FaultRule {
            site: site.into(),
            key: key.into(),
            fault,
            times: None,
            after: 0,
            prob: None,
        }
    }

    /// The same rule limited to the first `times` matching evaluations.
    #[must_use]
    pub fn times(mut self, times: u64) -> Self {
        self.times = Some(times);
        self
    }

    fn matches(&self, site: &str, key: &str) -> bool {
        if self.site != site {
            return false;
        }
        if self.key.is_empty() {
            return true;
        }
        match self.key.strip_suffix('*') {
            Some(prefix) => key.starts_with(prefix),
            None => self.key == key,
        }
    }
}

/// A complete fault schedule: a seed (for probabilistic rules) plus the
/// rule list, evaluated in order — the first firing rule wins.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for probabilistic rules; irrelevant to windowed rules.
    pub seed: u64,
    /// Rules, evaluated in order.
    pub rules: Vec<FaultRule>,
}

struct Armed {
    plan: FaultPlan,
    /// Evaluation counts per (rule index, concrete key). Keying by the
    /// concrete key makes the schedule independent of how experiments
    /// interleave across worker threads: each key sees its own
    /// deterministic evaluation stream.
    evals: HashMap<(usize, String), u64>,
    injected: u64,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<Armed>> = Mutex::new(None);

fn lock_state() -> std::sync::MutexGuard<'static, Option<Armed>> {
    STATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Whether a fault plan is armed. A single relaxed atomic load — the
/// entire cost of the fault plane when nothing is armed.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arms a plan process-wide, resetting all evaluation counters.
pub fn arm(plan: FaultPlan) {
    let mut st = lock_state();
    *st = Some(Armed {
        plan,
        evals: HashMap::new(),
        injected: 0,
    });
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarms the plane; subsequent [`check`] calls are free and return
/// `None`.
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
    *lock_state() = None;
}

/// Faults injected (rules fired) since the current plan was armed.
pub fn injected_total() -> u64 {
    lock_state().as_ref().map_or(0, |s| s.injected)
}

/// FNV-1a over the seed, site, key and evaluation index, folded to a
/// fraction in `[0, 1)` — the deterministic coin for probabilistic rules.
fn fraction(seed: u64, site: &str, key: &str, idx: u64) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&seed.to_le_bytes());
    eat(site.as_bytes());
    eat(&[0xff]);
    eat(key.as_bytes());
    eat(&idx.to_le_bytes());
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Asks the armed plan whether this evaluation of `site` with `key`
/// should fail, and how. Counts the evaluation against every matching
/// rule; the first rule whose window (or coin) says "fire" wins. Returns
/// `None` when no plan is armed or no rule fires.
pub fn check(site: &str, key: &str) -> Option<Fault> {
    if !armed() {
        return None;
    }
    let mut guard = lock_state();
    let st = guard.as_mut()?;
    let mut fired = None;
    for (i, rule) in st.plan.rules.iter().enumerate() {
        if !rule.matches(site, key) {
            continue;
        }
        let n = st.evals.entry((i, key.to_string())).or_insert(0);
        let idx = *n;
        *n += 1;
        if fired.is_some() {
            continue; // keep counting evaluations on shadowed rules
        }
        let fire = match rule.prob {
            Some(p) => fraction(st.plan.seed, site, key, idx) < p,
            None => {
                idx >= rule.after
                    && rule
                        .times
                        .is_none_or(|t| idx < rule.after.saturating_add(t))
            }
        };
        if fire {
            fired = Some(rule.fault);
        }
    }
    if fired.is_some() {
        st.injected += 1;
        if stacksim_obs::enabled() {
            stacksim_obs::counter(obs::INJECTED).inc();
        }
    }
    fired
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Process-global plan state: tests in this module must not overlap.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn unarmed_checks_are_none_and_cheap() {
        let _g = serial();
        disarm();
        assert!(!armed());
        assert_eq!(check("harness.dispatch", "fig3"), None);
        assert_eq!(injected_total(), 0);
    }

    #[test]
    fn windowed_rule_fires_exactly_in_its_window() {
        let _g = serial();
        let mut rule = FaultRule::always("s", "k", Fault::Panic).times(2);
        rule.after = 1;
        arm(FaultPlan {
            seed: 0,
            rules: vec![rule],
        });
        assert_eq!(check("s", "k"), None); // eval 0: before window
        assert_eq!(check("s", "k"), Some(Fault::Panic)); // eval 1
        assert_eq!(check("s", "k"), Some(Fault::Panic)); // eval 2
        assert_eq!(check("s", "k"), None); // eval 3: exhausted
        assert_eq!(injected_total(), 2);
        disarm();
    }

    #[test]
    fn keys_count_independently_so_scheduling_cannot_reorder_decisions() {
        let _g = serial();
        arm(FaultPlan {
            seed: 0,
            rules: vec![FaultRule::always("s", "", Fault::Corrupt).times(1)],
        });
        // interleaved keys: each key's first evaluation fires regardless
        // of the order other keys were evaluated in
        assert_eq!(check("s", "a"), Some(Fault::Corrupt));
        assert_eq!(check("s", "b"), Some(Fault::Corrupt));
        assert_eq!(check("s", "a"), None);
        assert_eq!(check("s", "b"), None);
        disarm();
    }

    #[test]
    fn key_patterns_match_exact_prefix_and_any() {
        let r = FaultRule::always("s", "fig5:*", Fault::Truncate);
        assert!(r.matches("s", "fig5:gauss"));
        assert!(!r.matches("s", "fig3"));
        assert!(!r.matches("other", "fig5:gauss"));
        let exact = FaultRule::always("s", "fig3", Fault::Truncate);
        assert!(exact.matches("s", "fig3"));
        assert!(!exact.matches("s", "fig3x"));
        let any = FaultRule::always("s", "", Fault::Truncate);
        assert!(any.matches("s", "anything"));
    }

    #[test]
    fn probabilistic_rules_are_deterministic_in_the_seed() {
        let _g = serial();
        let plan = |seed| FaultPlan {
            seed,
            rules: vec![FaultRule {
                site: "s".into(),
                key: String::new(),
                fault: Fault::IoTransient,
                times: None,
                after: 0,
                prob: Some(0.5),
            }],
        };
        let sample = |seed| {
            arm(plan(seed));
            let fired: Vec<bool> = (0..64).map(|_| check("s", "k").is_some()).collect();
            disarm();
            fired
        };
        let a = sample(7);
        let b = sample(7);
        assert_eq!(a, b, "same seed must reproduce the same schedule");
        assert!(a.iter().any(|&f| f) && a.iter().any(|&f| !f));
        let c = sample(8);
        assert_ne!(a, c, "a different seed should move the schedule");
    }

    #[test]
    fn first_matching_rule_wins_but_later_rules_still_count() {
        let _g = serial();
        arm(FaultPlan {
            seed: 0,
            rules: vec![
                FaultRule::always("s", "k", Fault::Corrupt).times(1),
                FaultRule::always("s", "k", Fault::Truncate).times(1),
            ],
        });
        // eval 0 fires rule 0; rule 1's window was consumed by the same
        // evaluation, so nothing fires on eval 1
        assert_eq!(check("s", "k"), Some(Fault::Corrupt));
        assert_eq!(check("s", "k"), None);
        disarm();
    }

    #[test]
    fn fault_labels_round_trip_through_parse() {
        for f in [
            Fault::Corrupt,
            Fault::Truncate,
            Fault::IoTransient,
            Fault::NoConvergence,
            Fault::Stall { ms: 5 },
            Fault::Panic,
        ] {
            assert_eq!(Fault::parse(f.label(), 5), Some(f));
        }
        assert_eq!(Fault::parse("nonesuch", 0), None);
    }
}
