//! Named functional blocks with power budgets.

use crate::geom::Rect;

/// A functional block of the microarchitecture: a named rectangle with a
/// power budget, e.g. the FP unit, the scheduler, or the L2 array.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    name: String,
    rect: Rect,
    power: f64,
}

impl Block {
    /// Creates a block.
    ///
    /// # Panics
    ///
    /// Panics if `power` is negative or not finite.
    pub fn new(name: impl Into<String>, rect: Rect, power: f64) -> Self {
        assert!(
            power >= 0.0 && power.is_finite(),
            "block power must be non-negative"
        );
        Block {
            name: name.into(),
            rect,
            power,
        }
    }

    /// The block's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The block's placement.
    pub fn rect(&self) -> &Rect {
        &self.rect
    }

    /// The block's power in watts.
    pub fn power(&self) -> f64 {
        self.power
    }

    /// Power density in W/mm².
    pub fn power_density(&self) -> f64 {
        self.power / self.rect.area()
    }

    /// Returns the block moved to a new position (same size, name, power).
    pub fn placed_at(&self, x: f64, y: f64) -> Block {
        Block {
            rect: Rect::new(x, y, self.rect.w, self.rect.h),
            ..self.clone()
        }
    }

    /// Returns the block with its power scaled by `factor` (e.g. voltage
    /// scaling or the 3D wire-power reduction).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative.
    pub fn with_power_scaled(&self, factor: f64) -> Block {
        assert!(factor >= 0.0, "power scale factor must be non-negative");
        Block {
            power: self.power * factor,
            ..self.clone()
        }
    }

    /// Splits the block horizontally at fraction `f` of its height,
    /// returning the bottom and top parts with power split by area.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not strictly between 0 and 1.
    pub fn split_at(&self, f: f64) -> (Block, Block) {
        assert!(f > 0.0 && f < 1.0, "split fraction must be in (0, 1)");
        let bottom_h = self.rect.h * f;
        let bottom = Block {
            name: format!("{}.lo", self.name),
            rect: Rect::new(self.rect.x, self.rect.y, self.rect.w, bottom_h),
            power: self.power * f,
        };
        let top = Block {
            name: format!("{}.hi", self.name),
            rect: Rect::new(
                self.rect.x,
                self.rect.y + bottom_h,
                self.rect.w,
                self.rect.h - bottom_h,
            ),
            power: self.power * (1.0 - f),
        };
        (bottom, top)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_is_power_over_area() {
        let b = Block::new("fp", Rect::new(0.0, 0.0, 2.0, 2.0), 8.0);
        assert_eq!(b.power_density(), 2.0);
    }

    #[test]
    fn split_conserves_power_and_area() {
        let b = Block::new("dcache", Rect::new(1.0, 1.0, 4.0, 2.0), 6.0);
        let (lo, hi) = b.split_at(0.25);
        assert!((lo.power() + hi.power() - 6.0).abs() < 1e-12);
        assert!((lo.rect().area() + hi.rect().area() - 8.0).abs() < 1e-12);
        assert_eq!(lo.rect().y1(), hi.rect().y);
        assert!(lo.name().ends_with(".lo"));
        assert!(hi.name().ends_with(".hi"));
    }

    #[test]
    fn power_scaling() {
        let b = Block::new("alu", Rect::new(0.0, 0.0, 1.0, 1.0), 10.0);
        assert_eq!(b.with_power_scaled(0.85).power(), 8.5);
    }

    #[test]
    fn placed_at_moves_without_resizing() {
        let b = Block::new("rs", Rect::new(0.0, 0.0, 2.0, 3.0), 5.0);
        let m = b.placed_at(4.0, 5.0);
        assert_eq!(m.rect().x, 4.0);
        assert_eq!(m.rect().w, 2.0);
        assert_eq!(m.power(), 5.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_power_panics() {
        let _ = Block::new("bad", Rect::new(0.0, 0.0, 1.0, 1.0), -1.0);
    }
}
