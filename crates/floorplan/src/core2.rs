//! The Intel Core 2 Duo–class baseline floorplan of Fig. 4 / Fig. 6.
//!
//! Die: 13 × 11 mm (143 mm²). The shared 4 MB L2 occupies the bottom half
//! (the paper: "the 4MB L2 cache in the baseline occupies approximately 50%
//! of the total die size"); two mirrored cores sit on the top half. The
//! hottest blocks are the FP units, reservation stations and load/store
//! units, as called out in Fig. 6(b).

use crate::block::Block;
use crate::floorplan::Floorplan;
use crate::geom::Rect;

/// Die width in mm.
pub const DIE_W: f64 = 13.0;
/// Die height in mm.
pub const DIE_H: f64 = 11.0;
/// Power of the 4 MB SRAM L2 (§3: "4MB of SRAM consume 7W").
pub const L2_POWER: f64 = 7.0;
/// Power of the off-die bus interface block.
pub const BUS_POWER: f64 = 1.0;

/// Relative power weights of the per-core blocks (name, x, y, w, h, weight),
/// in core-local coordinates on a 6.5 × 5.5 mm core.
const CORE_BLOCKS: &[(&str, f64, f64, f64, f64, f64)] = &[
    // bottom row (y 0..1.8): memory pipeline
    ("ldst", 0.0, 0.0, 2.2, 1.8, 6.0),
    ("l1d", 2.2, 0.0, 2.3, 1.8, 2.0),
    ("tlb", 4.5, 0.0, 2.0, 1.8, 1.0),
    // middle row (y 1.8..3.5): execution
    ("rs", 0.0, 1.8, 1.5, 1.7, 5.5),
    ("alu", 1.5, 1.8, 1.5, 1.7, 4.5),
    ("fp", 3.0, 1.8, 1.8, 1.7, 7.5),
    ("simd", 4.8, 1.8, 1.7, 1.7, 3.5),
    // top row (y 3.5..5.5): front end
    ("l1i", 0.0, 3.5, 2.0, 2.0, 1.5),
    ("decode", 2.0, 3.5, 1.5, 2.0, 3.0),
    ("bpu", 3.5, 3.5, 1.0, 2.0, 1.2),
    ("rob", 4.5, 3.5, 2.0, 2.0, 2.8),
];

/// Builds the baseline dual-core floorplan with the given total die power.
/// The L2 consumes its fixed 7 W and the bus interface 1 W; the remainder is
/// distributed over the two cores according to the per-block weights.
///
/// # Panics
///
/// Panics if `total_power` does not leave positive power for the cores.
pub fn core2_duo(total_power: f64) -> Floorplan {
    let core_power = total_power - L2_POWER - BUS_POWER;
    assert!(
        core_power > 0.0,
        "total power must exceed the cache and bus power"
    );
    let weight_sum: f64 = CORE_BLOCKS.iter().map(|b| b.5).sum::<f64>() * 2.0;

    let mut f = Floorplan::new("core2-duo", DIE_W, DIE_H);
    // bottom half: L2 (12 mm wide) + bus interface (1 mm)
    f.push(Block::new("l2", Rect::new(0.0, 0.0, 12.0, 5.5), L2_POWER));
    f.push(Block::new(
        "busif",
        Rect::new(12.0, 0.0, 1.0, 5.5),
        BUS_POWER,
    ));
    // two mirrored cores on the top half
    for core in 0..2 {
        for &(name, x, y, w, h, weight) in CORE_BLOCKS {
            let (gx, gy) = if core == 0 {
                (x, 5.5 + y)
            } else {
                // mirror across the vertical centre line
                (DIE_W - x - w, 5.5 + y)
            };
            let power = core_power * weight / weight_sum;
            f.push(Block::new(
                format!("core{core}.{name}"),
                Rect::new(gx, gy, w, h),
                power,
            ));
        }
    }
    debug_assert!(f.validate().is_ok());
    f
}

/// The 92 W skew used for the Fig. 6 / Fig. 8 thermal analysis.
pub fn core2_duo_92w() -> Floorplan {
    core2_duo(92.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_legal_and_sums_to_total() {
        let f = core2_duo_92w();
        f.validate().unwrap();
        assert!((f.total_power() - 92.0).abs() < 1e-9);
        assert_eq!(f.width(), 13.0);
        assert_eq!(f.height(), 11.0);
    }

    #[test]
    fn l2_occupies_about_half_the_die() {
        let f = core2_duo_92w();
        let l2 = f.block("l2").unwrap();
        let frac = l2.rect().area() / f.area();
        assert!(frac > 0.45 && frac < 0.5, "L2 fraction {frac}");
    }

    #[test]
    fn hotspots_are_fp_rs_ldst() {
        let f = core2_duo_92w();
        let mut by_density: Vec<_> = f.blocks().iter().collect();
        by_density.sort_by(|a, b| b.power_density().partial_cmp(&a.power_density()).unwrap());
        let top: Vec<&str> = by_density[..6]
            .iter()
            .map(|b| b.name().split('.').next_back().unwrap())
            .collect();
        for hot in ["fp", "rs"] {
            assert!(
                top.contains(&hot),
                "{hot} must be among the hottest, got {top:?}"
            );
        }
        // load/store is hotter than any cache array
        let ldst = f.block("core0.ldst").unwrap().power_density();
        let l2 = f.block("l2").unwrap().power_density();
        assert!(ldst > 5.0 * l2);
    }

    #[test]
    fn cores_are_mirrored() {
        let f = core2_duo_92w();
        let fp0 = f.block("core0.fp").unwrap().rect().center().0;
        let fp1 = f.block("core1.fp").unwrap().rect().center().0;
        assert!(
            (fp0 + fp1 - DIE_W).abs() < 1e-9,
            "mirrored about the centre line"
        );
    }

    #[test]
    fn die_is_fully_tiled() {
        let f = core2_duo_92w();
        assert!(
            (f.utilisation() - 1.0).abs() < 1e-9,
            "utilisation {}",
            f.utilisation()
        );
    }

    #[test]
    fn cache_is_much_cooler_than_cores() {
        let g = core2_duo_92w().power_grid(26, 22);
        // peak density (in a core) must far exceed the mean
        assert!(g.peak_density() > 2.0 * g.mean_density());
    }
}
