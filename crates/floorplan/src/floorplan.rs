//! A single die's floorplan: a frame plus non-overlapping blocks.

use std::fmt;

use crate::block::Block;
use crate::geom::Rect;
use crate::grid::PowerGrid;

const EPS_AREA: f64 = 1e-6;

/// A planar floorplan: die dimensions plus placed blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    name: String,
    width: f64,
    height: f64,
    blocks: Vec<Block>,
}

/// A floorplan legality violation.
#[derive(Debug, Clone, PartialEq)]
pub enum FloorplanError {
    /// A block extends beyond the die frame.
    OutOfBounds {
        /// The offending block's name.
        block: String,
    },
    /// Two blocks overlap.
    Overlap {
        /// First block name.
        a: String,
        /// Second block name.
        b: String,
        /// Overlap area in mm².
        area: f64,
    },
}

impl fmt::Display for FloorplanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FloorplanError::OutOfBounds { block } => {
                write!(f, "block '{block}' extends beyond the die frame")
            }
            FloorplanError::Overlap { a, b, area } => {
                write!(f, "blocks '{a}' and '{b}' overlap by {area:.3} mm^2")
            }
        }
    }
}

impl std::error::Error for FloorplanError {}

impl Floorplan {
    /// Creates an empty floorplan of the given die size (mm).
    ///
    /// # Panics
    ///
    /// Panics if a dimension is not positive.
    pub fn new(name: impl Into<String>, width: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && height > 0.0,
            "die dimensions must be positive"
        );
        Floorplan {
            name: name.into(),
            width,
            height,
            blocks: Vec::new(),
        }
    }

    /// The floorplan's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Die width in mm.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Die height in mm.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Die area in mm².
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// Adds a block.
    pub fn push(&mut self, block: Block) {
        self.blocks.push(block);
    }

    /// The blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Looks a block up by name.
    pub fn block(&self, name: &str) -> Option<&Block> {
        self.blocks.iter().find(|b| b.name() == name)
    }

    /// Total power of all blocks in watts.
    pub fn total_power(&self) -> f64 {
        self.blocks.iter().map(Block::power).sum()
    }

    /// Checks that every block is inside the frame and no two overlap.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), FloorplanError> {
        let frame = Rect::new(0.0, 0.0, self.width, self.height);
        for b in &self.blocks {
            if !frame.contains(b.rect(), 1e-6) {
                return Err(FloorplanError::OutOfBounds {
                    block: b.name().to_string(),
                });
            }
        }
        for (i, a) in self.blocks.iter().enumerate() {
            for b in &self.blocks[i + 1..] {
                let area = a.rect().overlap_area(b.rect());
                if area > EPS_AREA {
                    return Err(FloorplanError::Overlap {
                        a: a.name().to_string(),
                        b: b.name().to_string(),
                        area,
                    });
                }
            }
        }
        Ok(())
    }

    /// Rasterises the block powers into an `nx × ny` power grid, spreading
    /// each block's power uniformly over its area.
    pub fn power_grid(&self, nx: usize, ny: usize) -> PowerGrid {
        let mut g = PowerGrid::zero(nx, ny, self.width, self.height);
        let (dx, dy) = g.cell_dims();
        for b in &self.blocks {
            let r = b.rect();
            let density = b.power() / r.area();
            let i0 = (r.x / dx).floor().max(0.0) as usize;
            let j0 = (r.y / dy).floor().max(0.0) as usize;
            let i1 = ((r.x1() / dx).ceil() as usize).min(nx);
            let j1 = ((r.y1() / dy).ceil() as usize).min(ny);
            for j in j0..j1 {
                for i in i0..i1 {
                    let cell = Rect::new(i as f64 * dx, j as f64 * dy, dx, dy);
                    let ov = r.overlap_area(&cell);
                    if ov > 0.0 {
                        g.add(i, j, density * ov);
                    }
                }
            }
        }
        g
    }

    /// The fraction of the die area covered by blocks.
    pub fn utilisation(&self) -> f64 {
        self.blocks.iter().map(|b| b.rect().area()).sum::<f64>() / self.area()
    }

    /// A copy with every block's power scaled by `factor`.
    pub fn with_power_scaled(&self, factor: f64) -> Floorplan {
        Floorplan {
            blocks: self
                .blocks
                .iter()
                .map(|b| b.with_power_scaled(factor))
                .collect(),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> Floorplan {
        let mut f = Floorplan::new("test", 10.0, 10.0);
        f.push(Block::new("a", Rect::new(0.0, 0.0, 5.0, 10.0), 50.0));
        f.push(Block::new("b", Rect::new(5.0, 0.0, 5.0, 10.0), 10.0));
        f
    }

    #[test]
    fn valid_plan_passes() {
        assert!(simple().validate().is_ok());
        assert_eq!(simple().total_power(), 60.0);
        assert!((simple().utilisation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut f = Floorplan::new("test", 10.0, 10.0);
        f.push(Block::new("big", Rect::new(5.0, 5.0, 6.0, 6.0), 1.0));
        assert!(matches!(
            f.validate(),
            Err(FloorplanError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn overlap_detected() {
        let mut f = Floorplan::new("test", 10.0, 10.0);
        f.push(Block::new("a", Rect::new(0.0, 0.0, 5.0, 5.0), 1.0));
        f.push(Block::new("b", Rect::new(4.0, 4.0, 5.0, 5.0), 1.0));
        match f.validate() {
            Err(FloorplanError::Overlap { area, .. }) => assert!((area - 1.0).abs() < 1e-9),
            other => panic!("expected overlap, got {other:?}"),
        }
    }

    #[test]
    fn power_grid_conserves_power() {
        let g = simple().power_grid(7, 13);
        assert!((g.total() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn power_grid_reflects_density_difference() {
        let g = simple().power_grid(10, 10);
        // block a: 50 W over 50 mm² = 1 W/mm²; block b: 0.2 W/mm²
        assert!((g.get(0, 0) - 1.0).abs() < 1e-9);
        assert!((g.get(9, 9) - 0.2).abs() < 1e-9);
        assert!((g.peak_density() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn block_lookup() {
        let f = simple();
        assert_eq!(f.block("a").unwrap().power(), 50.0);
        assert!(f.block("zz").is_none());
    }

    #[test]
    fn power_scaling_applies_to_all_blocks() {
        let f = simple().with_power_scaled(0.5);
        assert_eq!(f.total_power(), 30.0);
    }
}
