//! 2D → 3D floorplan folding: re-placing a planar design onto two stacked
//! dies of half the footprint, with iterative hotspot repair.
//!
//! §4 of the paper: "a new 3D floorplan can be developed that requires only
//! 50% of the original footprint ... A simple iterative process of placing
//! blocks, observing the new power densities and repairing outliers was
//! used in this experiment. The result is a 1.3x power density increase."
//!
//! The folder works at a quantised grid: blocks are placed largest-first
//! onto whichever die and position minimises the resulting peak *stacked*
//! power density; a repair loop then relocates contributors to the worst
//! heat column until no single move improves the peak.

use std::fmt;

use crate::block::Block;
use crate::floorplan::Floorplan;
use crate::geom::Rect;
use crate::stacked::StackedFloorplan;

/// Folding parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FoldOptions {
    /// Placement grid step in mm.
    pub grid_step: f64,
    /// Whitespace slack: the two dies' combined area is `area_slack` times
    /// the planar area (rigid rectangles cannot be packed perfectly; real
    /// floorplans carry whitespace too). 1.12 keeps the per-die footprint
    /// at ~57% of planar, matching the paper's "approximately 50%".
    pub area_slack: f64,
    /// Maximum hotspot-repair iterations.
    pub repair_iters: usize,
    /// Power-density evaluation grid resolution (cells along x).
    pub density_cells: usize,
    /// Power scale applied to every block (§4: the 3D floorplan saves 15%
    /// power from shorter wires, fewer repeaters and a smaller clock grid).
    pub power_scale: f64,
}

impl Default for FoldOptions {
    fn default() -> Self {
        FoldOptions {
            grid_step: 0.125,
            area_slack: 1.15,
            repair_iters: 64,
            density_cells: 48,
            power_scale: 0.85,
        }
    }
}

/// Folding failure.
#[derive(Debug, Clone, PartialEq)]
pub enum FoldError {
    /// A block could not be placed on either die.
    NoRoom {
        /// Name of the block that did not fit.
        block: String,
    },
}

impl fmt::Display for FoldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FoldError::NoRoom { block } => write!(f, "no legal position for block '{block}'"),
        }
    }
}

impl std::error::Error for FoldError {}

/// Folds a planar floorplan onto two dies of half the total area.
///
/// # Errors
///
/// Returns [`FoldError::NoRoom`] if the packer cannot place a block; this
/// happens when the planar plan's utilisation is so high that the quantised
/// packing loses too much space (try a smaller `grid_step`).
pub fn fold(planar: &Floorplan, opts: FoldOptions) -> Result<StackedFloorplan, FoldError> {
    let s = (0.5 * opts.area_slack).sqrt();
    let die_w = planar.width() * s;
    let die_h = planar.height() * s;

    // pre-pass: split blocks that cannot fit the smaller frame, then split
    // the largest blocks once more so the packer has flexibility (this is
    // the paper's "block splitting" to reduce intra-block interconnect)
    let mut pending: Vec<Block> = Vec::new();
    let mut queue: Vec<Block> = planar
        .blocks()
        .iter()
        .map(|b| b.with_power_scaled(opts.power_scale))
        .collect();
    while let Some(b) = queue.pop() {
        let r = b.rect();
        if r.w > die_w || r.h > die_h || r.area() > 0.35 * die_w * die_h {
            // split along the longer edge
            let (lo, hi) = if r.w >= r.h {
                let (bl, bt) = rotate_split(&b);
                (bl, bt)
            } else {
                b.split_at(0.5)
            };
            queue.push(lo);
            queue.push(hi);
        } else {
            pending.push(b);
        }
    }
    // place largest blocks first (the worklist pops from the back)
    pending.sort_by(|a, b| a.rect().area().total_cmp(&b.rect().area()));

    let mut dies = [
        Placer::new(die_w, die_h, opts),
        Placer::new(die_w, die_h, opts),
    ];
    // largest-first worklist; a block that fits nowhere is split in half and
    // its pieces retried (further "block splitting"), down to a minimum size
    let mut work: Vec<Block> = pending;
    while let Some(b) = work.pop() {
        // evaluate the best position on each die against the *other* die's
        // power map, so low-power blocks gravitate over high-power ones
        let c0 = dies[0].best_position(&b, &dies[1]);
        let c1 = dies[1].best_position(&b, &dies[0]);
        match (c0, c1) {
            (Some((p0, s0)), Some((_, s1))) if s0 <= s1 => {
                dies[0].place(&b, p0);
            }
            (_, Some((p1, _))) => {
                dies[1].place(&b, p1);
            }
            (Some((p0, _)), None) => {
                dies[0].place(&b, p0);
            }
            (None, None) => {
                if b.rect().area() < 0.25 {
                    return Err(FoldError::NoRoom {
                        block: b.name().to_string(),
                    });
                }
                let (lo, hi) = if b.rect().w >= b.rect().h {
                    rotate_split(&b)
                } else {
                    b.split_at(0.5)
                };
                work.push(lo);
                work.push(hi);
            }
        }
    }

    // iterative hotspot repair: relocate a contributor to the peak column
    for _ in 0..opts.repair_iters {
        if !repair_once(&mut dies) {
            break;
        }
    }

    Ok(StackedFloorplan::new(vec![
        dies[0].to_floorplan("die0"),
        dies[1].to_floorplan("die1"),
    ]))
}

/// Splits a block along x (vertical cut) into left and right halves.
fn rotate_split(b: &Block) -> (Block, Block) {
    let r = *b.rect();
    let left = Block::new(
        format!("{}.l", b.name()),
        Rect::new(r.x, r.y, r.w / 2.0, r.h),
        b.power() / 2.0,
    );
    let right = Block::new(
        format!("{}.r", b.name()),
        Rect::new(r.x + r.w / 2.0, r.y, r.w / 2.0, r.h),
        b.power() / 2.0,
    );
    (left, right)
}

/// One repair step: find the worst stacked column and try to move one of
/// its contributors somewhere strictly better. Returns whether it improved.
fn repair_once(dies: &mut [Placer; 2]) -> bool {
    let (peak, px, py) = {
        let combined = combined_density(dies);
        let mut best = (0.0f64, 0.0f64, 0.0f64);
        let (nx, ny) = combined.0;
        for j in 0..ny {
            for i in 0..nx {
                let d = combined.1[j * nx + i];
                if d > best.0 {
                    best = (
                        d,
                        combined.2 * (i as f64 + 0.5),
                        combined.3 * (j as f64 + 0.5),
                    );
                }
            }
        }
        best
    };
    for di in 0..2 {
        let Some(idx) = dies[di].block_at(px, py) else {
            continue;
        };
        let b = dies[di].blocks[idx].clone();
        let (fixed, moving) = if di == 0 { (1, 0) } else { (0, 1) };
        // temporarily remove and look for a better spot on either die
        dies[moving].blocks.remove(idx);
        let cand_same = dies[moving].best_position(&b, &dies[fixed]);
        if let Some((pos, score)) = cand_same {
            if score < peak - 1e-9 {
                let placed = dies[moving].place(&b, pos);
                let _ = placed;
                let new_peak = peak_of(dies);
                if new_peak < peak - 1e-9 {
                    return true;
                }
                // revert: remove the re-placed block and restore original
                let last = dies[moving].blocks.len() - 1;
                dies[moving].blocks.remove(last);
            }
        }
        dies[moving].blocks.insert(idx, b);
    }
    false
}

fn peak_of(dies: &[Placer; 2]) -> f64 {
    let c = combined_density(dies);
    c.1.iter().cloned().fold(0.0, f64::max)
}

/// Combined stacked density: ((nx, ny), densities W/mm², dx, dy).
#[allow(clippy::type_complexity)]
fn combined_density(dies: &[Placer; 2]) -> ((usize, usize), Vec<f64>, f64, f64) {
    let n = dies[0].opts.density_cells;
    let nx = n;
    let ny = ((dies[0].h / dies[0].w * n as f64).round() as usize).max(1);
    let g0 = dies[0].to_floorplan("t0").power_grid(nx, ny);
    let g1 = dies[1].to_floorplan("t1").power_grid(nx, ny);
    let (dx, dy) = g0.cell_dims();
    let cell_area = dx * dy;
    let cells = g0
        .cells()
        .iter()
        .zip(g1.cells())
        .map(|(a, b)| (a + b) / cell_area)
        .collect();
    ((nx, ny), cells, dx, dy)
}

/// Greedy grid packer for one die.
#[derive(Debug, Clone)]
struct Placer {
    w: f64,
    h: f64,
    opts: FoldOptions,
    blocks: Vec<Block>,
}

impl Placer {
    fn new(w: f64, h: f64, opts: FoldOptions) -> Self {
        Placer {
            w,
            h,
            opts,
            blocks: Vec::new(),
        }
    }

    fn legal(&self, r: &Rect) -> bool {
        r.x >= -1e-9
            && r.y >= -1e-9
            && r.x1() <= self.w + 1e-9
            && r.y1() <= self.h + 1e-9
            && self.blocks.iter().all(|b| !b.rect().intersects(r, 1e-6))
    }

    /// Finds the legal position minimising the local stacked density
    /// (own density at the spot + the other die's density underneath).
    /// Among positions of similar density, prefer bottom-left placements so
    /// free space stays contiguous instead of fragmenting.
    fn best_position(&self, b: &Block, other: &Placer) -> Option<((f64, f64), f64)> {
        let step = self.opts.grid_step;
        let mut best: Option<((f64, f64), f64, i64)> = None;
        let bw = b.rect().w;
        let bh = b.rect().h;
        let own_density = b.power_density();
        let mut y = 0.0;
        while y + bh <= self.h + 1e-9 {
            let mut x = 0.0;
            while x + bw <= self.w + 1e-9 {
                let r = Rect::new(x, y, bw, bh);
                if self.legal(&r) {
                    // stacked density this placement would create: the
                    // block's own density plus the densest spot of the
                    // other die under its footprint
                    let under = other.max_density_in(&r);
                    let score = own_density + under;
                    // bucket densities so near-equal scores pack compactly
                    let bucket = (score / 0.1).round() as i64;
                    let better = match best {
                        None => true,
                        Some((_, _, bb)) => bucket < bb,
                    };
                    if better {
                        best = Some(((x, y), score, bucket));
                    }
                }
                x += step;
            }
            y += step;
        }
        best.map(|(pos, score, _)| (pos, score))
    }

    fn max_density_in(&self, r: &Rect) -> f64 {
        self.blocks
            .iter()
            .filter(|b| b.rect().intersects(r, 1e-9))
            .map(|b| b.power_density())
            .fold(0.0, f64::max)
    }

    fn place(&mut self, b: &Block, (x, y): (f64, f64)) -> &Block {
        self.blocks.push(b.placed_at(x, y));
        &self.blocks[self.blocks.len() - 1]
    }

    fn block_at(&self, x: f64, y: f64) -> Option<usize> {
        self.blocks.iter().position(|b| {
            let r = b.rect();
            x >= r.x && x < r.x1() && y >= r.y && y < r.y1()
        })
    }

    fn to_floorplan(&self, name: &str) -> Floorplan {
        let mut f = Floorplan::new(name, self.w, self.h);
        for b in &self.blocks {
            f.push(b.clone());
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::p4::pentium4_147w;

    #[test]
    fn fold_halves_the_footprint_and_saves_power() {
        let planar = pentium4_147w();
        let folded = fold(&planar, FoldOptions::default()).unwrap();
        folded.validate().unwrap();
        let area: f64 = folded.dies()[0].area();
        let frac = area / planar.area();
        assert!(
            frac > 0.45 && frac < 0.6,
            "~50% footprint per die, got {frac}"
        );
        assert!(
            (folded.total_power() - 147.0 * 0.85).abs() < 1e-6,
            "15% power reduction, got {}",
            folded.total_power()
        );
    }

    #[test]
    fn fold_preserves_every_watt_modulo_scaling() {
        let planar = pentium4_147w();
        let folded = fold(
            &planar,
            FoldOptions {
                power_scale: 1.0,
                ..FoldOptions::default()
            },
        )
        .unwrap();
        assert!((folded.total_power() - 147.0).abs() < 1e-6);
    }

    #[test]
    fn folded_density_is_well_below_worst_case() {
        let planar = pentium4_147w();
        let folded = fold(&planar, FoldOptions::default()).unwrap();
        let planar_peak = planar.power_grid(48, 40).peak_density();
        let folded_peak = folded.peak_stacked_density(48, 40);
        let ratio = folded_peak / planar_peak;
        // §4: repair achieves ~1.3x (vs 2x worst case; 0.85 power scale
        // helps). Allow some slack around the paper's 1.3x.
        assert!(
            ratio < 1.75,
            "peak density ratio {ratio:.2} must stay below worst case"
        );
        assert!(ratio > 0.9, "stacking cannot be free: ratio {ratio:.2}");
    }

    #[test]
    fn repair_does_not_break_legality() {
        let planar = pentium4_147w();
        let folded = fold(
            &planar,
            FoldOptions {
                repair_iters: 200,
                ..Default::default()
            },
        )
        .unwrap();
        folded.validate().unwrap();
    }

    #[test]
    fn both_dies_are_used() {
        let planar = pentium4_147w();
        let folded = fold(&planar, FoldOptions::default()).unwrap();
        assert!(!folded.dies()[0].blocks().is_empty());
        assert!(!folded.dies()[1].blocks().is_empty());
        // utilisation of each die should be near 100% (area is conserved)
        for d in folded.dies() {
            assert!(
                d.utilisation() > 0.8,
                "die {} utilisation {}",
                d.name(),
                d.utilisation()
            );
        }
    }
}
