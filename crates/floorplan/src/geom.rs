//! Planar geometry primitives (millimetres).

/// An axis-aligned rectangle in die coordinates (mm). The origin is the
/// lower-left corner of the die.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Lower-left x (mm).
    pub x: f64,
    /// Lower-left y (mm).
    pub y: f64,
    /// Width (mm).
    pub w: f64,
    /// Height (mm).
    pub h: f64,
}

impl Rect {
    /// Creates a rectangle.
    ///
    /// # Panics
    ///
    /// Panics if the width or height is not positive and finite.
    pub fn new(x: f64, y: f64, w: f64, h: f64) -> Self {
        assert!(
            w > 0.0 && h > 0.0 && w.is_finite() && h.is_finite(),
            "degenerate rectangle"
        );
        assert!(x.is_finite() && y.is_finite(), "non-finite position");
        Rect { x, y, w, h }
    }

    /// Area in mm².
    pub fn area(&self) -> f64 {
        self.w * self.h
    }

    /// Right edge.
    pub fn x1(&self) -> f64 {
        self.x + self.w
    }

    /// Top edge.
    pub fn y1(&self) -> f64 {
        self.y + self.h
    }

    /// Whether this rectangle fully contains `other` (within `eps`).
    pub fn contains(&self, other: &Rect, eps: f64) -> bool {
        other.x >= self.x - eps
            && other.y >= self.y - eps
            && other.x1() <= self.x1() + eps
            && other.y1() <= self.y1() + eps
    }

    /// Overlap area with `other` (0 if disjoint).
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        let w = (self.x1().min(other.x1()) - self.x.max(other.x)).max(0.0);
        let h = (self.y1().min(other.y1()) - self.y.max(other.y)).max(0.0);
        w * h
    }

    /// Whether the rectangles overlap by more than `eps` area.
    pub fn intersects(&self, other: &Rect, eps: f64) -> bool {
        self.overlap_area(other) > eps
    }

    /// Centre point.
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// The rectangle translated by `(dx, dy)`.
    pub fn translated(&self, dx: f64, dy: f64) -> Rect {
        Rect {
            x: self.x + dx,
            y: self.y + dy,
            ..*self
        }
    }

    /// The rectangle scaled about the origin by `(sx, sy)`.
    ///
    /// # Panics
    ///
    /// Panics if a scale factor is not positive.
    pub fn scaled(&self, sx: f64, sy: f64) -> Rect {
        assert!(sx > 0.0 && sy > 0.0, "scale factors must be positive");
        Rect {
            x: self.x * sx,
            y: self.y * sy,
            w: self.w * sx,
            h: self.h * sy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_and_edges() {
        let r = Rect::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.x1(), 4.0);
        assert_eq!(r.y1(), 6.0);
        assert_eq!(r.center(), (2.5, 4.0));
    }

    #[test]
    fn overlap_area_cases() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(1.0, 1.0, 2.0, 2.0);
        let c = Rect::new(5.0, 5.0, 1.0, 1.0);
        assert_eq!(a.overlap_area(&b), 1.0);
        assert_eq!(a.overlap_area(&c), 0.0);
        assert!(a.intersects(&b, 1e-9));
        assert!(!a.intersects(&c, 1e-9));
    }

    #[test]
    fn touching_rectangles_do_not_intersect() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(1.0, 0.0, 1.0, 1.0);
        assert!(!a.intersects(&b, 1e-9));
    }

    #[test]
    fn containment() {
        let die = Rect::new(0.0, 0.0, 10.0, 10.0);
        let inner = Rect::new(1.0, 1.0, 2.0, 2.0);
        let outer = Rect::new(9.0, 9.0, 2.0, 2.0);
        assert!(die.contains(&inner, 1e-9));
        assert!(!die.contains(&outer, 1e-9));
    }

    #[test]
    fn transforms() {
        let r = Rect::new(1.0, 1.0, 2.0, 2.0);
        assert_eq!(r.translated(1.0, -1.0), Rect::new(2.0, 0.0, 2.0, 2.0));
        assert_eq!(r.scaled(2.0, 0.5), Rect::new(2.0, 0.5, 4.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_size_panics() {
        let _ = Rect::new(0.0, 0.0, 0.0, 1.0);
    }
}
