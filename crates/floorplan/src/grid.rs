//! Rasterised power maps.

/// A rasterised power map: watts per cell over an `nx × ny` grid covering a
/// `width × height` mm die.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerGrid {
    nx: usize,
    ny: usize,
    width: f64,
    height: f64,
    watts: Vec<f64>,
}

impl PowerGrid {
    /// An all-zero grid.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero or the die size is not positive.
    pub fn zero(nx: usize, ny: usize, width: f64, height: f64) -> Self {
        assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
        assert!(
            width > 0.0 && height > 0.0,
            "die dimensions must be positive"
        );
        PowerGrid {
            nx,
            ny,
            width,
            height,
            watts: vec![0.0; nx * ny],
        }
    }

    /// Grid size `(nx, ny)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Die size in mm `(width, height)`.
    pub fn die_dims(&self) -> (f64, f64) {
        (self.width, self.height)
    }

    /// Cell size in mm `(dx, dy)`.
    pub fn cell_dims(&self) -> (f64, f64) {
        (self.width / self.nx as f64, self.height / self.ny as f64)
    }

    /// Watts in cell `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.nx && j < self.ny, "cell index out of bounds");
        self.watts[j * self.nx + i]
    }

    /// Adds watts to cell `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn add(&mut self, i: usize, j: usize, w: f64) {
        assert!(i < self.nx && j < self.ny, "cell index out of bounds");
        self.watts[j * self.nx + i] += w;
    }

    /// Total power in watts.
    pub fn total(&self) -> f64 {
        self.watts.iter().sum()
    }

    /// Peak cell power density in W/mm².
    pub fn peak_density(&self) -> f64 {
        let (dx, dy) = self.cell_dims();
        let cell_area = dx * dy;
        self.watts.iter().cloned().fold(0.0, f64::max) / cell_area
    }

    /// Mean power density in W/mm² over the whole die.
    pub fn mean_density(&self) -> f64 {
        self.total() / (self.width * self.height)
    }

    /// Element-wise sum of two equally shaped grids (e.g. two stacked dies).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn stacked_with(&self, other: &PowerGrid) -> PowerGrid {
        assert_eq!(self.dims(), other.dims(), "grid shapes must match");
        assert_eq!(self.die_dims(), other.die_dims(), "die sizes must match");
        let watts = self
            .watts
            .iter()
            .zip(&other.watts)
            .map(|(a, b)| a + b)
            .collect();
        PowerGrid {
            watts,
            ..self.clone()
        }
    }

    /// The grid with every cell scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> PowerGrid {
        PowerGrid {
            watts: self.watts.iter().map(|w| w * factor).collect(),
            ..self.clone()
        }
    }

    /// Raw cell values in row-major order (row `j`, column `i`).
    pub fn cells(&self) -> &[f64] {
        &self.watts
    }

    /// Resamples the grid to a new resolution, conserving total power.
    pub fn resampled(&self, nx: usize, ny: usize) -> PowerGrid {
        let mut out = PowerGrid::zero(nx, ny, self.width, self.height);
        // distribute each source cell's power into destination cells by
        // fractional area overlap
        let (sdx, sdy) = self.cell_dims();
        let (ddx, ddy) = out.cell_dims();
        for j in 0..self.ny {
            for i in 0..self.nx {
                let w = self.watts[j * self.nx + i];
                if w == 0.0 {
                    continue;
                }
                let x0 = i as f64 * sdx;
                let y0 = j as f64 * sdy;
                let i0 = (x0 / ddx).floor() as usize;
                let j0 = (y0 / ddy).floor() as usize;
                let i1 = (((x0 + sdx) / ddx).ceil() as usize).min(nx);
                let j1 = (((y0 + sdy) / ddy).ceil() as usize).min(ny);
                for dj in j0..j1 {
                    for di in i0..i1 {
                        let ox = (x0 + sdx).min((di + 1) as f64 * ddx) - x0.max(di as f64 * ddx);
                        let oy = (y0 + sdy).min((dj + 1) as f64 * ddy) - y0.max(dj as f64 * ddy);
                        if ox > 0.0 && oy > 0.0 {
                            out.add(di, dj, w * (ox * oy) / (sdx * sdy));
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_grid_is_empty() {
        let g = PowerGrid::zero(4, 4, 10.0, 10.0);
        assert_eq!(g.total(), 0.0);
        assert_eq!(g.peak_density(), 0.0);
        assert_eq!(g.cell_dims(), (2.5, 2.5));
    }

    #[test]
    fn add_and_total() {
        let mut g = PowerGrid::zero(2, 2, 2.0, 2.0);
        g.add(0, 0, 1.0);
        g.add(1, 1, 3.0);
        assert_eq!(g.total(), 4.0);
        assert_eq!(g.get(1, 1), 3.0);
        // peak cell 3 W over 1 mm² cell
        assert_eq!(g.peak_density(), 3.0);
        assert_eq!(g.mean_density(), 1.0);
    }

    #[test]
    fn stacking_adds_cellwise() {
        let mut a = PowerGrid::zero(2, 1, 2.0, 1.0);
        let mut b = PowerGrid::zero(2, 1, 2.0, 1.0);
        a.add(0, 0, 1.0);
        b.add(0, 0, 2.0);
        b.add(1, 0, 5.0);
        let s = a.stacked_with(&b);
        assert_eq!(s.get(0, 0), 3.0);
        assert_eq!(s.get(1, 0), 5.0);
    }

    #[test]
    fn scaling() {
        let mut g = PowerGrid::zero(1, 1, 1.0, 1.0);
        g.add(0, 0, 10.0);
        assert_eq!(g.scaled(0.5).total(), 5.0);
    }

    #[test]
    fn resample_conserves_power() {
        let mut g = PowerGrid::zero(3, 3, 9.0, 9.0);
        g.add(0, 0, 5.0);
        g.add(2, 1, 7.0);
        for (nx, ny) in [(2, 2), (5, 7), (9, 9), (1, 1)] {
            let r = g.resampled(nx, ny);
            assert!((r.total() - 12.0).abs() < 1e-9, "{nx}x{ny}: {}", r.total());
        }
    }

    #[test]
    fn resample_identity_keeps_cells() {
        let mut g = PowerGrid::zero(4, 2, 4.0, 2.0);
        g.add(1, 0, 2.0);
        g.add(3, 1, 4.0);
        let r = g.resampled(4, 2);
        assert!((r.get(1, 0) - 2.0).abs() < 1e-9);
        assert!((r.get(3, 1) - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "shapes must match")]
    fn mismatched_stack_panics() {
        let a = PowerGrid::zero(2, 2, 1.0, 1.0);
        let b = PowerGrid::zero(3, 2, 1.0, 1.0);
        let _ = a.stacked_with(&b);
    }
}
