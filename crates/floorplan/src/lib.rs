//! Block-level floorplans, power maps and 2D→3D folding.
//!
//! This crate models the physical-design side of *Die Stacking (3D)
//! Microarchitecture* (Black et al., MICRO 2006):
//!
//! * the Intel Core 2 Duo–class baseline floorplan of Fig. 4/6 (92 W skew,
//!   L2 = 50% of the die, FP/RS/LdSt hotspots) — [`core2`];
//! * the Pentium 4–class planar floorplan of Fig. 9 (147 W skew, scheduler
//!   hotspot, the load-to-use and FP-register-read wire paths) — [`p4`];
//! * stacked configurations (CPU + uniform cache die; Fig. 7) —
//!   [`stacked`];
//! * the Logic+Logic fold of Fig. 10: re-placing the planar design onto two
//!   half-footprint dies with iterative hotspot repair (§4's "placing
//!   blocks, observing the new power densities and repairing outliers") —
//!   [`fold`].
//!
//! Power maps rasterised from these floorplans feed the `stacksim-thermal`
//! solver.
//!
//! # Example
//!
//! ```
//! use stacksim_floorplan::{core2::core2_duo_92w, stacked};
//!
//! let cpu = core2_duo_92w();
//! let dram = stacked::uniform_die("dram32", cpu.width(), cpu.height(), 3.1);
//! let stack = stacked::StackedFloorplan::new(vec![cpu, dram]);
//! stack.validate()?;
//! assert!(stack.total_power() > 95.0);
//! # Ok::<(), stacksim_floorplan::stacked::StackError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod block;
pub mod core2;
mod floorplan;
pub mod fold;
mod geom;
mod grid;
pub mod p4;
pub mod stacked;
pub mod wire;

pub use block::Block;
pub use floorplan::{Floorplan, FloorplanError};
pub use fold::{fold, FoldError, FoldOptions};
pub use geom::Rect;
pub use grid::PowerGrid;
pub use stacked::{uniform_die, worst_case_stack, StackedFloorplan};
pub use wire::RouteSaving;
