//! The Pentium 4–class planar floorplan of Fig. 9.
//!
//! A deeply pipelined single-core design on a 12 × 10 mm die. The layout
//! reproduces the two wire-delay paths the paper draws in Fig. 9:
//!
//! * **load-to-use**: the L1 data cache (`dcache`) sits beside the integer
//!   functional units (`fu`) — worst-case data must cross both blocks;
//! * **FP register read**: the SIMD unit sits *between* the FP register
//!   file (`rf`) and the FP unit (`fp`), because the planar layout is
//!   optimised for SIMD — costing all FP instructions two extra cycles.
//!
//! The hottest region is the instruction scheduler, as §4 notes
//! ("the planar floorplan's hottest area over the instruction scheduler").

use crate::block::Block;
use crate::floorplan::Floorplan;
use crate::geom::Rect;

/// Die width in mm.
pub const DIE_W: f64 = 12.0;
/// Die height in mm.
pub const DIE_H: f64 = 10.0;

/// Blocks as (name, x, y, w, h, relative power weight).
// Weights include the sizeable leakage floor of a 90 nm-era deeply
// pipelined part, which flattens the map relative to dynamic power alone.
const BLOCKS: &[(&str, f64, f64, f64, f64, f64)] = &[
    // bottom row: the FP path of Fig. 9 — FP | SIMD | RF adjacency
    ("fp", 0.0, 0.0, 3.0, 2.5, 12.0),
    ("simd", 3.0, 0.0, 3.0, 2.5, 9.0),
    ("rf", 6.0, 0.0, 2.0, 2.5, 7.2),
    ("mmx", 8.0, 0.0, 4.0, 2.5, 8.4),
    // middle row: the load-to-use path — D$ beside the functional units
    ("dcache", 0.0, 2.5, 4.0, 3.0, 11.8),
    ("fu", 4.0, 2.5, 3.0, 3.0, 13.9),
    ("sched", 7.0, 2.5, 2.5, 3.0, 14.4),
    ("ldst", 9.5, 2.5, 2.5, 3.0, 12.0),
    // upper row: front end
    ("tcache", 0.0, 5.5, 3.5, 2.2, 9.7),
    ("frontend", 3.5, 5.5, 2.5, 2.2, 6.8),
    ("rename", 6.0, 5.5, 2.0, 2.2, 6.9),
    ("retire", 8.0, 5.5, 2.0, 2.2, 6.3),
    ("ucode", 10.0, 5.5, 2.0, 2.2, 5.1),
    // top: L2 and bus
    ("l2", 0.0, 7.7, 10.0, 2.3, 16.4),
    ("busif", 10.0, 7.7, 2.0, 2.3, 4.0),
];

/// Builds the P4-class planar floorplan with the given total power
/// (the Fig. 11 baseline uses the 147 W skew).
///
/// # Panics
///
/// Panics if `total_power` is not positive.
pub fn pentium4(total_power: f64) -> Floorplan {
    assert!(total_power > 0.0, "total power must be positive");
    let weight_sum: f64 = BLOCKS.iter().map(|b| b.5).sum();
    let mut f = Floorplan::new("pentium4", DIE_W, DIE_H);
    for &(name, x, y, w, h, weight) in BLOCKS {
        f.push(Block::new(
            name,
            Rect::new(x, y, w, h),
            total_power * weight / weight_sum,
        ));
    }
    debug_assert!(f.validate().is_ok());
    f
}

/// The 147 W skew used in Table 5 / Fig. 11.
pub fn pentium4_147w() -> Floorplan {
    pentium4(147.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_legal_and_sums_to_total() {
        let f = pentium4_147w();
        f.validate().unwrap();
        assert!((f.total_power() - 147.0).abs() < 1e-9);
    }

    #[test]
    fn scheduler_is_the_hottest_block() {
        let f = pentium4_147w();
        let sched = f.block("sched").unwrap().power_density();
        for b in f.blocks() {
            if b.name() != "sched" {
                assert!(
                    b.power_density() < sched,
                    "{} ({:.2}) must be cooler than sched ({sched:.2})",
                    b.name(),
                    b.power_density()
                );
            }
        }
    }

    #[test]
    fn simd_sits_between_rf_and_fp() {
        let f = pentium4_147w();
        let fp = f.block("fp").unwrap().rect().center().0;
        let simd = f.block("simd").unwrap().rect().center().0;
        let rf = f.block("rf").unwrap().rect().center().0;
        assert!(fp < simd && simd < rf, "Fig. 9 adjacency: FP | SIMD | RF");
    }

    #[test]
    fn dcache_is_adjacent_to_functional_units() {
        let f = pentium4_147w();
        let d = f.block("dcache").unwrap().rect();
        let fu = f.block("fu").unwrap().rect();
        assert!((d.x1() - fu.x).abs() < 1e-9, "D$ touches the FUs");
        assert_eq!(d.y, fu.y);
    }

    #[test]
    fn die_is_fully_tiled() {
        let f = pentium4_147w();
        assert!(
            (f.utilisation() - 1.0).abs() < 1e-9,
            "utilisation {}",
            f.utilisation()
        );
    }
}
