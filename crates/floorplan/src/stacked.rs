//! Multi-die stacked floorplans.

use std::fmt;

use crate::block::Block;
use crate::floorplan::{Floorplan, FloorplanError};
use crate::geom::Rect;
use crate::grid::PowerGrid;

/// A vertical stack of die floorplans (die 0 is closest to the heat sink —
/// the paper places the highest-power die there).
#[derive(Debug, Clone, PartialEq)]
pub struct StackedFloorplan {
    dies: Vec<Floorplan>,
}

/// A stacked-floorplan validation error.
#[derive(Debug, Clone, PartialEq)]
pub enum StackError {
    /// Fewer than one die.
    Empty,
    /// Dies have different frame dimensions.
    MismatchedDies,
    /// One of the dies is itself illegal.
    Die(FloorplanError),
}

impl fmt::Display for StackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackError::Empty => write!(f, "stack has no dies"),
            StackError::MismatchedDies => write!(f, "stacked dies have different dimensions"),
            StackError::Die(e) => write!(f, "illegal die floorplan: {e}"),
        }
    }
}

impl std::error::Error for StackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StackError::Die(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FloorplanError> for StackError {
    fn from(e: FloorplanError) -> Self {
        StackError::Die(e)
    }
}

impl StackedFloorplan {
    /// Builds a stack from dies (heat-sink side first).
    pub fn new(dies: Vec<Floorplan>) -> Self {
        StackedFloorplan { dies }
    }

    /// The dies, heat-sink side first.
    pub fn dies(&self) -> &[Floorplan] {
        &self.dies
    }

    /// Number of dies.
    pub fn len(&self) -> usize {
        self.dies.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.dies.is_empty()
    }

    /// Total power across all dies.
    pub fn total_power(&self) -> f64 {
        self.dies.iter().map(Floorplan::total_power).sum()
    }

    /// Checks that the stack is non-empty, all dies share the same frame
    /// and each die is individually legal.
    ///
    /// # Errors
    ///
    /// Returns the first violation.
    pub fn validate(&self) -> Result<(), StackError> {
        let first = self.dies.first().ok_or(StackError::Empty)?;
        for d in &self.dies {
            if (d.width() - first.width()).abs() > 1e-9
                || (d.height() - first.height()).abs() > 1e-9
            {
                return Err(StackError::MismatchedDies);
            }
            d.validate()?;
        }
        Ok(())
    }

    /// The element-wise sum of all dies' power grids: the vertical heat
    /// column each footprint cell must dissipate. An empty stack (which
    /// [`StackedFloorplan::validate`] rejects) yields an all-zero grid
    /// with a degenerate footprint.
    pub fn combined_power_grid(&self, nx: usize, ny: usize) -> PowerGrid {
        let mut it = self.dies.iter();
        let Some(first) = it.next() else {
            return PowerGrid::zero(nx, ny, 0.0, 0.0);
        };
        let first = first.power_grid(nx, ny);
        it.fold(first, |acc, d| acc.stacked_with(&d.power_grid(nx, ny)))
    }

    /// Peak combined (stacked) power density in W/mm² at the given grid
    /// resolution.
    pub fn peak_stacked_density(&self, nx: usize, ny: usize) -> f64 {
        self.combined_power_grid(nx, ny).peak_density()
    }
}

/// Builds a uniform-power die (e.g. a stacked SRAM/DRAM cache die, which
/// the paper treats as uniform: "the cache-only die in the stack has
/// uniform power").
pub fn uniform_die(name: impl Into<String>, width: f64, height: f64, power: f64) -> Floorplan {
    let name = name.into();
    let mut f = Floorplan::new(name.clone(), width, height);
    f.push(Block::new(
        format!("{name}.array"),
        Rect::new(0.0, 0.0, width, height),
        power,
    ));
    f
}

/// The Fig. 11 "3D Worstcase" construction: the planar die stacked on an
/// identical copy of itself — 2× power density everywhere, no power
/// savings.
pub fn worst_case_stack(planar: &Floorplan) -> StackedFloorplan {
    // the planar power (no savings) split over two half-area dies with every
    // block sitting directly above its own copy: each footprint cell carries
    // the same block power in half the area — exactly 2x density
    let top = planar.with_power_scaled(0.5);
    let bottom = planar.with_power_scaled(0.5);
    let s = 0.5f64.sqrt();
    let shrink = |f: &Floorplan| {
        let mut out = Floorplan::new(f.name().to_string() + "-wc", f.width() * s, f.height() * s);
        for b in f.blocks() {
            out.push(Block::new(b.name(), b.rect().scaled(s, s), b.power()));
        }
        out
    };
    StackedFloorplan::new(vec![shrink(&top), shrink(&bottom)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core2::core2_duo_92w;
    use crate::p4::pentium4_147w;

    #[test]
    fn uniform_die_has_flat_density() {
        let d = uniform_die("dram", 13.0, 11.0, 3.1);
        assert!((d.total_power() - 3.1).abs() < 1e-12);
        let g = d.power_grid(8, 8);
        let flat = 3.1 / (13.0 * 11.0);
        assert!((g.peak_density() - flat).abs() < 1e-9);
    }

    #[test]
    fn cpu_plus_cache_stack_validates() {
        let s = StackedFloorplan::new(vec![
            core2_duo_92w(),
            uniform_die("dram32", 13.0, 11.0, 3.1),
        ]);
        s.validate().unwrap();
        assert!((s.total_power() - 95.1).abs() < 1e-9);
    }

    #[test]
    fn mismatched_dies_rejected() {
        let s = StackedFloorplan::new(vec![core2_duo_92w(), uniform_die("odd", 10.0, 10.0, 1.0)]);
        assert_eq!(s.validate(), Err(StackError::MismatchedDies));
    }

    #[test]
    fn empty_stack_rejected() {
        assert_eq!(
            StackedFloorplan::new(vec![]).validate(),
            Err(StackError::Empty)
        );
    }

    #[test]
    fn uniform_top_die_barely_changes_density_shape() {
        let cpu = core2_duo_92w();
        let alone = StackedFloorplan::new(vec![cpu.clone()]);
        let with_dram = StackedFloorplan::new(vec![cpu, uniform_die("dram32", 13.0, 11.0, 3.1)]);
        let a = alone.peak_stacked_density(26, 22);
        let b = with_dram.peak_stacked_density(26, 22);
        assert!(b > a, "stacking adds some power");
        assert!(b < a * 1.05, "a uniform 3.1 W die adds little to the peak");
    }

    #[test]
    fn worst_case_doubles_peak_density() {
        let planar = pentium4_147w();
        let wc = worst_case_stack(&planar);
        wc.validate().unwrap();
        assert!(
            (wc.total_power() - 147.0).abs() < 1e-9,
            "no power savings in the worst case"
        );
        let planar_peak = planar.power_grid(24, 20).peak_density();
        let wc_peak = wc.peak_stacked_density(24, 20);
        assert!(
            (wc_peak / planar_peak - 2.0).abs() < 0.05,
            "worst case is 2x density: {wc_peak} vs {planar_peak}"
        );
    }
}
