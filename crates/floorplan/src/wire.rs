//! Wire-route analysis for the Fig. 9 / Fig. 10 paths.
//!
//! §4 reasons about two critical routes:
//!
//! * **load-to-use**: planar worst case is "from the far edge of the data
//!   cache, across the data cache to the farthest functional unit" — the
//!   full width of both blocks. Stacking D$ over the FUs (Fig. 10) means
//!   data travels only "to the center of the D$ ... to the other die to the
//!   center of the functional units": half of each width, i.e. a 2× route
//!   reduction that eliminates "one clock cycle of wire delay".
//! * **FP register read**: the planar layout inserts the SIMD unit between
//!   the FP register file and the FP unit, adding its full width to every
//!   FP operand; the 3D floorplan overlaps RF and FP and removes the
//!   detour entirely.
//!
//! The die-to-die hop itself is negligible: the d2d vias have "size and
//!   electrical characteristics similar to conventional vias".

use crate::block::Block;
use crate::floorplan::Floorplan;

/// Die-to-die via hop expressed as an equivalent lateral route length (mm).
/// Face-to-face d2d vias behave like ordinary inter-layer vias, so the hop
/// is tiny compared to block-crossing routes.
pub const D2D_HOP_MM: f64 = 0.05;

/// A route compared planar vs stacked.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteSaving {
    /// Route name (e.g. "load-to-use").
    pub name: String,
    /// Planar worst-case route length in mm.
    pub planar_mm: f64,
    /// Stacked (Fig. 10) route length in mm.
    pub stacked_mm: f64,
}

impl RouteSaving {
    /// Stacked route as a fraction of the planar route.
    pub fn ratio(&self) -> f64 {
        self.stacked_mm / self.planar_mm
    }
}

/// Worst-case planar route across two horizontally adjacent blocks: far
/// edge of `a` to the far edge of `b` (the §4 load-to-use argument).
pub fn planar_crossing(a: &Block, b: &Block) -> f64 {
    a.rect().w + b.rect().w
}

/// The same route when `a` is stacked directly over `b`: to the centre of
/// `a`, one d2d hop, then from the centre of `b` to its far edge.
pub fn stacked_crossing(a: &Block, b: &Block) -> f64 {
    a.rect().w / 2.0 + b.rect().w / 2.0 + D2D_HOP_MM
}

/// Planar route through a detour block `via` sitting between `a` and `b`
/// (the FP–SIMD–RF arrangement of Fig. 9).
pub fn planar_detour(a: &Block, via: &Block, b: &Block) -> f64 {
    a.rect().w / 2.0 + via.rect().w + b.rect().w / 2.0
}

/// The detour route when `a` and `b` are overlapped across the two dies:
/// the `via` block no longer sits on the path at all.
pub fn stacked_overlap(a: &Block, b: &Block) -> f64 {
    (a.rect().w / 2.0 + b.rect().w / 2.0) / 2.0 + D2D_HOP_MM
}

/// Analyses the two Fig. 9 paths on a P4-class floorplan (blocks `dcache`,
/// `fu`, `fp`, `simd`, `rf` must exist).
///
/// # Panics
///
/// Panics if a required block is missing.
pub fn fig9_paths(planar: &Floorplan) -> Vec<RouteSaving> {
    let get = |n: &str| {
        planar
            .block(n)
            .unwrap_or_else(|| panic!("block '{n}' missing"))
    };
    let dcache = get("dcache");
    let fu = get("fu");
    let fp = get("fp");
    let simd = get("simd");
    let rf = get("rf");
    vec![
        RouteSaving {
            name: "load-to-use (D$ -> FU)".into(),
            planar_mm: planar_crossing(dcache, fu),
            stacked_mm: stacked_crossing(dcache, fu),
        },
        RouteSaving {
            name: "FP register read (RF -> FP)".into(),
            planar_mm: planar_detour(rf, simd, fp),
            stacked_mm: stacked_overlap(rf, fp),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Rect;
    use crate::p4::pentium4_147w;

    #[test]
    fn stacking_halves_the_crossing_route() {
        let a = Block::new("a", Rect::new(0.0, 0.0, 4.0, 2.0), 1.0);
        let b = Block::new("b", Rect::new(4.0, 0.0, 4.0, 2.0), 1.0);
        let planar = planar_crossing(&a, &b);
        let stacked = stacked_crossing(&a, &b);
        assert_eq!(planar, 8.0);
        // half of each width plus the negligible d2d hop
        assert!((stacked - 4.05).abs() < 1e-12);
        assert!(stacked / planar < 0.52, "the paper's 2x route reduction");
    }

    #[test]
    fn overlap_removes_the_simd_detour_entirely() {
        let fp = Block::new("fp", Rect::new(0.0, 0.0, 3.0, 2.0), 1.0);
        let simd = Block::new("simd", Rect::new(3.0, 0.0, 3.0, 2.0), 1.0);
        let rf = Block::new("rf", Rect::new(6.0, 0.0, 2.0, 2.0), 1.0);
        let planar = planar_detour(&rf, &simd, &fp);
        let stacked = stacked_overlap(&rf, &fp);
        assert!(planar > 5.0, "the detour crosses all of SIMD: {planar}");
        assert!(
            stacked < 0.4 * planar,
            "overlap eliminates the detour: {stacked}"
        );
    }

    #[test]
    fn fig9_paths_on_the_p4_floorplan() {
        let paths = fig9_paths(&pentium4_147w());
        assert_eq!(paths.len(), 2);
        let l2u = &paths[0];
        // §4: stacking eliminates "one clock cycle" = half the route
        assert!(
            (l2u.ratio() - 0.5).abs() < 0.05,
            "load-to-use ratio {}",
            l2u.ratio()
        );
        let fpr = &paths[1];
        // §4: the 3D floorplan eliminates both detour cycles
        assert!(fpr.ratio() < 0.45, "FP read ratio {}", fpr.ratio());
    }

    #[test]
    fn d2d_hop_is_negligible_compared_to_block_crossings() {
        let paths = fig9_paths(&pentium4_147w());
        for p in paths {
            assert!(D2D_HOP_MM < 0.02 * p.planar_mm, "{}", p.name);
        }
    }
}
