//! Randomized property tests for the 2D→3D folder: legality and power
//! conservation on randomly generated (guillotine-cut) floorplans. Inputs
//! come from a deterministic family of seeds so failures reproduce
//! exactly.

use stacksim_floorplan::{fold, Block, Floorplan, FoldOptions, Rect};
use stacksim_rng::StdRng;

/// Recursively guillotine-cuts a rectangle into blocks, always producing a
/// legal, fully tiled floorplan.
fn cut(rect: Rect, cuts: &[(bool, f64)], out: &mut Vec<Rect>) {
    if cuts.is_empty() || rect.w < 2.0 || rect.h < 2.0 {
        out.push(rect);
        return;
    }
    let (vertical, frac) = cuts[0];
    let rest = &cuts[1..];
    let f = 0.3 + 0.4 * frac;
    if vertical {
        let w1 = rect.w * f;
        cut(Rect::new(rect.x, rect.y, w1, rect.h), rest, out);
        cut(
            Rect::new(rect.x + w1, rect.y, rect.w - w1, rect.h),
            rest,
            out,
        );
    } else {
        let h1 = rect.h * f;
        cut(Rect::new(rect.x, rect.y, rect.w, h1), rest, out);
        cut(
            Rect::new(rect.x, rect.y + h1, rect.w, rect.h - h1),
            rest,
            out,
        );
    }
}

fn random_floorplan(rng: &mut StdRng) -> Floorplan {
    let n_cuts = rng.gen_range(2usize..4);
    let cuts: Vec<(bool, f64)> = (0..n_cuts)
        .map(|_| (rng.gen_bool(0.5), rng.gen_range(0.0..1.0)))
        .collect();
    let n_powers = rng.gen_range(4usize..10);
    let powers: Vec<f64> = (0..n_powers).map(|_| rng.gen_range(0.1..2.5)).collect();
    let mut rects = Vec::new();
    cut(
        Rect::new(0.0, 0.0, 12.0, 10.0),
        &cuts[..cuts.len().min(4)],
        &mut rects,
    );
    let mut f = Floorplan::new("random", 12.0, 10.0);
    for (i, r) in rects.iter().enumerate() {
        let p = powers[i % powers.len()].max(0.1);
        f.push(Block::new(format!("b{i}"), *r, p * r.area()));
    }
    f
}

/// Folding any legal floorplan yields two legal dies that conserve the
/// (scaled) power and halve the footprint.
#[test]
fn fold_is_legal_and_conserves_power() {
    for seed in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let planar = random_floorplan(&mut rng);
        if planar.validate().is_err() {
            continue;
        }
        let folded = fold(
            &planar,
            FoldOptions {
                power_scale: 1.0,
                ..FoldOptions::default()
            },
        );
        let folded = match folded {
            Ok(f) => f,
            // extremely skewed cuts can defeat the packer; that is a
            // legitimate refusal, not a soundness failure
            Err(_) => continue,
        };
        assert!(folded.validate().is_ok());
        assert!((folded.total_power() - planar.total_power()).abs() < 1e-6);
        let per_die = folded.dies()[0].area();
        let frac = per_die / planar.area();
        assert!(frac > 0.4 && frac < 0.7, "footprint fraction {frac}");
    }
}

/// The folded peak stacked density never exceeds the worst case (2x) by
/// construction of the density-aware placer.
#[test]
fn fold_density_stays_below_double() {
    for seed in 100..116u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let planar = random_floorplan(&mut rng);
        if planar.validate().is_err() {
            continue;
        }
        let Ok(folded) = fold(
            &planar,
            FoldOptions {
                power_scale: 1.0,
                ..FoldOptions::default()
            },
        ) else {
            continue;
        };
        let planar_peak = planar.power_grid(24, 20).peak_density();
        let folded_peak = folded.peak_stacked_density(24, 20);
        assert!(
            folded_peak <= 2.0 * planar_peak + 1e-6,
            "folded {folded_peak} vs planar {planar_peak}"
        );
    }
}
