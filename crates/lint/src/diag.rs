//! The diagnostics engine: stable codes, severities, config-path spans and
//! two renderers (pretty terminal text and machine-readable JSON).
//!
//! Every diagnostic carries a stable `SLnnn` code so tooling (CI greps,
//! baselines, editors) can match on the *kind* of problem independent of
//! message wording. The span is a config path — `fig8.stack[1].block 'l2'` —
//! pointing at the offending field of the machine description, not a source
//! location: the descriptions being checked are built in code.

use std::collections::BTreeSet;
use std::fmt;

/// Schema tag stamped on every JSON diagnostic report, shared by
/// `stacksim check --format json` and `cargo xtask audit --format json`
/// so one consumer parses both.
pub const DIAG_SCHEMA: &str = "stacksim-diag/1";

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not fatal; the model can still be simulated.
    Warning,
    /// The model is inconsistent; simulating it would produce garbage or
    /// panic mid-run.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One finding of a lint pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`SL001`-style). Never reuse a retired code.
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Config path to the offending field, e.g. `fig8.stack.die 'dram32'`.
    pub span: String,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}\n  --> {}",
            self.severity, self.code, self.message, self.span
        )
    }
}

/// An ordered collection of diagnostics plus summary queries and renderers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    diags: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Records an error.
    pub fn error(
        &mut self,
        code: &'static str,
        span: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.diags.push(Diagnostic {
            code,
            severity: Severity::Error,
            span: span.into(),
            message: message.into(),
        });
    }

    /// Records a warning.
    pub fn warn(
        &mut self,
        code: &'static str,
        span: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.diags.push(Diagnostic {
            code,
            severity: Severity::Warning,
            span: span.into(),
            message: message.into(),
        });
    }

    /// Appends every diagnostic of `other`.
    pub fn merge(&mut self, other: Report) {
        self.diags.extend(other.diags);
    }

    /// Appends every diagnostic of `other` with `prefix.` prepended to each
    /// span (used to scope a per-experiment report into a combined one).
    pub fn merge_under(&mut self, prefix: &str, other: Report) {
        for mut d in other.diags {
            d.span = format!("{prefix}.{}", d.span);
            self.diags.push(d);
        }
    }

    /// All diagnostics, in the order they were recorded.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diags.len() - self.error_count()
    }

    /// Whether any error-severity diagnostic was recorded.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Whether the report is completely empty (no errors, no warnings).
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// The distinct codes present, sorted.
    pub fn codes(&self) -> BTreeSet<&'static str> {
        self.diags.iter().map(|d| d.code).collect()
    }

    /// Whether a diagnostic with the given code was recorded.
    pub fn has_code(&self, code: &str) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }

    /// Pretty terminal rendering: one `error[SLnnn]` block per diagnostic
    /// plus a summary line.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error{}, {} warning{}",
            self.error_count(),
            if self.error_count() == 1 { "" } else { "s" },
            self.warning_count(),
            if self.warning_count() == 1 { "" } else { "s" },
        ));
        out
    }

    /// Machine-readable JSON rendering: a single object tagged with the
    /// [`DIAG_SCHEMA`] version, a `diagnostics` array and
    /// `errors`/`warnings` counts. Output order is the recording order,
    /// so it is deterministic for a fixed model.
    pub fn render_json(&self) -> String {
        let mut out = format!("{{\"schema\":{},\"diagnostics\":[", json_str(DIAG_SCHEMA));
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":{},\"severity\":{},\"span\":{},\"message\":{}}}",
                json_str(d.code),
                json_str(&d.severity.to_string()),
                json_str(&d.span),
                json_str(&d.message),
            ));
        }
        out.push_str(&format!(
            "],\"errors\":{},\"warnings\":{}}}",
            self.error_count(),
            self.warning_count()
        ));
        out
    }
}

/// Encodes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_flags() {
        let mut r = Report::new();
        assert!(r.is_clean() && !r.has_errors());
        r.warn("SL999", "a.b", "looks odd");
        r.error("SL998", "a.c", "broken");
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has_errors() && !r.is_clean());
        assert!(r.has_code("SL998") && !r.has_code("SL000"));
        assert_eq!(r.codes().len(), 2);
    }

    #[test]
    fn pretty_rendering_names_code_and_span() {
        let mut r = Report::new();
        r.error("SL001", "fig8.die0", "blocks overlap");
        let text = r.render_pretty();
        assert!(text.contains("error[SL001]: blocks overlap"));
        assert!(text.contains("--> fig8.die0"));
        assert!(text.contains("1 error, 0 warnings"));
    }

    #[test]
    fn json_rendering_escapes_and_counts() {
        let mut r = Report::new();
        r.warn("SL010", "stack.layer \"tim\"", "odd\norder");
        let json = r.render_json();
        assert!(json.starts_with("{\"schema\":\"stacksim-diag/1\","));
        assert!(json.contains("\\\"tim\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"errors\":0"));
        assert!(json.contains("\"warnings\":1"));
        assert!(json.contains("\"severity\":\"warning\""));
    }

    #[test]
    fn merge_under_prefixes_spans() {
        let mut inner = Report::new();
        inner.error("SL001", "die0", "overlap");
        let mut outer = Report::new();
        outer.merge_under("fig8", inner);
        assert_eq!(outer.diagnostics()[0].span, "fig8.die0");
    }
}
