//! Static model validation for `stacksim`.
//!
//! Every result in the paper depends on the *descriptions* of the machines
//! being simulated — floorplans and their 2D→3D folds (§4), stacked thermal
//! stacks with per-layer materials (§2.3), multi-level cache hierarchies
//! (§3). An inconsistent description (overlapping blocks, a bond layer in
//! the wrong order, an L2 smaller than the L1) would otherwise surface deep
//! inside a run as a panic or, worse, as a silently wrong figure.
//!
//! This crate checks descriptions *before* simulation:
//!
//! - [`model::Model`] is a neutral bundle of "desc" mirrors of the
//!   simulation types, able to represent invalid states so the passes have
//!   something to reject;
//! - a [`Pass`] is one validation rule; [`PassRegistry::standard`] collects
//!   all of them (mirroring the experiment harness's registry);
//! - running a registry produces a [`Report`] of [`Diagnostic`]s — stable
//!   `SLnnn` codes, error/warning severities, config-path spans, and both
//!   pretty-terminal and JSON renderings.
//!
//! ```
//! use stacksim_lint::{Model, PassRegistry};
//!
//! let registry = PassRegistry::standard();
//! let report = registry.run(&Model::new());
//! assert!(report.is_clean());
//! ```
//!
//! The diagnostic code space is allocated in blocks: `SL00x` floorplan,
//! `SL01x` thermal, `SL02x` memory hierarchy, `SL03x` out-of-order core,
//! `SL04x` parameter sets, `SL05x` harness digest audit (emitted by
//! `stacksim-core`, which owns the experiment registry the audit inspects)
//! `SL06x` observability instrument tables and `SL07x` fault-injection
//! site tables.

pub mod diag;
pub mod model;
pub mod pass;
pub mod passes;

pub use diag::{Diagnostic, Report, Severity, DIAG_SCHEMA};
pub use model::{
    BlockDesc, DieDesc, FaultSiteDesc, FoldDesc, LayerDesc, Model, ObsTableDesc, PowerDesc,
    StackDesc, ThermalDesc, WireDesc, WirePairDesc,
};
pub use pass::{Pass, PassRegistry};
