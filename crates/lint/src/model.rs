//! The neutral machine-description view the lint passes run over.
//!
//! Passes do not consume the simulation types directly: several of those
//! types enforce part of their invariants in asserting constructors, which
//! would make it impossible to even *represent* the invalid descriptions the
//! linter exists to reject. Instead each component is mirrored into a plain
//! "desc" value — every field public, no invariants — and the real types
//! convert losslessly into descs via the `from_*` constructors. A [`Model`]
//! bundles whatever components one experiment uses; passes check the
//! components present and ignore the rest.

use stacksim_floorplan::{Floorplan, StackedFloorplan};
use stacksim_mem::{EngineConfig, HierarchyConfig};
use stacksim_ooo::{CoreConfig, WireConfig};
use stacksim_thermal::{Layer, LayerStack, SolverConfig};
use stacksim_workloads::WorkloadParams;

/// A placed rectangular block with a power budget.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockDesc {
    /// Block name.
    pub name: String,
    /// Lower-left x in mm.
    pub x: f64,
    /// Lower-left y in mm.
    pub y: f64,
    /// Width in mm.
    pub w: f64,
    /// Height in mm.
    pub h: f64,
    /// Power in watts.
    pub power: f64,
}

impl BlockDesc {
    /// Overlap area with another block in mm².
    pub fn overlap_area(&self, other: &BlockDesc) -> f64 {
        let ox = (self.x + self.w).min(other.x + other.w) - self.x.max(other.x);
        let oy = (self.y + self.h).min(other.y + other.h) - self.y.max(other.y);
        if ox > 0.0 && oy > 0.0 {
            ox * oy
        } else {
            0.0
        }
    }

    /// Block area in mm².
    pub fn area(&self) -> f64 {
        self.w * self.h
    }
}

/// One die's floorplan: a frame plus placed blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct DieDesc {
    /// Die name.
    pub name: String,
    /// Frame width in mm.
    pub width: f64,
    /// Frame height in mm.
    pub height: f64,
    /// Placed blocks.
    pub blocks: Vec<BlockDesc>,
}

impl DieDesc {
    /// Mirrors a real [`Floorplan`].
    pub fn from_floorplan(f: &Floorplan) -> Self {
        DieDesc {
            name: f.name().to_string(),
            width: f.width(),
            height: f.height(),
            blocks: f
                .blocks()
                .iter()
                .map(|b| BlockDesc {
                    name: b.name().to_string(),
                    x: b.rect().x,
                    y: b.rect().y,
                    w: b.rect().w,
                    h: b.rect().h,
                    power: b.power(),
                })
                .collect(),
        }
    }

    /// Sum of all block areas in mm².
    pub fn block_area(&self) -> f64 {
        self.blocks.iter().map(BlockDesc::area).sum()
    }

    /// Sum of all block powers in watts.
    pub fn total_power(&self) -> f64 {
        self.blocks.iter().map(|b| b.power).sum()
    }
}

/// A vertical stack of dies (heat-sink side first).
#[derive(Debug, Clone, PartialEq)]
pub struct StackDesc {
    /// Stack name.
    pub name: String,
    /// Dies, heat-sink side first.
    pub dies: Vec<DieDesc>,
}

impl StackDesc {
    /// Mirrors a real [`StackedFloorplan`].
    pub fn from_stacked(name: impl Into<String>, s: &StackedFloorplan) -> Self {
        StackDesc {
            name: name.into(),
            dies: s.dies().iter().map(DieDesc::from_floorplan).collect(),
        }
    }
}

/// A 2D→3D fold: the planar original and the folded result, for
/// conservation checks.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldDesc {
    /// Config path of this fold.
    pub path: String,
    /// The planar floorplan that was folded.
    pub planar: DieDesc,
    /// The folded two-die stack.
    pub folded: StackDesc,
    /// The power scale the fold applied (§4: 0.85 from shorter wires).
    pub power_scale: f64,
}

/// A wire route whose endpoint blocks must exist in the floorplan.
#[derive(Debug, Clone, PartialEq)]
pub struct WireDesc {
    /// Config path of this route.
    pub path: String,
    /// Route name (e.g. `load-to-use`).
    pub route: String,
    /// Block names the route connects.
    pub endpoints: Vec<String>,
    /// Block names available in the floorplan the route is drawn on.
    pub available: Vec<String>,
}

/// A rasterised power map's geometry (the grid itself is not needed for
/// validation, only its frame and total).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerDesc {
    /// Cells along x.
    pub nx: usize,
    /// Cells along y.
    pub ny: usize,
    /// Die width the grid covers, in mm.
    pub width_mm: f64,
    /// Die height the grid covers, in mm.
    pub height_mm: f64,
    /// Total injected power in watts.
    pub total_w: f64,
}

/// One layer of a thermal stack.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerDesc {
    /// Layer name.
    pub name: String,
    /// Thickness in metres.
    pub thickness_m: f64,
    /// Vertical conductivity in W/mK.
    pub k_vertical: f64,
    /// Lateral conductivity in W/mK.
    pub k_lateral: f64,
    /// Volumetric heat capacity in J/(m³·K).
    pub rhoc: f64,
    /// The power map, if this is an active layer.
    pub power: Option<PowerDesc>,
}

impl LayerDesc {
    /// Mirrors a real [`Layer`].
    pub fn from_layer(l: &Layer) -> Self {
        LayerDesc {
            name: l.name().to_string(),
            thickness_m: l.thickness(),
            k_vertical: l.conductivity(),
            k_lateral: l.lateral_conductivity(),
            rhoc: l.heat_capacity(),
            power: l.power().map(|g| {
                let (nx, ny) = g.dims();
                let (w, h) = g.die_dims();
                PowerDesc {
                    nx,
                    ny,
                    width_mm: w,
                    height_mm: h,
                    total_w: g.total(),
                }
            }),
        }
    }
}

/// A full thermal stack over a die footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalDesc {
    /// Config path of this stack.
    pub path: String,
    /// Die footprint width in mm.
    pub die_w_mm: f64,
    /// Die footprint height in mm.
    pub die_h_mm: f64,
    /// Layers, heat-sink side first.
    pub layers: Vec<LayerDesc>,
}

impl ThermalDesc {
    /// Mirrors a real [`LayerStack`].
    pub fn from_stack(path: impl Into<String>, s: &LayerStack) -> Self {
        let (w, h) = s.die_dims_mm();
        ThermalDesc {
            path: path.into(),
            die_w_mm: w,
            die_h_mm: h,
            layers: s.layers().iter().map(LayerDesc::from_layer).collect(),
        }
    }
}

/// One component's statically declared observability-instrument table
/// (the `NAMES` slice of its `obs` module). The SL060 pass checks the
/// tables themselves; the harness separately proves runtime
/// registrations stay inside the declared union.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsTableDesc {
    /// Config path of this table (e.g. `obs.mem`).
    pub path: String,
    /// Component tag every name must be prefixed with (e.g. `mem`).
    pub component: String,
    /// Declared instrument names.
    pub names: Vec<String>,
}

/// One crate's statically declared fault-site table (the `SITES` slice of
/// its `faults` module). The SL070 pass checks the tables — and the
/// declared injection points referencing them — the same way SL060 checks
/// instrument tables.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSiteDesc {
    /// Config path of this table (e.g. `faults.harness`).
    pub path: String,
    /// Component tag every site must be prefixed with (e.g. `harness`).
    pub component: String,
    /// Declared fault-site names.
    pub sites: Vec<String>,
}

/// A planar/folded wire-stage pair for the §4 pipeline-consistency checks.
#[derive(Debug, Clone, PartialEq)]
pub struct WirePairDesc {
    /// Config path of this pair.
    pub path: String,
    /// Wire stages before the 3D split.
    pub planar: WireConfig,
    /// Wire stages after the 3D split.
    pub folded: WireConfig,
}

/// Everything one experiment describes, bundled for the passes. Empty
/// component lists simply mean "not applicable" — a memory-study model
/// carries no thermal stacks and vice versa.
#[derive(Debug, Clone, Default, PartialEq)]
#[non_exhaustive]
pub struct Model {
    /// Standalone planar floorplans, with their config paths.
    pub dies: Vec<(String, DieDesc)>,
    /// Stacked floorplans, with their config paths.
    pub stacks: Vec<(String, StackDesc)>,
    /// 2D→3D folds (planar original + folded result).
    pub folds: Vec<FoldDesc>,
    /// Wire routes to resolve against their floorplans.
    pub wires: Vec<WireDesc>,
    /// Thermal layer stacks.
    pub thermal: Vec<ThermalDesc>,
    /// Memory-hierarchy configurations, with their config paths.
    pub hierarchies: Vec<(String, HierarchyConfig)>,
    /// Out-of-order core configurations, with their config paths.
    pub cores: Vec<(String, CoreConfig)>,
    /// Planar/folded wire-stage pairs.
    pub wire_pairs: Vec<WirePairDesc>,
    /// Workload-generation parameter sets, with their config paths.
    pub workloads: Vec<(String, WorkloadParams)>,
    /// Memory-engine configurations, with their config paths.
    pub engines: Vec<(String, EngineConfig)>,
    /// Thermal-solver configurations, with their config paths.
    pub solvers: Vec<(String, SolverConfig)>,
    /// Declared observability-instrument tables, one per component.
    pub obs_tables: Vec<ObsTableDesc>,
    /// Declared fault-site tables, one per instrumented crate.
    pub fault_sites: Vec<FaultSiteDesc>,
    /// Fault-site references from injection points in the code, as
    /// `(config path, site name)` pairs. Every reference must name a
    /// declared site; a declared site nothing references is stale.
    pub fault_refs: Vec<(String, String)>,
}

impl Model {
    /// An empty model (no components; every pass is a no-op on it).
    pub fn new() -> Self {
        Model::default()
    }

    /// Every die in the model — standalone, inside stacks and inside folds
    /// — with a config path for each.
    pub fn all_dies(&self) -> Vec<(String, &DieDesc)> {
        let mut out = Vec::new();
        for (path, d) in &self.dies {
            out.push((path.clone(), d));
        }
        for (path, s) in &self.stacks {
            for (i, d) in s.dies.iter().enumerate() {
                out.push((format!("{path}.die[{i}] '{}'", d.name), d));
            }
        }
        for f in &self.folds {
            for (i, d) in f.folded.dies.iter().enumerate() {
                out.push((format!("{}.folded.die[{i}] '{}'", f.path, d.name), d));
            }
        }
        out
    }

    /// Every stack in the model — standalone and inside folds.
    pub fn all_stacks(&self) -> Vec<(String, &StackDesc)> {
        let mut out = Vec::new();
        for (path, s) in &self.stacks {
            out.push((path.clone(), s));
        }
        for f in &self.folds {
            out.push((format!("{}.folded", f.path), &f.folded));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stacksim_floorplan::{uniform_die, PowerGrid};

    #[test]
    fn die_desc_mirrors_floorplan() {
        let f = uniform_die("dram", 13.0, 11.0, 3.1);
        let d = DieDesc::from_floorplan(&f);
        assert_eq!(d.name, "dram");
        assert_eq!(d.blocks.len(), 1);
        assert!((d.total_power() - 3.1).abs() < 1e-12);
        assert!((d.block_area() - 143.0).abs() < 1e-9);
    }

    #[test]
    fn layer_desc_mirrors_active_layer() {
        let mut g = PowerGrid::zero(4, 4, 13.0, 11.0);
        g.add(1, 1, 92.0);
        let l = Layer::active("active 1", 0.75e-3, 120.0, g);
        let d = LayerDesc::from_layer(&l);
        assert_eq!(d.name, "active 1");
        let p = d.power.expect("active layer has power");
        assert_eq!((p.nx, p.ny), (4, 4));
        assert!((p.total_w - 92.0).abs() < 1e-12);
    }

    #[test]
    fn all_dies_collects_from_every_container() {
        let f = uniform_die("a", 2.0, 2.0, 1.0);
        let d = DieDesc::from_floorplan(&f);
        let model = Model {
            dies: vec![("solo".into(), d.clone())],
            stacks: vec![(
                "st".into(),
                StackDesc {
                    name: "st".into(),
                    dies: vec![d.clone(), d.clone()],
                },
            )],
            folds: vec![FoldDesc {
                path: "fd".into(),
                planar: d.clone(),
                folded: StackDesc {
                    name: "fd".into(),
                    dies: vec![d.clone()],
                },
                power_scale: 1.0,
            }],
            ..Model::new()
        };
        assert_eq!(model.all_dies().len(), 4);
        assert_eq!(model.all_stacks().len(), 2);
    }
}
