//! The [`Pass`] trait and the pass registry.
//!
//! Mirrors the experiment harness's `Registry`: passes are cheap,
//! shareable, named units registered once and run as a batch. Each pass
//! inspects the components of a [`Model`] it understands and records
//! diagnostics; components it does not understand are ignored, so one
//! registry serves every experiment's model.

use crate::diag::Report;
use crate::model::Model;
use crate::passes;

/// One static validation rule over a machine description.
pub trait Pass: Send + Sync {
    /// Stable registry id, kebab-case (e.g. `floorplan-overlap`).
    fn id(&self) -> &'static str;

    /// The diagnostic codes this pass can emit.
    fn codes(&self) -> &'static [&'static str];

    /// One-line description of what the pass rejects.
    fn description(&self) -> &'static str;

    /// Checks `model`, recording findings in `report`.
    fn run(&self, model: &Model, report: &mut Report);
}

/// A named collection of lint passes.
pub struct PassRegistry {
    passes: Vec<Box<dyn Pass>>,
}

impl std::fmt::Debug for PassRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassRegistry")
            .field("passes", &self.ids())
            .finish()
    }
}

impl PassRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        PassRegistry { passes: Vec::new() }
    }

    /// Every model-validation pass shipped with the linter.
    pub fn standard() -> Self {
        let mut r = PassRegistry::new();
        for p in passes::all() {
            r.add(p);
        }
        r
    }

    /// Registers a pass.
    ///
    /// # Panics
    ///
    /// Panics if the id is already taken — two passes sharing an id would
    /// make diagnostics untraceable to their rule.
    pub fn add(&mut self, pass: Box<dyn Pass>) {
        assert!(
            self.get(pass.id()).is_none(),
            "duplicate pass id '{}'",
            pass.id()
        );
        self.passes.push(pass);
    }

    /// Registered ids, in registration order.
    pub fn ids(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.id()).collect()
    }

    /// Looks a pass up by id.
    pub fn get(&self, id: &str) -> Option<&dyn Pass> {
        self.passes.iter().find(|p| p.id() == id).map(AsRef::as_ref)
    }

    /// All passes, in registration order.
    pub fn passes(&self) -> impl Iterator<Item = &dyn Pass> {
        self.passes.iter().map(AsRef::as_ref)
    }

    /// Runs every pass over `model` and returns the combined report.
    pub fn run(&self, model: &Model) -> Report {
        let mut report = Report::new();
        for p in &self.passes {
            p.run(model, &mut report);
        }
        report
    }
}

impl Default for PassRegistry {
    fn default() -> Self {
        PassRegistry::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_has_unique_ids_and_codes() {
        let r = PassRegistry::standard();
        let ids = r.ids();
        assert!(ids.len() >= 12, "at least 12 passes, got {}", ids.len());
        let unique: std::collections::BTreeSet<_> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len(), "duplicate pass id");

        let mut codes = Vec::new();
        for p in r.passes() {
            assert!(!p.codes().is_empty(), "{} declares no codes", p.id());
            assert!(!p.description().is_empty());
            codes.extend_from_slice(p.codes());
        }
        let unique_codes: std::collections::BTreeSet<_> = codes.iter().collect();
        assert_eq!(unique_codes.len(), codes.len(), "a code is claimed twice");
        for c in &codes {
            assert!(c.starts_with("SL") && c.len() == 5, "malformed code {c:?}");
        }
    }

    #[test]
    fn empty_model_is_clean() {
        let r = PassRegistry::standard();
        let report = r.run(&Model::new());
        assert!(report.is_clean(), "{}", report.render_pretty());
    }

    #[test]
    #[should_panic(expected = "duplicate pass id")]
    fn duplicate_registration_panics() {
        let mut r = PassRegistry::standard();
        let first = PassRegistry::standard().ids()[0];
        for p in passes::all() {
            if p.id() == first {
                r.add(p);
            }
        }
    }
}
