//! Fault-site table passes.
//!
//! Every crate that hosts fault-injection points declares the site names
//! in a static table (its `faults` module's `SITES` slice), and every
//! injection point references a declared site. Mirroring both into the
//! model lets the linter prove the fault namespace is sound without
//! arming a plan: names are well-formed and collision-free, no injection
//! point references an undeclared site, and no declared site is dead.

use crate::diag::Report;
use crate::model::Model;
use crate::pass::Pass;

/// `SL070`: fault-site names must be unique — within a table and across
/// tables — and `<component>.<site>` under their component tag (errors);
/// an injection point referencing an undeclared site is an error; a
/// declared site with no injection point referencing it is a warning
/// (stale declaration), checked only when the model carries references
/// at all.
pub struct FaultSiteNames;

impl Pass for FaultSiteNames {
    fn id(&self) -> &'static str {
        "fault-site-names"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SL070"]
    }

    fn description(&self) -> &'static str {
        "fault-injection site names must be well-formed, collision-free and referenced"
    }

    fn run(&self, model: &Model, report: &mut Report) {
        let mut owner: std::collections::BTreeMap<&str, &str> = std::collections::BTreeMap::new();
        for table in &model.fault_sites {
            if table.component.is_empty() || table.component.contains('.') {
                report.error(
                    "SL070",
                    table.path.clone(),
                    format!(
                        "component tag '{}' must be a non-empty dot-free identifier",
                        table.component
                    ),
                );
            }
            let prefix = format!("{}.", table.component);
            let mut local = std::collections::BTreeSet::new();
            for site in &table.sites {
                let span = format!("{}.\"{}\"", table.path, site);
                if !local.insert(site.as_str()) {
                    report.error(
                        "SL070",
                        span.clone(),
                        format!("fault site '{site}' is declared twice in this table"),
                    );
                    continue;
                }
                match site.strip_prefix(&prefix) {
                    Some(rest) if !rest.is_empty() => {}
                    _ => {
                        report.error(
                            "SL070",
                            span.clone(),
                            format!(
                                "fault site '{site}' must be '{prefix}<site>' under its \
                                 component tag"
                            ),
                        );
                        continue;
                    }
                }
                match owner.get(site.as_str()) {
                    Some(other) => report.error(
                        "SL070",
                        span,
                        format!("fault site '{site}' collides with component '{other}'"),
                    ),
                    None => {
                        owner.insert(site.as_str(), table.component.as_str());
                    }
                }
            }
        }
        for (path, site) in &model.fault_refs {
            if !owner.contains_key(site.as_str()) {
                report.error(
                    "SL070",
                    format!("{path}.\"{site}\""),
                    format!("injection point references undeclared fault site '{site}'"),
                );
            }
        }
        // only meaningful when the model carries the reference inventory:
        // a site-table-only model cannot distinguish "dead" from "unseen"
        if !model.fault_refs.is_empty() {
            let referenced: std::collections::BTreeSet<&str> = model
                .fault_refs
                .iter()
                .map(|(_, site)| site.as_str())
                .collect();
            for table in &model.fault_sites {
                for site in &table.sites {
                    if !referenced.contains(site.as_str()) {
                        report.warn(
                            "SL070",
                            format!("{}.\"{}\"", table.path, site),
                            format!(
                                "fault site '{site}' is declared but no injection point \
                                 references it"
                            ),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FaultSiteDesc;

    fn table(component: &str, sites: &[&str]) -> FaultSiteDesc {
        FaultSiteDesc {
            path: format!("faults.{component}"),
            component: component.to_string(),
            sites: sites.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn run(tables: Vec<FaultSiteDesc>, refs: Vec<(&str, &str)>) -> Report {
        let model = Model {
            fault_sites: tables,
            fault_refs: refs
                .into_iter()
                .map(|(p, s)| (p.to_string(), s.to_string()))
                .collect(),
            ..Model::new()
        };
        let mut report = Report::new();
        FaultSiteNames.run(&model, &mut report);
        report
    }

    #[test]
    fn clean_tables_with_full_references_pass() {
        let r = run(
            vec![
                table("harness", &["harness.dispatch", "harness.cache.load"]),
                table("thermal", &["thermal.cg"]),
            ],
            vec![
                ("runner", "harness.dispatch"),
                ("cache", "harness.cache.load"),
                ("solver", "thermal.cg"),
            ],
        );
        assert!(r.is_clean(), "{}", r.render_pretty());
    }

    #[test]
    fn duplicate_and_cross_table_collisions_are_errors() {
        let r = run(vec![table("harness", &["harness.x", "harness.x"])], vec![]);
        assert!(
            r.has_code("SL070") && r.has_errors(),
            "{}",
            r.render_pretty()
        );
        let r = run(
            vec![
                table("harness", &["harness.x"]),
                FaultSiteDesc {
                    path: "faults.rogue".into(),
                    component: "harness".into(),
                    sites: vec!["harness.x".into()],
                },
            ],
            vec![],
        );
        assert!(r.has_code("SL070"), "{}", r.render_pretty());
    }

    #[test]
    fn missing_or_foreign_prefix_is_an_error() {
        let r = run(vec![table("harness", &["dispatch"])], vec![]);
        assert!(r.has_code("SL070"), "{}", r.render_pretty());
        let r = run(vec![table("harness", &["thermal.cg"])], vec![]);
        assert!(r.has_code("SL070"), "{}", r.render_pretty());
        let r = run(vec![table("harness", &["harness."])], vec![]);
        assert!(r.has_code("SL070"), "{}", r.render_pretty());
    }

    #[test]
    fn undeclared_reference_is_an_error() {
        let r = run(
            vec![table("harness", &["harness.dispatch"])],
            vec![
                ("runner", "harness.dispatch"),
                ("runner", "harness.nonesuch"),
            ],
        );
        assert!(
            r.has_code("SL070") && r.has_errors(),
            "{}",
            r.render_pretty()
        );
    }

    #[test]
    fn unreferenced_site_is_a_warning_only_with_refs_present() {
        let r = run(
            vec![table("harness", &["harness.dispatch", "harness.dead"])],
            vec![("runner", "harness.dispatch")],
        );
        assert!(r.has_code("SL070"), "{}", r.render_pretty());
        assert!(!r.has_errors(), "stale declaration is a warning");
        // with no reference inventory at all, no staleness is claimed
        let r = run(vec![table("harness", &["harness.dead"])], vec![]);
        assert!(r.is_clean(), "{}", r.render_pretty());
    }
}
