//! Floorplan passes: block legality, fold conservation, wire routing and
//! die-to-die alignment (§4 of the paper).

use super::positive;
use crate::diag::Report;
use crate::model::{DieDesc, Model};
use crate::pass::Pass;

/// Geometric slack in mm below which differences are floating-point noise
/// (matches `StackedFloorplan::validate`).
const GEOM_EPS: f64 = 1e-9;

/// Overlap area in mm² below which two blocks merely abut (matches
/// `Floorplan::validate`'s `EPS_AREA`).
const OVERLAP_EPS_AREA: f64 = 1e-6;

/// Out-of-frame slack in mm (matches `Floorplan::validate`).
const BOUNDS_EPS: f64 = 1e-6;

/// Relative tolerance for the fold conservation checks.
const FOLD_RTOL: f64 = 1e-6;

/// `SL001`: no two blocks of one die may overlap.
pub struct BlockOverlap;

impl Pass for BlockOverlap {
    fn id(&self) -> &'static str {
        "floorplan-overlap"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SL001"]
    }

    fn description(&self) -> &'static str {
        "blocks placed on one die must not overlap"
    }

    fn run(&self, model: &Model, report: &mut Report) {
        for (path, die) in model.all_dies() {
            for (i, a) in die.blocks.iter().enumerate() {
                for b in &die.blocks[i + 1..] {
                    let ov = a.overlap_area(b);
                    if ov > OVERLAP_EPS_AREA {
                        report.error(
                            "SL001",
                            format!("{path}.block '{}'", a.name),
                            format!(
                                "block '{}' overlaps block '{}' by {ov:.4} mm²",
                                a.name, b.name
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// `SL002`: every block must be degenerate-free and inside its die frame.
pub struct BlockBounds;

impl Pass for BlockBounds {
    fn id(&self) -> &'static str {
        "floorplan-bounds"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SL002"]
    }

    fn description(&self) -> &'static str {
        "blocks must have positive dimensions and lie inside the die frame"
    }

    fn run(&self, model: &Model, report: &mut Report) {
        for (path, die) in model.all_dies() {
            for b in &die.blocks {
                let span = format!("{path}.block '{}'", b.name);
                if !positive(b.w) || !positive(b.h) {
                    report.error(
                        "SL002",
                        span,
                        format!("degenerate block: {} × {} mm", b.w, b.h),
                    );
                    continue;
                }
                if b.x < -BOUNDS_EPS
                    || b.y < -BOUNDS_EPS
                    || b.x + b.w > die.width + BOUNDS_EPS
                    || b.y + b.h > die.height + BOUNDS_EPS
                {
                    report.error(
                        "SL002",
                        span,
                        format!(
                            "block at ({}, {}) size {} × {} leaves the {} × {} mm die frame",
                            b.x, b.y, b.w, b.h, die.width, die.height
                        ),
                    );
                }
            }
        }
    }
}

/// `SL003`: a 2D→3D fold must conserve total block area — the fold splits
/// blocks across dies, it does not shrink or grow them.
pub struct FoldAreaConservation;

impl Pass for FoldAreaConservation {
    fn id(&self) -> &'static str {
        "fold-area"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SL003"]
    }

    fn description(&self) -> &'static str {
        "folding a planar die must conserve total block area"
    }

    fn run(&self, model: &Model, report: &mut Report) {
        for f in &model.folds {
            let planar = f.planar.block_area();
            let folded: f64 = f.folded.dies.iter().map(DieDesc::block_area).sum();
            if (folded - planar).abs() > FOLD_RTOL * planar.max(GEOM_EPS) {
                report.error(
                    "SL003",
                    format!("{}.folded", f.path),
                    format!(
                        "fold changed total block area: planar {planar:.4} mm², folded {folded:.4} mm²"
                    ),
                );
            }
        }
    }
}

/// `SL004`: a fold must conserve power up to its declared scale factor
/// (§4: shorter wires save ~15%, so the scale is typically 0.85).
pub struct FoldPowerConservation;

impl Pass for FoldPowerConservation {
    fn id(&self) -> &'static str {
        "fold-power"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SL004"]
    }

    fn description(&self) -> &'static str {
        "folded power must equal planar power times the declared scale"
    }

    fn run(&self, model: &Model, report: &mut Report) {
        for f in &model.folds {
            if !positive(f.power_scale) || f.power_scale > 1.0 + FOLD_RTOL {
                report.error(
                    "SL004",
                    format!("{}.power_scale", f.path),
                    format!(
                        "power scale {} is outside (0, 1]: a fold cannot add power",
                        f.power_scale
                    ),
                );
                continue;
            }
            let expected = f.planar.total_power() * f.power_scale;
            let folded: f64 = f.folded.dies.iter().map(DieDesc::total_power).sum();
            if (folded - expected).abs() > FOLD_RTOL * expected.max(GEOM_EPS) {
                report.error(
                    "SL004",
                    format!("{}.folded", f.path),
                    format!(
                        "folded power {folded:.3} W differs from planar {:.3} W × scale {} = {expected:.3} W",
                        f.planar.total_power(),
                        f.power_scale
                    ),
                );
            }
        }
    }
}

/// `SL005`: every wire-route endpoint must name a block that exists in the
/// floorplan the route is drawn on.
pub struct OrphanWire;

impl Pass for OrphanWire {
    fn id(&self) -> &'static str {
        "wire-endpoints"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SL005"]
    }

    fn description(&self) -> &'static str {
        "wire routes must connect blocks that exist in the floorplan"
    }

    fn run(&self, model: &Model, report: &mut Report) {
        for w in &model.wires {
            for ep in &w.endpoints {
                if !w.available.contains(ep) {
                    report.error(
                        "SL005",
                        format!("{}.route '{}'", w.path, w.route),
                        format!("endpoint block '{ep}' does not exist in the floorplan"),
                    );
                }
            }
        }
    }
}

/// `SL006`: all dies of a stack must share one frame — face-to-face vias
/// between misaligned die frames cannot be placed.
pub struct StackAlignment;

impl Pass for StackAlignment {
    fn id(&self) -> &'static str {
        "stack-alignment"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SL006"]
    }

    fn description(&self) -> &'static str {
        "stacked dies must share the same frame for F2F via alignment"
    }

    fn run(&self, model: &Model, report: &mut Report) {
        for (path, stack) in model.all_stacks() {
            if stack.dies.is_empty() {
                report.error("SL006", path, "stack contains no dies");
                continue;
            }
            let first = &stack.dies[0];
            for (i, d) in stack.dies.iter().enumerate().skip(1) {
                if (d.width - first.width).abs() > GEOM_EPS
                    || (d.height - first.height).abs() > GEOM_EPS
                {
                    report.error(
                        "SL006",
                        format!("{path}.die[{i}] '{}'", d.name),
                        format!(
                            "die frame {} × {} mm does not match die[0] '{}' at {} × {} mm",
                            d.width, d.height, first.name, first.width, first.height
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BlockDesc, FoldDesc, StackDesc, WireDesc};

    fn block(name: &str, x: f64, y: f64, w: f64, h: f64, power: f64) -> BlockDesc {
        BlockDesc {
            name: name.into(),
            x,
            y,
            w,
            h,
            power,
        }
    }

    fn die(name: &str, w: f64, h: f64, blocks: Vec<BlockDesc>) -> DieDesc {
        DieDesc {
            name: name.into(),
            width: w,
            height: h,
            blocks,
        }
    }

    fn run(pass: &dyn Pass, model: &Model) -> Report {
        let mut r = Report::new();
        pass.run(model, &mut r);
        r
    }

    #[test]
    fn sl001_fires_on_overlapping_blocks() {
        let model = Model {
            dies: vec![(
                "fx".into(),
                die(
                    "d",
                    10.0,
                    10.0,
                    vec![
                        block("a", 0.0, 0.0, 5.0, 5.0, 1.0),
                        block("b", 4.0, 4.0, 5.0, 5.0, 1.0),
                    ],
                ),
            )],
            ..Model::new()
        };
        let r = run(&BlockOverlap, &model);
        assert!(r.has_code("SL001"), "{}", r.render_pretty());
        assert!(r.has_errors());
        // non-overlapping pair is clean
        let clean = Model {
            dies: vec![(
                "fx".into(),
                die(
                    "d",
                    10.0,
                    10.0,
                    vec![
                        block("a", 0.0, 0.0, 5.0, 5.0, 1.0),
                        block("b", 5.0, 5.0, 5.0, 5.0, 1.0),
                    ],
                ),
            )],
            ..Model::new()
        };
        assert!(run(&BlockOverlap, &clean).is_clean());
    }

    #[test]
    fn sl002_fires_on_out_of_bounds_and_degenerate_blocks() {
        let model = Model {
            dies: vec![(
                "fx".into(),
                die(
                    "d",
                    10.0,
                    10.0,
                    vec![
                        block("off", 8.0, 8.0, 5.0, 5.0, 1.0),
                        block("flat", 0.0, 0.0, 0.0, 2.0, 0.0),
                    ],
                ),
            )],
            ..Model::new()
        };
        let r = run(&BlockBounds, &model);
        assert!(r.has_code("SL002"));
        assert_eq!(r.error_count(), 2);
    }

    #[test]
    fn sl003_fires_when_fold_loses_area() {
        let planar = die(
            "p",
            10.0,
            10.0,
            vec![block("a", 0.0, 0.0, 10.0, 10.0, 50.0)],
        );
        let model = Model {
            folds: vec![FoldDesc {
                path: "fx".into(),
                planar: planar.clone(),
                folded: StackDesc {
                    name: "f".into(),
                    // only half the area survived the fold
                    dies: vec![die(
                        "f0",
                        7.1,
                        7.1,
                        vec![block("a", 0.0, 0.0, 7.1, 7.1, 42.5)],
                    )],
                },
                power_scale: 0.85,
            }],
            ..Model::new()
        };
        let r = run(&FoldAreaConservation, &model);
        assert!(r.has_code("SL003"), "{}", r.render_pretty());
    }

    #[test]
    fn sl004_fires_on_power_mismatch_and_bad_scale() {
        let planar = die(
            "p",
            10.0,
            10.0,
            vec![block("a", 0.0, 0.0, 10.0, 10.0, 100.0)],
        );
        let folded = StackDesc {
            name: "f".into(),
            dies: vec![die(
                "f0",
                10.0,
                10.0,
                vec![block("a", 0.0, 0.0, 10.0, 10.0, 100.0)],
            )],
        };
        // folded keeps 100 W but the scale promises 85 W
        let model = Model {
            folds: vec![FoldDesc {
                path: "fx".into(),
                planar: planar.clone(),
                folded: folded.clone(),
                power_scale: 0.85,
            }],
            ..Model::new()
        };
        assert!(run(&FoldPowerConservation, &model).has_code("SL004"));

        // a scale above 1 is rejected outright
        let model = Model {
            folds: vec![FoldDesc {
                path: "fx".into(),
                planar,
                folded,
                power_scale: 1.5,
            }],
            ..Model::new()
        };
        assert!(run(&FoldPowerConservation, &model).has_code("SL004"));
    }

    #[test]
    fn sl005_fires_on_orphan_wire() {
        let model = Model {
            wires: vec![WireDesc {
                path: "fx".into(),
                route: "load-to-use".into(),
                endpoints: vec!["dcache".into(), "alu9".into()],
                available: vec!["dcache".into(), "fu".into()],
            }],
            ..Model::new()
        };
        let r = run(&OrphanWire, &model);
        assert!(r.has_code("SL005"));
        assert_eq!(r.error_count(), 1, "only the missing endpoint fires");
    }

    #[test]
    fn sl006_fires_on_mismatched_die_frames() {
        let model = Model {
            stacks: vec![(
                "fx".into(),
                StackDesc {
                    name: "s".into(),
                    dies: vec![
                        die("cpu", 13.0, 11.0, vec![]),
                        die("dram", 10.0, 10.0, vec![]),
                    ],
                },
            )],
            ..Model::new()
        };
        let r = run(&StackAlignment, &model);
        assert!(r.has_code("SL006"), "{}", r.render_pretty());
    }
}
