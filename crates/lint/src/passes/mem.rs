//! Memory-hierarchy passes: cache geometry, inclusion capacity and
//! bus/DRAM timing (§3, Table 3 of the paper).

use stacksim_mem::{HierarchyConfig, StackedLevel};

use super::positive;
use crate::diag::Report;
use crate::model::Model;
use crate::pass::Pass;

/// `SL020`: every cache and DRAM array must have internally consistent
/// geometry (power-of-two sets, non-zero ways, sector/line divisibility…).
/// Delegates to the config types' own `validate` so the rules live with
/// the types.
pub struct CacheGeometry;

impl Pass for CacheGeometry {
    fn id(&self) -> &'static str {
        "mem-geometry"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SL020"]
    }

    fn description(&self) -> &'static str {
        "cache and DRAM geometry must be internally consistent"
    }

    fn run(&self, model: &Model, report: &mut Report) {
        for (path, h) in &model.hierarchies {
            if h.cpus == 0 {
                report.error("SL020", format!("{path}.cpus"), "hierarchy has no CPUs");
            }
            let caches = [("l1i", Some(h.l1i)), ("l1d", Some(h.l1d)), ("l2", h.l2)];
            for (field, cache) in caches {
                if let Some(c) = cache {
                    if let Err(e) = c.validate() {
                        report.error("SL020", format!("{path}.{field}"), e.to_string());
                    }
                }
            }
            if let StackedLevel::Dram { cache, dram } = &h.stacked {
                if let Err(e) = cache.validate() {
                    report.error("SL020", format!("{path}.stacked.cache"), e.to_string());
                }
                if let Err(e) = dram.validate() {
                    report.error("SL020", format!("{path}.stacked.dram"), e.to_string());
                }
                if cache.sector_size() != h.l1d.line_size {
                    report.error(
                        "SL020",
                        format!("{path}.stacked.cache"),
                        format!(
                            "stacked sector size {} B must equal the L1 line size {} B",
                            cache.sector_size(),
                            h.l1d.line_size
                        ),
                    );
                }
            }
            if let Err(e) = h.memory.dram.validate() {
                report.error("SL020", format!("{path}.memory.dram"), e.to_string());
            }
        }
    }
}

/// `SL021`: capacities must nest — L1 ⊆ L2 ⊆ stacked LLC — or an inclusive
/// hierarchy cannot hold its own inner levels.
pub struct InclusionCapacity;

fn check_inclusion(path: &str, h: &HierarchyConfig, report: &mut Report) {
    if let Some(l2) = &h.l2 {
        for (field, l1) in [("l1i", &h.l1i), ("l1d", &h.l1d)] {
            if l1.capacity > l2.capacity {
                report.error(
                    "SL021",
                    format!("{path}.{field}"),
                    format!(
                        "{field} capacity {} B exceeds the L2 capacity {} B",
                        l1.capacity, l2.capacity
                    ),
                );
            }
        }
    }
    if let StackedLevel::Dram { cache, .. } = &h.stacked {
        let (inner_name, inner) = match &h.l2 {
            Some(l2) => ("l2", l2.capacity),
            None => ("l1d", h.l1d.capacity),
        };
        if inner > cache.capacity {
            report.error(
                "SL021",
                format!("{path}.stacked.cache"),
                format!(
                    "stacked LLC capacity {} B is smaller than the inner {inner_name} ({} B)",
                    cache.capacity, inner
                ),
            );
        }
    }
}

impl Pass for InclusionCapacity {
    fn id(&self) -> &'static str {
        "mem-inclusion"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SL021"]
    }

    fn description(&self) -> &'static str {
        "cache capacities must nest: L1 ⊆ L2 ⊆ stacked LLC"
    }

    fn run(&self, model: &Model, report: &mut Report) {
        for (path, h) in &model.hierarchies {
            check_inclusion(path, h, report);
        }
    }
}

/// `SL022`: the off-die bus needs positive bandwidth and clock, and the
/// DRAM bank state machines need non-zero delays.
pub struct BusTiming;

impl Pass for BusTiming {
    fn id(&self) -> &'static str {
        "mem-bus-timing"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SL022"]
    }

    fn description(&self) -> &'static str {
        "bus bandwidth/clock and DRAM delays must be non-zero"
    }

    fn run(&self, model: &Model, report: &mut Report) {
        for (path, h) in &model.hierarchies {
            for (what, v) in [
                ("bandwidth", h.bus.bandwidth_bytes_per_sec),
                ("core frequency", h.bus.core_hz),
            ] {
                if !positive(v) || !v.is_finite() {
                    report.error(
                        "SL022",
                        format!("{path}.bus"),
                        format!("bus {what} is {v}; it must be positive and finite"),
                    );
                }
            }
            let mut timings = vec![("memory.dram", h.memory.dram.timing)];
            if let StackedLevel::Dram { dram, .. } = &h.stacked {
                timings.push(("stacked.dram", dram.timing));
            }
            for (field, t) in timings {
                for (what, cycles) in [
                    ("page-open", t.page_open),
                    ("precharge", t.precharge),
                    ("read", t.read),
                    ("burst", t.burst),
                ] {
                    if cycles == 0 {
                        report.error(
                            "SL022",
                            format!("{path}.{field}.timing"),
                            format!("{what} delay is 0 cycles"),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stacksim_mem::CacheConfig;

    fn with(h: HierarchyConfig) -> Model {
        Model {
            hierarchies: vec![("fx".into(), h)],
            ..Model::new()
        }
    }

    fn run(pass: &dyn Pass, model: &Model) -> Report {
        let mut r = Report::new();
        pass.run(model, &mut r);
        r
    }

    #[test]
    fn sl020_fires_on_non_power_of_two_sets() {
        let mut h = HierarchyConfig::core2_baseline();
        h.l1d.line_size = 48; // not a power of two
        let r = run(&CacheGeometry, &with(h));
        assert!(r.has_code("SL020"), "{}", r.render_pretty());

        let mut h = HierarchyConfig::core2_baseline();
        h.l2 = Some(CacheConfig {
            ways: 0,
            ..CacheConfig::l2_4mb()
        });
        assert!(run(&CacheGeometry, &with(h)).has_code("SL020"));
    }

    #[test]
    fn sl020_accepts_all_fig7_options() {
        for (_, h) in HierarchyConfig::fig7_options() {
            assert!(run(&CacheGeometry, &with(h)).is_clean());
        }
    }

    #[test]
    fn sl021_fires_when_l1_exceeds_l2() {
        let mut h = HierarchyConfig::core2_baseline();
        h.l1d.capacity = 8 << 20; // 8 MB L1 over a 4 MB L2
        let r = run(&InclusionCapacity, &with(h));
        assert!(r.has_code("SL021"), "{}", r.render_pretty());
    }

    #[test]
    fn sl021_fires_when_stacked_llc_is_too_small() {
        let mut h = HierarchyConfig::stacked_dram_32mb();
        if let StackedLevel::Dram { cache, .. } = &mut h.stacked {
            cache.capacity = 16 << 10; // smaller than the 32 KB L1
        }
        assert!(run(&InclusionCapacity, &with(h)).has_code("SL021"));
    }

    #[test]
    fn sl022_fires_on_zero_bus_and_zero_dram_read() {
        let mut h = HierarchyConfig::core2_baseline();
        h.bus.bandwidth_bytes_per_sec = 0.0;
        h.memory.dram.timing.read = 0;
        let r = run(&BusTiming, &with(h));
        assert!(r.has_code("SL022"));
        assert_eq!(r.error_count(), 2);
    }
}
