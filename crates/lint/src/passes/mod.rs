//! The concrete lint passes, grouped by the model crate they check.

pub mod faults;
pub mod floorplan;
pub mod mem;
pub mod obs;
pub mod ooo;
pub mod params;
pub mod thermal;

use crate::pass::Pass;

/// Strictly-positive check that rejects NaN (which every plain `>`
/// comparison silently lets through on the negated side).
pub(crate) fn positive(v: f64) -> bool {
    v.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater)
}

/// Every pass of the standard registry, in code order.
pub fn all() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(floorplan::BlockOverlap),
        Box::new(floorplan::BlockBounds),
        Box::new(floorplan::FoldAreaConservation),
        Box::new(floorplan::FoldPowerConservation),
        Box::new(floorplan::OrphanWire),
        Box::new(floorplan::StackAlignment),
        Box::new(thermal::LayerOrder),
        Box::new(thermal::LayerParams),
        Box::new(thermal::PowerGridMatch),
        Box::new(thermal::ActivePower),
        Box::new(mem::CacheGeometry),
        Box::new(mem::InclusionCapacity),
        Box::new(mem::BusTiming),
        Box::new(ooo::WireStages),
        Box::new(ooo::CoreResources),
        Box::new(params::WorkloadParamsValid),
        Box::new(params::EngineConfigValid),
        Box::new(params::SolverConfigValid),
        Box::new(params::SolverThreads),
        Box::new(obs::ObsInstrumentNames),
        Box::new(faults::FaultSiteNames),
    ]
}
