//! Observability-instrument table passes.
//!
//! Every instrumented crate declares its instrument names in a static
//! table (its `obs` module's `NAMES` slice). Mirroring those tables into
//! the model lets the linter prove the namespace is well-formed without
//! running anything: names carry their component prefix, no component
//! declares a name twice, and no name is claimed by two components (a
//! collision would silently merge two unrelated instruments in the
//! process-global registry).

use crate::diag::Report;
use crate::model::Model;
use crate::pass::Pass;

/// `SL060` (error): declared instrument names must be unique — within a
/// component's table and across components — and every name must be
/// `<component>.<metric>` under its own component tag.
pub struct ObsInstrumentNames;

impl Pass for ObsInstrumentNames {
    fn id(&self) -> &'static str {
        "obs-instrument-names"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SL060"]
    }

    fn description(&self) -> &'static str {
        "observability instrument names must be well-formed and collision-free"
    }

    fn run(&self, model: &Model, report: &mut Report) {
        let mut owner: std::collections::BTreeMap<&str, &str> = std::collections::BTreeMap::new();
        for table in &model.obs_tables {
            if table.component.is_empty() || table.component.contains('.') {
                report.error(
                    "SL060",
                    table.path.clone(),
                    format!(
                        "component tag '{}' must be a non-empty dot-free identifier",
                        table.component
                    ),
                );
            }
            let prefix = format!("{}.", table.component);
            let mut local = std::collections::BTreeSet::new();
            for name in &table.names {
                let span = format!("{}.\"{}\"", table.path, name);
                if !local.insert(name.as_str()) {
                    report.error(
                        "SL060",
                        span.clone(),
                        format!("instrument '{name}' is declared twice in this table"),
                    );
                    continue;
                }
                match name.strip_prefix(&prefix) {
                    Some(metric) if !metric.is_empty() => {}
                    _ => {
                        report.error(
                            "SL060",
                            span.clone(),
                            format!(
                                "instrument '{name}' must be '{}<metric>' under its component tag",
                                prefix
                            ),
                        );
                        continue;
                    }
                }
                match owner.get(name.as_str()) {
                    Some(other) => report.error(
                        "SL060",
                        span,
                        format!("instrument '{name}' collides with component '{other}'"),
                    ),
                    None => {
                        owner.insert(name.as_str(), table.component.as_str());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ObsTableDesc;

    fn table(component: &str, names: &[&str]) -> ObsTableDesc {
        ObsTableDesc {
            path: format!("obs.{component}"),
            component: component.to_string(),
            names: names.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn run(tables: Vec<ObsTableDesc>) -> Report {
        let model = Model {
            obs_tables: tables,
            ..Model::new()
        };
        let mut report = Report::new();
        ObsInstrumentNames.run(&model, &mut report);
        report
    }

    #[test]
    fn clean_tables_pass() {
        let r = run(vec![
            table("mem", &["mem.accesses", "mem.bus.bytes"]),
            table("thermal", &["thermal.cg.solves"]),
        ]);
        assert!(r.is_clean(), "{}", r.render_pretty());
    }

    #[test]
    fn duplicate_within_a_table_is_an_error() {
        let r = run(vec![table("mem", &["mem.accesses", "mem.accesses"])]);
        assert!(
            r.has_code("SL060") && r.has_errors(),
            "{}",
            r.render_pretty()
        );
    }

    #[test]
    fn missing_or_foreign_prefix_is_an_error() {
        let r = run(vec![table("mem", &["accesses"])]);
        assert!(r.has_code("SL060"), "{}", r.render_pretty());
        let r = run(vec![table("mem", &["thermal.cg.solves"])]);
        assert!(r.has_code("SL060"), "{}", r.render_pretty());
        // a bare "mem." with no metric part is also malformed
        let r = run(vec![table("mem", &["mem."])]);
        assert!(r.has_code("SL060"), "{}", r.render_pretty());
    }

    #[test]
    fn cross_component_collision_is_an_error() {
        // two tables claiming one name: only reachable when a table
        // mis-tags its component, but the registry would merge them
        let r = run(vec![
            table("mem", &["mem.accesses"]),
            ObsTableDesc {
                path: "obs.rogue".into(),
                component: "mem".into(),
                names: vec!["mem.accesses".into()],
            },
        ]);
        assert!(r.has_code("SL060"), "{}", r.render_pretty());
    }
}
