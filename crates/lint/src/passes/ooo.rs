//! Out-of-order core passes: wire-stage consistency across the 3D split
//! and resource sanity (§4, Table 4 of the paper).

use stacksim_ooo::WireConfig;

use crate::diag::Report;
use crate::model::Model;
use crate::pass::Pass;

/// A stage-count accessor for one Table-4 wire path.
type StageGetter = fn(&WireConfig) -> u32;

/// The ten Table-4 wire paths, as field accessors on [`WireConfig`].
fn wire_paths() -> [(&'static str, StageGetter); 10] {
    [
        ("front_end", |w| w.front_end),
        ("trace_cache", |w| w.trace_cache),
        ("rename_alloc", |w| w.rename_alloc),
        ("fp_bypass", |w| w.fp_bypass),
        ("int_rf_read", |w| w.int_rf_read),
        ("dcache_read", |w| w.dcache_read),
        ("instruction_loop", |w| w.instruction_loop),
        ("retire_dealloc", |w| w.retire_dealloc),
        ("fp_load", |w| w.fp_load),
        ("store_lifetime", |w| w.store_lifetime),
    ]
}

/// `SL030` (error) / `SL031` (warning): folding shortens wires, so no path
/// may gain stages, and the total elimination should land near the paper's
/// ~25% ("% of Stages Eliminated", Table 4).
pub struct WireStages;

impl Pass for WireStages {
    fn id(&self) -> &'static str {
        "ooo-wire-stages"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SL030", "SL031"]
    }

    fn description(&self) -> &'static str {
        "folded wire paths may not gain stages; total elimination should be ~10–40%"
    }

    fn run(&self, model: &Model, report: &mut Report) {
        for pair in &model.wire_pairs {
            for (name, get) in wire_paths() {
                let planar = get(&pair.planar);
                let folded = get(&pair.folded);
                if folded > planar {
                    report.error(
                        "SL030",
                        format!("{}.{name}", pair.path),
                        format!(
                            "folded path has {folded} stages but the planar machine only {planar}; \
                             folding cannot lengthen a wire"
                        ),
                    );
                }
            }
            let planar_total = pair.planar.total_stages();
            if planar_total == 0 {
                report.error(
                    "SL030",
                    pair.path.clone(),
                    "planar wire configuration has no stages at all",
                );
                continue;
            }
            let eliminated = 1.0 - f64::from(pair.folded.total_stages()) / f64::from(planar_total);
            if !(0.10..=0.40).contains(&eliminated) {
                report.warn(
                    "SL031",
                    pair.path.clone(),
                    format!(
                        "total stage elimination is {:.0}%, outside the 10–40% band around \
                         Table 4's ~25%",
                        eliminated * 100.0
                    ),
                );
            }
        }
    }
}

/// `SL032`: a core with a zero-sized structural resource cannot retire a
/// single instruction — the simulation would deadlock or divide by zero.
pub struct CoreResources;

impl Pass for CoreResources {
    fn id(&self) -> &'static str {
        "ooo-core-resources"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SL032"]
    }

    fn description(&self) -> &'static str {
        "core widths, queues and units must all be non-zero"
    }

    fn run(&self, model: &Model, report: &mut Report) {
        for (path, c) in &model.cores {
            let resources = [
                ("rename_width", c.rename_width as usize),
                ("issue_width", c.issue_width as usize),
                ("retire_width", c.retire_width as usize),
                ("rob", c.rob),
                ("rs", c.rs),
                ("store_queue", c.store_queue),
                ("phys_regs", c.phys_regs),
                ("int_units", c.int_units as usize),
                ("mem_ports", c.mem_ports as usize),
            ];
            for (field, v) in resources {
                if v == 0 {
                    report.error(
                        "SL032",
                        format!("{path}.{field}"),
                        format!("{field} is 0; the core cannot make progress"),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::WirePairDesc;
    use stacksim_ooo::CoreConfig;

    fn run(pass: &dyn Pass, model: &Model) -> Report {
        let mut r = Report::new();
        pass.run(model, &mut r);
        r
    }

    fn pair(planar: WireConfig, folded: WireConfig) -> Model {
        Model {
            wire_pairs: vec![WirePairDesc {
                path: "fx".into(),
                planar,
                folded,
            }],
            ..Model::new()
        }
    }

    #[test]
    fn sl030_fires_when_a_folded_path_gains_stages() {
        let mut folded = WireConfig::folded_3d();
        folded.dcache_read = WireConfig::planar().dcache_read + 2;
        let r = run(&WireStages, &pair(WireConfig::planar(), folded));
        assert!(r.has_code("SL030"), "{}", r.render_pretty());
    }

    #[test]
    fn sl031_warns_when_elimination_is_implausible() {
        // identical configs: 0% eliminated, below the 10% floor
        let r = run(
            &WireStages,
            &pair(WireConfig::planar(), WireConfig::planar()),
        );
        assert!(r.has_code("SL031"));
        assert!(!r.has_errors(), "SL031 is a warning");
    }

    #[test]
    fn table4_pair_is_clean() {
        let r = run(
            &WireStages,
            &pair(WireConfig::planar(), WireConfig::folded_3d()),
        );
        assert!(r.is_clean(), "{}", r.render_pretty());
    }

    #[test]
    fn sl032_fires_on_zero_rob() {
        let mut c = CoreConfig::planar();
        c.rob = 0;
        let model = Model {
            cores: vec![("fx".into(), c)],
            ..Model::new()
        };
        let r = run(&CoreResources, &model);
        assert!(r.has_code("SL032"), "{}", r.render_pretty());
    }
}
