//! Parameter passes: workload, issue-engine and thermal-solver
//! configurations. These delegate to the config types' own `validate`
//! methods — the same ones the builders call — so the constraints are
//! written exactly once.

use crate::diag::Report;
use crate::model::Model;
use crate::pass::Pass;

/// `SL040`: workload parameters (threads, interleave chunk) must be usable.
pub struct WorkloadParamsValid;

impl Pass for WorkloadParamsValid {
    fn id(&self) -> &'static str {
        "params-workload"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SL040"]
    }

    fn description(&self) -> &'static str {
        "workload parameters must pass WorkloadParams::validate"
    }

    fn run(&self, model: &Model, report: &mut Report) {
        for (path, p) in &model.workloads {
            if let Err(e) = p.validate() {
                report.error("SL040", path.clone(), e.to_string());
            }
        }
    }
}

/// `SL041`: issue-engine configuration must be usable (non-zero window and
/// issue interval).
pub struct EngineConfigValid;

impl Pass for EngineConfigValid {
    fn id(&self) -> &'static str {
        "params-engine"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SL041"]
    }

    fn description(&self) -> &'static str {
        "issue-engine configuration must pass EngineConfig::validate"
    }

    fn run(&self, model: &Model, report: &mut Report) {
        for (path, c) in &model.engines {
            if let Err(e) = c.validate() {
                report.error("SL041", path.clone(), e.to_string());
            }
        }
    }
}

/// `SL042`: thermal-solver configuration must be usable (non-empty grid,
/// iterations, positive tolerance).
pub struct SolverConfigValid;

impl Pass for SolverConfigValid {
    fn id(&self) -> &'static str {
        "params-solver"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SL042"]
    }

    fn description(&self) -> &'static str {
        "thermal-solver configuration must pass SolverConfig::validate"
    }

    fn run(&self, model: &Model, report: &mut Report) {
        for (path, c) in &model.solvers {
            if let Err(e) = c.validate() {
                report.error("SL042", path.clone(), e.to_string());
            }
        }
    }
}

/// `SL043`/`SL044`: the solver's thread count must be in range, and worth
/// using — below roughly 2048 cells per thread the per-iteration fork-join
/// overhead eats the parallel speedup, so a small grid with many threads is
/// almost certainly a misconfiguration.
pub struct SolverThreads;

/// Minimum grid cells per solver thread before `SL044` considers the
/// parallelism worthwhile.
const CELLS_PER_THREAD_FLOOR: usize = 2048;

impl Pass for SolverThreads {
    fn id(&self) -> &'static str {
        "params-solver-threads"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SL043", "SL044"]
    }

    fn description(&self) -> &'static str {
        "solver thread count must be in range and matched to the grid size"
    }

    fn run(&self, model: &Model, report: &mut Report) {
        for (path, c) in &model.solvers {
            if c.threads == 0 || c.threads > stacksim_thermal::MAX_SOLVER_THREADS {
                report.error(
                    "SL043",
                    path.clone(),
                    format!(
                        "solver threads is {} but must be between 1 and {}",
                        c.threads,
                        stacksim_thermal::MAX_SOLVER_THREADS
                    ),
                );
            } else if c.threads > 1 && c.nx * c.ny < CELLS_PER_THREAD_FLOOR * c.threads {
                report.warn(
                    "SL044",
                    path.clone(),
                    format!(
                        "{} solver threads on a {}x{} grid leaves under {} cells \
                         per thread; fork-join overhead will dominate",
                        c.threads, c.nx, c.ny, CELLS_PER_THREAD_FLOOR
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stacksim_mem::EngineConfig;
    use stacksim_thermal::SolverConfig;
    use stacksim_workloads::WorkloadParams;

    fn run(pass: &dyn Pass, model: &Model) -> Report {
        let mut r = Report::new();
        pass.run(model, &mut r);
        r
    }

    #[test]
    fn sl040_fires_on_zero_threads() {
        let mut p = WorkloadParams::default();
        p.threads = 0;
        let model = Model {
            workloads: vec![("fx".into(), p)],
            ..Model::new()
        };
        let r = run(&WorkloadParamsValid, &model);
        assert!(r.has_code("SL040"), "{}", r.render_pretty());
    }

    #[test]
    fn sl041_fires_on_zero_window() {
        let mut c = EngineConfig::default();
        c.window = 0;
        let model = Model {
            engines: vec![("fx".into(), c)],
            ..Model::new()
        };
        assert!(run(&EngineConfigValid, &model).has_code("SL041"));
    }

    #[test]
    fn sl042_fires_on_nan_tolerance() {
        let mut c = SolverConfig::default();
        c.tolerance = f64::NAN;
        let model = Model {
            solvers: vec![("fx".into(), c)],
            ..Model::new()
        };
        assert!(run(&SolverConfigValid, &model).has_code("SL042"));
    }

    #[test]
    fn sl043_fires_on_out_of_range_threads() {
        for threads in [0, stacksim_thermal::MAX_SOLVER_THREADS + 1] {
            let mut c = SolverConfig::default();
            c.threads = threads;
            let model = Model {
                solvers: vec![("fx".into(), c)],
                ..Model::new()
            };
            let r = run(&SolverThreads, &model);
            assert!(
                r.has_code("SL043"),
                "threads={threads}: {}",
                r.render_pretty()
            );
        }
    }

    #[test]
    fn sl044_warns_when_the_grid_is_too_small_for_the_threads() {
        let mut c = SolverConfig::default();
        c.nx = 20;
        c.ny = 17;
        c.threads = 4;
        let model = Model {
            solvers: vec![("fx".into(), c)],
            ..Model::new()
        };
        let r = run(&SolverThreads, &model);
        assert!(r.has_code("SL044"), "{}", r.render_pretty());
        assert!(!r.has_errors(), "SL044 must be a warning, not an error");
    }

    #[test]
    fn sl044_stays_quiet_on_a_big_enough_grid() {
        let mut c = SolverConfig::default();
        c.nx = 128;
        c.ny = 128;
        c.threads = 4;
        let model = Model {
            solvers: vec![("fx".into(), c)],
            ..Model::new()
        };
        assert!(run(&SolverThreads, &model).is_clean());
    }

    #[test]
    fn default_configs_are_clean() {
        let model = Model {
            workloads: vec![("w".into(), WorkloadParams::default())],
            engines: vec![("e".into(), EngineConfig::default())],
            solvers: vec![("s".into(), SolverConfig::default())],
            ..Model::new()
        };
        for pass in crate::passes::all() {
            let r = run(pass.as_ref(), &model);
            assert!(r.is_clean(), "{}: {}", pass.id(), r.render_pretty());
        }
    }
}
