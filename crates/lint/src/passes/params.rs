//! Parameter passes: workload, issue-engine and thermal-solver
//! configurations. These delegate to the config types' own `validate`
//! methods — the same ones the builders call — so the constraints are
//! written exactly once.

use crate::diag::Report;
use crate::model::Model;
use crate::pass::Pass;

/// `SL040`: workload parameters (threads, interleave chunk) must be usable.
pub struct WorkloadParamsValid;

impl Pass for WorkloadParamsValid {
    fn id(&self) -> &'static str {
        "params-workload"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SL040"]
    }

    fn description(&self) -> &'static str {
        "workload parameters must pass WorkloadParams::validate"
    }

    fn run(&self, model: &Model, report: &mut Report) {
        for (path, p) in &model.workloads {
            if let Err(e) = p.validate() {
                report.error("SL040", path.clone(), e.to_string());
            }
        }
    }
}

/// `SL041`: issue-engine configuration must be usable (non-zero window and
/// issue interval).
pub struct EngineConfigValid;

impl Pass for EngineConfigValid {
    fn id(&self) -> &'static str {
        "params-engine"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SL041"]
    }

    fn description(&self) -> &'static str {
        "issue-engine configuration must pass EngineConfig::validate"
    }

    fn run(&self, model: &Model, report: &mut Report) {
        for (path, c) in &model.engines {
            if let Err(e) = c.validate() {
                report.error("SL041", path.clone(), e.to_string());
            }
        }
    }
}

/// `SL042`: thermal-solver configuration must be usable (non-empty grid,
/// iterations, positive tolerance).
pub struct SolverConfigValid;

impl Pass for SolverConfigValid {
    fn id(&self) -> &'static str {
        "params-solver"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SL042"]
    }

    fn description(&self) -> &'static str {
        "thermal-solver configuration must pass SolverConfig::validate"
    }

    fn run(&self, model: &Model, report: &mut Report) {
        for (path, c) in &model.solvers {
            if let Err(e) = c.validate() {
                report.error("SL042", path.clone(), e.to_string());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stacksim_mem::EngineConfig;
    use stacksim_thermal::SolverConfig;
    use stacksim_workloads::WorkloadParams;

    fn run(pass: &dyn Pass, model: &Model) -> Report {
        let mut r = Report::new();
        pass.run(model, &mut r);
        r
    }

    #[test]
    fn sl040_fires_on_zero_threads() {
        let mut p = WorkloadParams::default();
        p.threads = 0;
        let model = Model {
            workloads: vec![("fx".into(), p)],
            ..Model::new()
        };
        let r = run(&WorkloadParamsValid, &model);
        assert!(r.has_code("SL040"), "{}", r.render_pretty());
    }

    #[test]
    fn sl041_fires_on_zero_window() {
        let mut c = EngineConfig::default();
        c.window = 0;
        let model = Model {
            engines: vec![("fx".into(), c)],
            ..Model::new()
        };
        assert!(run(&EngineConfigValid, &model).has_code("SL041"));
    }

    #[test]
    fn sl042_fires_on_nan_tolerance() {
        let mut c = SolverConfig::default();
        c.tolerance = f64::NAN;
        let model = Model {
            solvers: vec![("fx".into(), c)],
            ..Model::new()
        };
        assert!(run(&SolverConfigValid, &model).has_code("SL042"));
    }

    #[test]
    fn default_configs_are_clean() {
        let model = Model {
            workloads: vec![("w".into(), WorkloadParams::default())],
            engines: vec![("e".into(), EngineConfig::default())],
            solvers: vec![("s".into(), SolverConfig::default())],
            ..Model::new()
        };
        for pass in crate::passes::all() {
            let r = run(pass.as_ref(), &model);
            assert!(r.is_clean(), "{}: {}", pass.id(), r.render_pretty());
        }
    }
}
