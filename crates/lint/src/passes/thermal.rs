//! Thermal passes: layer ordering, material parameters and power-map
//! geometry (§2.3 of the paper).

use super::positive;
use crate::diag::Report;
use crate::model::{Model, ThermalDesc};
use crate::pass::Pass;

/// Geometric slack in mm below which differences are floating-point noise.
const GEOM_EPS: f64 = 1e-9;

/// `SL010`: the stack must run heat sink → IHS → dies (+ bond) → package →
/// motherboard. Checked structurally: the named anchor layers must sit in
/// that order and every powered (active) layer must lie between the IHS and
/// the package.
pub struct LayerOrder;

fn position(t: &ThermalDesc, name: &str) -> Option<usize> {
    t.layers.iter().position(|l| l.name == name)
}

impl Pass for LayerOrder {
    fn id(&self) -> &'static str {
        "thermal-layer-order"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SL010"]
    }

    fn description(&self) -> &'static str {
        "thermal layers must run heat sink → IHS → dies → package → motherboard"
    }

    fn run(&self, model: &Model, report: &mut Report) {
        for t in &model.thermal {
            if let Some(i) = position(t, "heat sink") {
                if i != 0 {
                    report.error(
                        "SL010",
                        format!("{}.layer[{i}] 'heat sink'", t.path),
                        "the heat sink must be the first (topmost) layer",
                    );
                }
            }
            if let Some(i) = position(t, "motherboard") {
                if i + 1 != t.layers.len() {
                    report.error(
                        "SL010",
                        format!("{}.layer[{i}] 'motherboard'", t.path),
                        "the motherboard must be the last layer",
                    );
                }
            }
            let ihs = position(t, "ihs");
            let package = position(t, "package");
            if let (Some(i), Some(p)) = (ihs, package) {
                if i > p {
                    report.error(
                        "SL010",
                        format!("{}.layer[{i}] 'ihs'", t.path),
                        "the IHS must sit above the package",
                    );
                }
            }
            for (i, l) in t.layers.iter().enumerate() {
                if l.power.is_none() {
                    continue;
                }
                let span = format!("{}.layer[{i}] '{}'", t.path, l.name);
                if let Some(h) = ihs {
                    if i < h {
                        report.error(
                            "SL010",
                            span,
                            "an active (powered) layer sits above the IHS",
                        );
                        continue;
                    }
                }
                if let Some(p) = package {
                    if i > p {
                        report.error(
                            "SL010",
                            span,
                            "an active (powered) layer sits below the package",
                        );
                    }
                }
            }
        }
    }
}

/// `SL011`: every layer needs positive, finite thickness, conductivities
/// and heat capacity, and the stack needs a positive die footprint.
pub struct LayerParams;

impl Pass for LayerParams {
    fn id(&self) -> &'static str {
        "thermal-layer-params"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SL011"]
    }

    fn description(&self) -> &'static str {
        "layer thickness, conductivity and heat capacity must be positive and finite"
    }

    fn run(&self, model: &Model, report: &mut Report) {
        for t in &model.thermal {
            if !positive(t.die_w_mm) || !positive(t.die_h_mm) {
                report.error(
                    "SL011",
                    format!("{}.die_dims", t.path),
                    format!(
                        "die footprint {} × {} mm is not positive",
                        t.die_w_mm, t.die_h_mm
                    ),
                );
            }
            for (i, l) in t.layers.iter().enumerate() {
                let span = format!("{}.layer[{i}] '{}'", t.path, l.name);
                let fields = [
                    ("thickness", l.thickness_m),
                    ("vertical conductivity", l.k_vertical),
                    ("lateral conductivity", l.k_lateral),
                    ("volumetric heat capacity", l.rhoc),
                ];
                for (what, v) in fields {
                    if !positive(v) || !v.is_finite() {
                        report.error(
                            "SL011",
                            span.clone(),
                            format!("{what} is {v}; it must be positive and finite"),
                        );
                    }
                }
            }
        }
    }
}

/// `SL012`: an active layer's power map must be a non-empty grid covering
/// exactly the stack's die footprint, with finite non-negative total power.
pub struct PowerGridMatch;

impl Pass for PowerGridMatch {
    fn id(&self) -> &'static str {
        "thermal-power-grid"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SL012"]
    }

    fn description(&self) -> &'static str {
        "power maps must match the die footprint and carry sane totals"
    }

    fn run(&self, model: &Model, report: &mut Report) {
        for t in &model.thermal {
            for (i, l) in t.layers.iter().enumerate() {
                let Some(p) = &l.power else { continue };
                let span = format!("{}.layer[{i}] '{}'", t.path, l.name);
                if p.nx == 0 || p.ny == 0 {
                    report.error(
                        "SL012",
                        span.clone(),
                        format!(
                            "power grid is {} × {} cells; both must be at least 1",
                            p.nx, p.ny
                        ),
                    );
                }
                if (p.width_mm - t.die_w_mm).abs() > GEOM_EPS
                    || (p.height_mm - t.die_h_mm).abs() > GEOM_EPS
                {
                    report.error(
                        "SL012",
                        span.clone(),
                        format!(
                            "power map covers {} × {} mm but the stack footprint is {} × {} mm",
                            p.width_mm, p.height_mm, t.die_w_mm, t.die_h_mm
                        ),
                    );
                }
                if !p.total_w.is_finite() || p.total_w < 0.0 {
                    report.error(
                        "SL012",
                        span,
                        format!("total injected power is {} W", p.total_w),
                    );
                }
            }
        }
    }
}

/// `SL013` (warning): a stack with no powered layer, or zero total power,
/// solves to a flat ambient field — usually a forgotten power map.
pub struct ActivePower;

impl Pass for ActivePower {
    fn id(&self) -> &'static str {
        "thermal-active-power"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SL013"]
    }

    fn description(&self) -> &'static str {
        "a thermal stack should inject some power somewhere"
    }

    fn run(&self, model: &Model, report: &mut Report) {
        for t in &model.thermal {
            let total: f64 = t
                .layers
                .iter()
                .filter_map(|l| l.power.as_ref())
                .map(|p| p.total_w)
                .sum();
            let active = t.layers.iter().filter(|l| l.power.is_some()).count();
            if active == 0 {
                report.warn(
                    "SL013",
                    t.path.clone(),
                    "no layer carries a power map; the solve will return ambient everywhere",
                );
            } else if total == 0.0 {
                report.warn(
                    "SL013",
                    t.path.clone(),
                    "all power maps sum to 0 W; the solve will return ambient everywhere",
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LayerDesc, PowerDesc};

    fn layer(name: &str, power: Option<PowerDesc>) -> LayerDesc {
        LayerDesc {
            name: name.into(),
            thickness_m: 1e-3,
            k_vertical: 100.0,
            k_lateral: 100.0,
            rhoc: 1.6e6,
            power,
        }
    }

    fn power(w: f64) -> PowerDesc {
        PowerDesc {
            nx: 4,
            ny: 4,
            width_mm: 13.0,
            height_mm: 11.0,
            total_w: w,
        }
    }

    fn stack(layers: Vec<LayerDesc>) -> Model {
        Model {
            thermal: vec![ThermalDesc {
                path: "fx".into(),
                die_w_mm: 13.0,
                die_h_mm: 11.0,
                layers,
            }],
            ..Model::new()
        }
    }

    fn run(pass: &dyn Pass, model: &Model) -> Report {
        let mut r = Report::new();
        pass.run(model, &mut r);
        r
    }

    #[test]
    fn sl010_fires_when_active_layer_is_above_the_ihs() {
        let model = stack(vec![
            layer("heat sink", None),
            layer("active 1", Some(power(92.0))),
            layer("ihs", None),
            layer("package", None),
            layer("motherboard", None),
        ]);
        let r = run(&LayerOrder, &model);
        assert!(r.has_code("SL010"), "{}", r.render_pretty());
    }

    #[test]
    fn sl010_fires_when_heat_sink_is_buried() {
        let model = stack(vec![
            layer("ihs", None),
            layer("heat sink", None),
            layer("active 1", Some(power(92.0))),
            layer("package", None),
        ]);
        assert!(run(&LayerOrder, &model).has_code("SL010"));
    }

    #[test]
    fn sl010_accepts_the_conventional_order() {
        let model = stack(vec![
            layer("heat sink", None),
            layer("ihs", None),
            layer("active 1", Some(power(92.0))),
            layer("bond", None),
            layer("active 2", Some(power(3.0))),
            layer("package", None),
            layer("motherboard", None),
        ]);
        assert!(run(&LayerOrder, &model).is_clean());
    }

    #[test]
    fn sl011_fires_on_non_positive_material_params() {
        let mut bad = layer("tim", None);
        bad.thickness_m = 0.0;
        let mut nan = layer("bond", None);
        nan.k_vertical = f64::NAN;
        let model = stack(vec![layer("heat sink", None), bad, nan]);
        let r = run(&LayerParams, &model);
        assert!(r.has_code("SL011"));
        assert_eq!(r.error_count(), 2);
    }

    #[test]
    fn sl012_fires_on_power_grid_mismatch() {
        let mut p = power(92.0);
        p.width_mm = 10.0; // stack footprint is 13 mm wide
        let model = stack(vec![layer("active 1", Some(p))]);
        let r = run(&PowerGridMatch, &model);
        assert!(r.has_code("SL012"), "{}", r.render_pretty());

        let mut empty = power(92.0);
        empty.nx = 0;
        let model = stack(vec![layer("active 1", Some(empty))]);
        assert!(run(&PowerGridMatch, &model).has_code("SL012"));
    }

    #[test]
    fn sl013_warns_on_unpowered_stack() {
        let model = stack(vec![layer("heat sink", None), layer("package", None)]);
        let r = run(&ActivePower, &model);
        assert!(r.has_code("SL013"));
        assert!(!r.has_errors(), "SL013 is a warning");

        let model = stack(vec![layer("active 1", Some(power(0.0)))]);
        assert!(run(&ActivePower, &model).has_code("SL013"));
    }
}
