//! The off-die bus: a shared, bandwidth-limited FIFO resource.
//!
//! Every L2/stacked-cache miss and every off-die write-back crosses this
//! bus. The model tracks occupancy so that bandwidth saturation shows up as
//! queueing latency, and accumulates the byte counts behind the off-die
//! bandwidth numbers of Fig. 5 and the bus-power estimate (§3: 20 mW/Gb/s).

use stacksim_obs::HistogramBatch;

use crate::config::{BusConfig, Cycles};

/// Timing of one bus transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusTransfer {
    /// Cycle the transfer starts (after queueing behind earlier traffic).
    pub start: Cycles,
    /// Cycle the last byte is on the wire.
    pub done: Cycles,
}

/// The off-die bus model.
#[derive(Debug, Clone)]
pub struct Bus {
    cfg: BusConfig,
    free_at: Cycles,
    bytes: u64,
    transfers: u64,
    busy_cycles: Cycles,
    queue_cycles: Cycles,
    /// Queueing delay of the most recent transfer (the backlog gauge).
    last_backlog: Cycles,
    /// Per-transfer queueing delays accumulated since the last obs flush
    /// (plain integer adds; drained by the hierarchy's flush point).
    queue_batch: HistogramBatch,
}

impl Bus {
    /// Builds a bus from its configuration.
    pub fn new(cfg: BusConfig) -> Self {
        Bus {
            cfg,
            free_at: 0,
            bytes: 0,
            transfers: 0,
            busy_cycles: 0,
            queue_cycles: 0,
            last_backlog: 0,
            queue_batch: HistogramBatch::new(),
        }
    }

    /// The configuration of this bus.
    pub fn config(&self) -> &BusConfig {
        &self.cfg
    }

    /// Schedules a transfer of `payload` bytes arriving at cycle `at`.
    /// The per-transaction command overhead is added automatically.
    pub fn transfer(&mut self, payload: u64, at: Cycles) -> BusTransfer {
        let total = payload + self.cfg.overhead_bytes;
        let cycles = self.cfg.transfer_cycles(total);
        let start = at.max(self.free_at);
        let done = start + cycles;
        self.free_at = done;
        self.bytes += total;
        self.transfers += 1;
        self.busy_cycles += cycles;
        self.queue_cycles += start - at;
        if stacksim_obs::enabled() {
            self.last_backlog = start - at;
            self.queue_batch.record(start - at);
        }
        BusTransfer { start, done }
    }

    /// Queueing delay of the most recent transfer (only tracked while
    /// observability is enabled).
    pub(crate) fn last_backlog(&self) -> Cycles {
        self.last_backlog
    }

    /// Drains the per-transfer queue-delay samples accumulated since the
    /// last flush.
    pub(crate) fn take_queue_batch(&mut self) -> HistogramBatch {
        self.queue_batch.take()
    }

    /// Total bytes moved (including command overhead).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of transfers performed.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Cycles the bus spent actively transferring.
    pub fn busy_cycles(&self) -> Cycles {
        self.busy_cycles
    }

    /// Total cycles transfers spent queueing behind earlier traffic.
    pub fn queue_cycles(&self) -> Cycles {
        self.queue_cycles
    }

    /// Achieved bandwidth in bytes per second over an interval of
    /// `elapsed_cycles` core cycles.
    pub fn achieved_bytes_per_sec(&self, elapsed_cycles: Cycles) -> f64 {
        if elapsed_cycles == 0 {
            return 0.0;
        }
        self.bytes as f64 * self.cfg.core_hz / elapsed_cycles as f64
    }

    /// Achieved bandwidth in GB/s (decimal gigabytes, as plotted in Fig. 5).
    pub fn achieved_gb_per_sec(&self, elapsed_cycles: Cycles) -> f64 {
        self.achieved_bytes_per_sec(elapsed_cycles) / 1e9
    }

    /// Bus utilisation over an interval (busy cycles / elapsed cycles).
    pub fn utilisation(&self, elapsed_cycles: Cycles) -> f64 {
        if elapsed_cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / elapsed_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> Bus {
        // 16 GB/s @ 3 GHz, 8 B overhead -> 72 B transfer = ceil(72*3/16)=14 cycles
        Bus::new(BusConfig::table3())
    }

    #[test]
    fn transfer_timing_includes_overhead() {
        let mut b = bus();
        let t = b.transfer(64, 0);
        assert_eq!(t.start, 0);
        assert_eq!(t.done, 14, "72 bytes at 16/3 B/cycle");
        assert_eq!(b.bytes(), 72);
    }

    #[test]
    fn back_to_back_transfers_queue() {
        let mut b = bus();
        b.transfer(64, 0);
        let t = b.transfer(64, 5);
        assert_eq!(t.start, 14);
        assert_eq!(t.done, 28);
        assert_eq!(b.queue_cycles(), 9);
    }

    #[test]
    fn idle_gaps_do_not_queue() {
        let mut b = bus();
        b.transfer(64, 0);
        let t = b.transfer(64, 100);
        assert_eq!(t.start, 100);
        assert_eq!(b.queue_cycles(), 0);
    }

    #[test]
    fn achieved_bandwidth_matches_hand_calculation() {
        let mut b = bus();
        for i in 0..100u64 {
            b.transfer(64, i * 1000);
        }
        // 7200 bytes over 100_000 cycles at 3 GHz = 216e6 B/s
        let gbs = b.achieved_gb_per_sec(100_000);
        assert!((gbs - 0.216).abs() < 1e-9, "got {gbs}");
    }

    #[test]
    fn saturated_bus_reaches_peak_bandwidth() {
        let mut b = bus();
        let mut t = 0;
        for _ in 0..1000 {
            t = b.transfer(64, t).done;
        }
        let gbs = b.achieved_gb_per_sec(t);
        // 72/14 bytes/cycle * 3 GHz = 15.43 GB/s ~ peak minus rounding
        assert!(gbs > 15.0 && gbs <= 16.0, "got {gbs}");
        assert!((b.utilisation(t) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_elapsed_reports_zero() {
        let b = bus();
        assert_eq!(b.achieved_gb_per_sec(0), 0.0);
        assert_eq!(b.utilisation(0), 0.0);
    }
}
