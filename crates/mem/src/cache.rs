//! A set-associative, write-back, write-allocate cache model with optional
//! sectored lines and true-LRU replacement.

use crate::config::{CacheConfig, ConfigError};

/// A line evicted by an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Base address of the evicted line.
    pub line_addr: u64,
    /// Whether the line was dirty (needs a write-back).
    pub dirty: bool,
    /// Number of valid sectors the line held when evicted.
    pub valid_sectors: u32,
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Tag match and the referenced sector is valid.
    Hit,
    /// Tag match but the referenced sector has not been fetched yet
    /// (only possible when `sectors > 1`). The sector is marked valid.
    SectorMiss,
    /// Tag mismatch; the line was allocated, possibly evicting a victim.
    Miss(Option<Evicted>),
}

impl Lookup {
    /// Whether the access found its data on this level.
    pub fn is_hit(self) -> bool {
        matches!(self, Lookup::Hit)
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
    /// Bitmap of valid sectors (bit i = sector i). For non-sectored caches
    /// all used bits are set on allocation.
    valid: u64,
}

/// The cache model. One instance per cache level (tags + metadata only; no
/// data payloads are stored — this is a timing/behaviour simulator).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// `sets * ways` lines; within a set, recency order is kept separately.
    lines: Vec<Option<Line>>,
    /// Recency stacks: for each set, way indices ordered MRU-first.
    recency: Vec<Vec<u8>>,
    set_mask: u64,
    line_shift: u32,
    sector_shift: u32,
}

impl Cache {
    /// Builds a cache from a configuration.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] from [`CacheConfig::validate`] if the
    /// configuration is rejected.
    pub fn new(cfg: CacheConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let sets = cfg.num_sets();
        let ways = cfg.ways as usize;
        Ok(Cache {
            lines: vec![None; sets as usize * ways],
            recency: (0..sets).map(|_| (0..ways as u8).collect()).collect(),
            set_mask: sets - 1,
            line_shift: cfg.line_size.trailing_zeros(),
            sector_shift: cfg.sector_size().trailing_zeros(),
            cfg,
        })
    }

    /// The configuration this cache was built from.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.line_shift) & self.set_mask) as usize
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift >> self.set_mask.count_ones()
    }

    fn sector_bit(&self, addr: u64) -> u64 {
        if self.cfg.sectors == 1 {
            1
        } else {
            let idx = (addr >> self.sector_shift) & u64::from(self.cfg.sectors - 1);
            1 << idx
        }
    }

    /// Reconstructs a line's base address from set and tag.
    fn line_addr(&self, set: usize, tag: u64) -> u64 {
        ((tag << self.set_mask.count_ones()) | set as u64) << self.line_shift
    }

    fn touch(&mut self, set: usize, way: u8) {
        // Every set's stack permanently holds all way indices, so the
        // retain is always a single removal; written this way there is
        // no panic path if that invariant ever broke.
        let stack = &mut self.recency[set];
        stack.retain(|&w| w != way);
        stack.insert(0, way);
    }

    /// Performs an access: looks the address up, allocates on miss (with LRU
    /// victim selection), marks the line dirty on writes, and updates
    /// recency.
    ///
    /// On a miss only the referenced sector becomes valid; further sectors
    /// fault in individually (`Lookup::SectorMiss`).
    pub fn access(&mut self, addr: u64, is_write: bool) -> Lookup {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let sector = self.sector_bit(addr);
        let ways = self.cfg.ways as usize;
        // look for a tag match
        for w in 0..ways {
            let idx = set * ways + w;
            if let Some(line) = &mut self.lines[idx] {
                if line.tag == tag {
                    let had_sector = line.valid & sector != 0;
                    line.valid |= sector;
                    if is_write {
                        line.dirty = true;
                    }
                    self.touch(set, w as u8);
                    return if had_sector {
                        Lookup::Hit
                    } else {
                        Lookup::SectorMiss
                    };
                }
            }
        }
        // miss: pick LRU victim. The stack always holds all ways (ways
        // >= 1 is validated), so the fallback to way 0 is dead code kept
        // only to avoid a panic path.
        let victim_way = self.recency[set].last().copied().unwrap_or(0);
        let idx = set * ways + victim_way as usize;
        let evicted = self.lines[idx].map(|line| Evicted {
            line_addr: self.line_addr(set, line.tag),
            dirty: line.dirty,
            valid_sectors: line.valid.count_ones(),
        });
        self.lines[idx] = Some(Line {
            tag,
            dirty: is_write,
            valid: sector,
        });
        self.touch(set, victim_way);
        Lookup::Miss(evicted)
    }

    /// Non-mutating lookup: whether the address (and its sector) is present.
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let sector = self.sector_bit(addr);
        let ways = self.cfg.ways as usize;
        (0..ways).any(|w| {
            self.lines[set * ways + w]
                .as_ref()
                .is_some_and(|l| l.tag == tag && l.valid & sector != 0)
        })
    }

    /// Invalidates a line if present, returning whether it was dirty.
    /// Used for back-invalidation when an outer level evicts.
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let ways = self.cfg.ways as usize;
        for w in 0..ways {
            let idx = set * ways + w;
            if let Some(line) = &self.lines[idx] {
                if line.tag == tag {
                    let dirty = line.dirty;
                    self.lines[idx] = None;
                    // demote to LRU so the slot is reused first
                    let stack = &mut self.recency[set];
                    stack.retain(|&x| x != w as u8);
                    stack.push(w as u8);
                    return Some(dirty);
                }
            }
        }
        None
    }

    /// Number of currently valid lines (diagnostics/tests).
    pub fn occupied_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64 B = 512 B
        Cache::new(CacheConfig {
            capacity: 512,
            line_size: 64,
            ways: 2,
            latency: 1,
            sectors: 1,
        })
        .expect("valid test config")
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(matches!(c.access(0x1000, false), Lookup::Miss(None)));
        assert!(c.access(0x1000, false).is_hit());
        assert!(
            c.access(0x103f, false).is_hit(),
            "same line, different offset"
        );
        assert!(c.probe(0x1000));
        assert!(!c.probe(0x2000));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // set 0 lines: addresses with (addr>>6) & 3 == 0
        let a = 0x0000; // set 0
        let b = 0x0100; // set 0 (0x100>>6 = 4, &3 = 0)
        let d = 0x0200; // set 0
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a is MRU, b is LRU
        match c.access(d, false) {
            Lookup::Miss(Some(ev)) => assert_eq!(ev.line_addr, b),
            other => panic!("expected eviction of b, got {other:?}"),
        }
        assert!(c.probe(a));
        assert!(!c.probe(b));
    }

    #[test]
    fn dirty_bit_tracks_writes() {
        let mut c = tiny();
        c.access(0x0000, true); // dirty
        c.access(0x0100, false); // clean
        c.access(0x0200, false); // evicts 0x0000 (LRU) — dirty
                                 // after the above, LRU in set 0 is 0x0100
        match c.access(0x0300, false) {
            Lookup::Miss(Some(ev)) => {
                assert_eq!(ev.line_addr, 0x0100);
                assert!(!ev.dirty);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dirty_eviction_reports_dirty() {
        let mut c = tiny();
        c.access(0x0000, true);
        c.access(0x0100, false);
        // touch 0x0100 so 0x0000 becomes LRU
        c.access(0x0100, false);
        match c.access(0x0200, false) {
            Lookup::Miss(Some(ev)) => {
                assert_eq!(ev.line_addr, 0x0000);
                assert!(ev.dirty);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0x0000, false);
        c.access(0x0000, true); // now dirty
        c.access(0x0100, false);
        c.access(0x0100, false);
        match c.access(0x0200, false) {
            Lookup::Miss(Some(ev)) => assert!(ev.dirty),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sectored_lines_fault_in_per_sector() {
        // one set, one way, 512 B line with 8 sectors
        let mut c = Cache::new(CacheConfig {
            capacity: 512,
            line_size: 512,
            ways: 1,
            latency: 1,
            sectors: 8,
        })
        .expect("valid test config");
        assert!(matches!(c.access(0x1000, false), Lookup::Miss(None)));
        assert!(c.access(0x1000, false).is_hit(), "sector 0 valid");
        assert!(
            matches!(c.access(0x1040, false), Lookup::SectorMiss),
            "sector 1 invalid"
        );
        assert!(c.access(0x1040, false).is_hit());
        assert!(!c.probe(0x1080), "sector 2 still invalid");
        // eviction reports how many sectors were valid
        match c.access(0x2000, false) {
            Lookup::Miss(Some(ev)) => {
                assert_eq!(ev.line_addr, 0x1000);
                assert_eq!(ev.valid_sectors, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn invalidate_removes_line_and_reports_dirtiness() {
        let mut c = tiny();
        c.access(0x0000, true);
        assert_eq!(c.invalidate(0x0000), Some(true));
        assert_eq!(c.invalidate(0x0000), None);
        assert!(!c.probe(0x0000));
        c.access(0x0100, false);
        assert_eq!(c.invalidate(0x0100), Some(false));
    }

    #[test]
    fn occupancy_counts_valid_lines() {
        let mut c = tiny();
        assert_eq!(c.occupied_lines(), 0);
        c.access(0x0000, false);
        c.access(0x0040, false); // set 1
        assert_eq!(c.occupied_lines(), 2);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        for i in 0..4u64 {
            c.access(i * 64, false);
        }
        for i in 0..4u64 {
            assert!(c.probe(i * 64), "set {i} retained its line");
        }
    }

    #[test]
    fn capacity_bounds_occupancy() {
        let mut c = tiny();
        for i in 0..100u64 {
            c.access(i * 64, false);
        }
        assert_eq!(c.occupied_lines(), 8, "4 sets x 2 ways");
    }
}
