//! A set-associative, write-back, write-allocate cache model with optional
//! sectored lines and true-LRU replacement.

use crate::config::{CacheConfig, ConfigError};

/// A line evicted by an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Base address of the evicted line.
    pub line_addr: u64,
    /// Whether the line was dirty (needs a write-back).
    pub dirty: bool,
    /// Number of valid sectors the line held when evicted.
    pub valid_sectors: u32,
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Tag match and the referenced sector is valid.
    Hit,
    /// Tag match but the referenced sector has not been fetched yet
    /// (only possible when `sectors > 1`). The sector is marked valid.
    SectorMiss,
    /// Tag mismatch; the line was allocated, possibly evicting a victim.
    Miss(Option<Evicted>),
}

impl Lookup {
    /// Whether the access found its data on this level.
    pub fn is_hit(self) -> bool {
        matches!(self, Lookup::Hit)
    }
}

/// Per-way line metadata, kept apart from the tag words so the hot tag
/// scan stays inside one cache line per set. Written only for the way
/// that hits or is (re)allocated. Exactly 16 bytes (the dirty bit lives
/// in the key word), so an 8-way set's metadata spans two cache lines.
#[derive(Debug, Clone, Copy)]
struct Meta {
    /// Bitmap of valid sectors (bit i = sector i); meaningful only while
    /// the way's key is non-zero.
    valid: u64,
    /// Monotonic last-use time, drawn from the cache-wide clock. Victim
    /// selection takes the minimum over the set, which reproduces
    /// true-LRU stack order exactly: present lines carry distinct
    /// positive stamps, and empty ways (stamp 0) are always claimed
    /// first.
    stamp: u64,
}

const EMPTY_META: Meta = Meta { valid: 0, stamp: 0 };

/// Dirty flag inside a key word (bit 0 is the presence flag).
const KEY_DIRTY: u64 = 0b10;
/// Mask clearing the dirty bit for tag comparisons.
const KEY_TAG: u64 = !KEY_DIRTY;

/// The cache model. One instance per cache level (tags + metadata only; no
/// data payloads are stored — this is a timing/behaviour simulator).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// `(tag << 2) | dirty << 1 | 1` per way, 0 = empty — one u64 per
    /// way, so a whole 8-way set's tags fit in a single cache line for
    /// the scan the hit path runs on every access. Carrying the dirty
    /// bit here (masked off when comparing) keeps [`Meta`] at 16 bytes.
    keys: Vec<u64>,
    /// `sets * ways` per-way metadata, parallel to `keys`.
    meta: Vec<Meta>,
    /// MRU filter, entry 0: the line id (`addr >> line_shift`, biased by
    /// +1 so 0 means "none") of the previous slow-path access, with a
    /// copy of that line's sector bitmap and dirty bit. A repeat access
    /// to a filtered line is a guaranteed hit, and skipping its LRU
    /// re-stamp is a relative no-op — so a repeat whose sector is already
    /// valid can return without touching the arrays at all. Writes fall
    /// through until the line is dirty, and absent sectors fall through,
    /// so no state transition is ever skipped.
    ///
    /// The skipped re-stamp is sound because every filter entry is the
    /// maximum-stamp line of its set: restamping the maximum with a newer
    /// clock value never changes the relative stamp order victim
    /// selection runs on. The invariant holds by construction — entries
    /// are installed only on the slow path (where the line just received
    /// the globally largest stamp), and any later slow-path access to the
    /// same set demotes or drops them (see the tail of `access_inner`).
    last_line: u64,
    last_valid: u64,
    last_dirty: bool,
    /// MRU filter, entry 1: the previous entry 0, kept alive so a
    /// workload ping-ponging between two lines stays on the filter.
    /// Always in a different set than entry 0 (a same-set install evicts
    /// it), which is what lets both entries keep the max-stamp invariant.
    last_line2: u64,
    last_valid2: u64,
    last_dirty2: bool,
    /// Cache-wide access clock feeding the LRU stamps.
    clock: u64,
    /// Number of valid lines; lets `invalidate` skip the set scan while
    /// the cache is empty (an L1i never sees a fill in data-only traces
    /// yet takes every back-invalidation sweep).
    occupied: u32,
    set_mask: u64,
    line_shift: u32,
    /// `set_mask.count_ones()`, hoisted for tag/address reconstruction.
    set_shift: u32,
    sector_shift: u32,
}

impl Cache {
    /// Builds a cache from a configuration.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] from [`CacheConfig::validate`] if the
    /// configuration is rejected.
    pub fn new(cfg: CacheConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let sets = cfg.num_sets();
        let ways = cfg.ways as usize;
        Ok(Cache {
            keys: vec![0; sets as usize * ways],
            meta: vec![EMPTY_META; sets as usize * ways],
            last_line: 0,
            last_valid: 0,
            last_dirty: false,
            last_line2: 0,
            last_valid2: 0,
            last_dirty2: false,
            clock: 0,
            occupied: 0,
            set_mask: sets - 1,
            line_shift: cfg.line_size.trailing_zeros(),
            set_shift: (sets - 1).count_ones(),
            sector_shift: cfg.sector_size().trailing_zeros(),
            cfg,
        })
    }

    /// The configuration this cache was built from.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.line_shift) & self.set_mask) as usize
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift >> self.set_shift
    }

    fn sector_bit(&self, addr: u64) -> u64 {
        if self.cfg.sectors == 1 {
            1
        } else {
            let idx = (addr >> self.sector_shift) & u64::from(self.cfg.sectors - 1);
            1 << idx
        }
    }

    /// Whether this access would be swallowed by the MRU line filter: a
    /// repeat of one of the two most recent distinct lines whose sector
    /// is already valid and (for writes) already dirty. Such an access
    /// is a guaranteed hit and a guaranteed no-op on the arrays, so
    /// callers on a hot path may handle it without entering
    /// [`Cache::access`] at all.
    #[inline(always)]
    pub(crate) fn filter_hit(&self, addr: u64, is_write: bool) -> bool {
        let line_id = (addr >> self.line_shift) + 1;
        let sector = self.sector_bit(addr);
        (line_id == self.last_line
            && self.last_valid & sector != 0
            && (!is_write || self.last_dirty))
            || (line_id == self.last_line2
                && self.last_valid2 & sector != 0
                && (!is_write || self.last_dirty2))
    }

    /// Filter-invariant bookkeeping run by every slow-path access before
    /// it installs `line_id` (which lives in `set`) as filter entry 0:
    /// entry 0 moves to the entry-1 slot unless this access just stamped
    /// a line in *its* set (ending its max-stamp reign), and a
    /// same-set entry 1 is dropped for the same reason — which also
    /// keeps the two entries in distinct sets.
    #[inline(always)]
    fn demote_filter(&mut self, set: usize) {
        if self.last_line.wrapping_sub(1) & self.set_mask != set as u64 {
            self.last_line2 = self.last_line;
            self.last_valid2 = self.last_valid;
            self.last_dirty2 = self.last_dirty;
        } else if self.last_line2.wrapping_sub(1) & self.set_mask == set as u64 {
            self.last_line2 = 0;
        }
    }

    /// Performs an access: looks the address up, allocates on miss (with LRU
    /// victim selection), marks the line dirty on writes, and updates
    /// recency.
    ///
    /// On a miss only the referenced sector becomes valid; further sectors
    /// fault in individually (`Lookup::SectorMiss`).
    #[inline]
    pub fn access(&mut self, addr: u64, is_write: bool) -> Lookup {
        if self.filter_hit(addr, is_write) {
            return Lookup::Hit;
        }
        self.access_past_filter(addr, is_write)
    }

    /// [`Cache::access`] for a caller that has already seen
    /// [`Cache::filter_hit`] return false for this exact access, so the
    /// filter is not consulted again. Calling it without that check is
    /// still correct — the filter only ever short-circuits no-ops — just
    /// slower for streaky workloads.
    #[inline]
    pub(crate) fn access_past_filter(&mut self, addr: u64, is_write: bool) -> Lookup {
        let line_id = (addr >> self.line_shift) + 1;
        let sector = self.sector_bit(addr);
        // Dispatch on the way count once: every cache in the paper's
        // configurations except the 16/24-way SRAM L2s is 8-way, and the
        // always-inlined body below const-folds `ways` at each call site —
        // the 8-way copy gets shift indexing, fully unrolled scans and no
        // slice-length fallbacks.
        if self.cfg.ways == 8 {
            self.access_inner(addr, is_write, line_id, sector, 8)
        } else {
            self.access_inner(addr, is_write, line_id, sector, self.cfg.ways as usize)
        }
    }

    /// The post-filter access path; `ways` is passed by value so the
    /// dispatch above can pin it to a literal.
    #[inline(always)]
    fn access_inner(
        &mut self,
        addr: u64,
        is_write: bool,
        line_id: u64,
        sector: u64,
        ways: usize,
    ) -> Lookup {
        let set = self.set_of(addr);
        let base = set * ways;
        self.clock += 1;
        let key = (self.tag_of(addr) << 2) | 1;
        // tag scan — the one loop every access runs. The whole set is
        // compared into a bitmask with no early exit: the loop body is
        // branch-free, leaving a single highly-predictable hit/miss branch
        // instead of a data-dependent exit position. The 8-way case (every
        // cache in the paper's configurations) goes through a fixed-length
        // array so the loop fully unrolls and vectorises; a runtime `ways`
        // trip count would keep it a scalar loop.
        let keys = &self.keys[base..base + ways];
        let mut mask = 0u32;
        if let Ok(k8) = <&[u64; 8]>::try_from(keys) {
            for (w, &k) in k8.iter().enumerate() {
                mask |= u32::from(k & KEY_TAG == key) << w;
            }
        } else {
            for (w, &k) in keys.iter().enumerate() {
                mask |= u32::from(k & KEY_TAG == key) << w;
            }
        }
        if mask != 0 {
            let way = base + mask.trailing_zeros() as usize;
            self.keys[way] |= u64::from(is_write) << 1;
            let dirty = self.keys[way] & KEY_DIRTY != 0;
            let m = &mut self.meta[way];
            let had_sector = m.valid & sector != 0;
            m.valid |= sector;
            m.stamp = self.clock;
            let valid = m.valid;
            self.demote_filter(set);
            self.last_line = line_id;
            self.last_valid = valid;
            self.last_dirty = dirty;
            return if had_sector {
                Lookup::Hit
            } else {
                Lookup::SectorMiss
            };
        }
        // miss: the victim is the minimum-stamp way — the true-LRU line,
        // or an empty way (stamp 0) while any remain. Same 8-way
        // specialisation as the tag scan, for an unrolled branch-free min.
        let metas = &self.meta[base..base + ways];
        let mut victim = base;
        if let Ok(m8) = <&[Meta; 8]>::try_from(metas) {
            let mut best = m8[0].stamp;
            for (w, m) in m8.iter().enumerate().skip(1) {
                if m.stamp < best {
                    best = m.stamp;
                    victim = base + w;
                }
            }
        } else {
            for (w, m) in metas.iter().enumerate().skip(1) {
                if m.stamp < self.meta[victim].stamp {
                    victim = base + w;
                }
            }
        }
        let m = self.meta[victim];
        let old_key = self.keys[victim];
        if old_key == 0 {
            self.occupied += 1;
        }
        let evicted = (old_key != 0).then(|| Evicted {
            line_addr: (((old_key >> 2) << self.set_shift) | set as u64) << self.line_shift,
            dirty: old_key & KEY_DIRTY != 0,
            valid_sectors: m.valid.count_ones(),
        });
        self.keys[victim] = key | u64::from(is_write) << 1;
        self.meta[victim] = Meta {
            valid: sector,
            stamp: self.clock,
        };
        self.demote_filter(set);
        self.last_line = line_id;
        self.last_valid = sector;
        self.last_dirty = is_write;
        Lookup::Miss(evicted)
    }

    /// Non-mutating lookup: whether the address (and its sector) is present.
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let sector = self.sector_bit(addr);
        let ways = self.cfg.ways as usize;
        let base = set * ways;
        let key = (self.tag_of(addr) << 2) | 1;
        self.keys[base..base + ways]
            .iter()
            .enumerate()
            .any(|(w, &k)| k & KEY_TAG == key && self.meta[base + w].valid & sector != 0)
    }

    /// Invalidates a line if present, returning whether it was dirty.
    /// Used for back-invalidation when an outer level evicts.
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        if self.occupied == 0 {
            return None;
        }
        let set = self.set_of(addr);
        let ways = self.cfg.ways as usize;
        let base = set * ways;
        let key = (self.tag_of(addr) << 2) | 1;
        for w in 0..ways {
            if self.keys[base + w] & KEY_TAG == key {
                let dirty = self.keys[base + w] & KEY_DIRTY != 0;
                // empty the way (stamp 0 makes it the next victim) and
                // drop any MRU filter entry that pointed at this line
                self.keys[base + w] = 0;
                self.meta[base + w] = EMPTY_META;
                self.occupied -= 1;
                let line_id = (addr >> self.line_shift) + 1;
                if self.last_line == line_id {
                    self.last_line = 0;
                }
                if self.last_line2 == line_id {
                    self.last_line2 = 0;
                }
                return Some(dirty);
            }
        }
        None
    }

    /// Number of currently valid lines (diagnostics/tests).
    pub fn occupied_lines(&self) -> usize {
        debug_assert_eq!(
            self.occupied as usize,
            self.keys.iter().filter(|&&k| k != 0).count()
        );
        self.occupied as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64 B = 512 B
        Cache::new(CacheConfig {
            capacity: 512,
            line_size: 64,
            ways: 2,
            latency: 1,
            sectors: 1,
        })
        .expect("valid test config")
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(matches!(c.access(0x1000, false), Lookup::Miss(None)));
        assert!(c.access(0x1000, false).is_hit());
        assert!(
            c.access(0x103f, false).is_hit(),
            "same line, different offset"
        );
        assert!(c.probe(0x1000));
        assert!(!c.probe(0x2000));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // set 0 lines: addresses with (addr>>6) & 3 == 0
        let a = 0x0000; // set 0
        let b = 0x0100; // set 0 (0x100>>6 = 4, &3 = 0)
        let d = 0x0200; // set 0
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a is MRU, b is LRU
        match c.access(d, false) {
            Lookup::Miss(Some(ev)) => assert_eq!(ev.line_addr, b),
            other => panic!("expected eviction of b, got {other:?}"),
        }
        assert!(c.probe(a));
        assert!(!c.probe(b));
    }

    #[test]
    fn dirty_bit_tracks_writes() {
        let mut c = tiny();
        c.access(0x0000, true); // dirty
        c.access(0x0100, false); // clean
        c.access(0x0200, false); // evicts 0x0000 (LRU) — dirty
                                 // after the above, LRU in set 0 is 0x0100
        match c.access(0x0300, false) {
            Lookup::Miss(Some(ev)) => {
                assert_eq!(ev.line_addr, 0x0100);
                assert!(!ev.dirty);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dirty_eviction_reports_dirty() {
        let mut c = tiny();
        c.access(0x0000, true);
        c.access(0x0100, false);
        // touch 0x0100 so 0x0000 becomes LRU
        c.access(0x0100, false);
        match c.access(0x0200, false) {
            Lookup::Miss(Some(ev)) => {
                assert_eq!(ev.line_addr, 0x0000);
                assert!(ev.dirty);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0x0000, false);
        c.access(0x0000, true); // now dirty
        c.access(0x0100, false);
        c.access(0x0100, false);
        match c.access(0x0200, false) {
            Lookup::Miss(Some(ev)) => assert!(ev.dirty),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sectored_lines_fault_in_per_sector() {
        // one set, one way, 512 B line with 8 sectors
        let mut c = Cache::new(CacheConfig {
            capacity: 512,
            line_size: 512,
            ways: 1,
            latency: 1,
            sectors: 8,
        })
        .expect("valid test config");
        assert!(matches!(c.access(0x1000, false), Lookup::Miss(None)));
        assert!(c.access(0x1000, false).is_hit(), "sector 0 valid");
        assert!(
            matches!(c.access(0x1040, false), Lookup::SectorMiss),
            "sector 1 invalid"
        );
        assert!(c.access(0x1040, false).is_hit());
        assert!(!c.probe(0x1080), "sector 2 still invalid");
        // eviction reports how many sectors were valid
        match c.access(0x2000, false) {
            Lookup::Miss(Some(ev)) => {
                assert_eq!(ev.line_addr, 0x1000);
                assert_eq!(ev.valid_sectors, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn invalidate_removes_line_and_reports_dirtiness() {
        let mut c = tiny();
        c.access(0x0000, true);
        assert_eq!(c.invalidate(0x0000), Some(true));
        assert_eq!(c.invalidate(0x0000), None);
        assert!(!c.probe(0x0000));
        c.access(0x0100, false);
        assert_eq!(c.invalidate(0x0100), Some(false));
    }

    #[test]
    fn occupancy_counts_valid_lines() {
        let mut c = tiny();
        assert_eq!(c.occupied_lines(), 0);
        c.access(0x0000, false);
        c.access(0x0040, false); // set 1
        assert_eq!(c.occupied_lines(), 2);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        for i in 0..4u64 {
            c.access(i * 64, false);
        }
        for i in 0..4u64 {
            assert!(c.probe(i * 64), "set {i} retained its line");
        }
    }

    #[test]
    fn capacity_bounds_occupancy() {
        let mut c = tiny();
        for i in 0..100u64 {
            c.access(i * 64, false);
        }
        assert_eq!(c.occupied_lines(), 8, "4 sets x 2 ways");
    }
}
