//! Configuration of the simulated memory hierarchy (Table 3 of the paper).

use std::fmt;

/// Cycles, the simulator's time unit (core clock cycles).
pub type Cycles = u64;

/// Geometry and latency of a set-associative SRAM cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Line size in bytes (power of two).
    pub line_size: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Access latency in core cycles.
    pub latency: Cycles,
    /// Sectors per line. `1` for conventional caches; the stacked DRAM cache
    /// uses 512 B lines with eight 64 B sectors.
    pub sectors: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> u64 {
        self.capacity / (self.line_size * u64::from(self.ways))
    }

    /// Size of one sector in bytes.
    pub fn sector_size(&self) -> u64 {
        self.line_size / u64::from(self.sectors)
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.line_size.is_power_of_two() {
            return Err(ConfigError::new("line size must be a power of two"));
        }
        if self.sectors == 0 || !self.sectors.is_power_of_two() {
            return Err(ConfigError::new("sector count must be a power of two >= 1"));
        }
        if u64::from(self.sectors) > self.line_size {
            return Err(ConfigError::new("more sectors than bytes in a line"));
        }
        if self.ways == 0 {
            return Err(ConfigError::new("associativity must be at least 1"));
        }
        if !self
            .capacity
            .is_multiple_of(self.line_size * u64::from(self.ways))
        {
            return Err(ConfigError::new(
                "capacity must be a multiple of line_size * ways",
            ));
        }
        if !self.num_sets().is_power_of_two() {
            return Err(ConfigError::new("number of sets must be a power of two"));
        }
        Ok(())
    }

    /// The 32 KB, 8-way, 64 B-line, 4-cycle L1 data cache of Table 3.
    pub fn l1d_core2() -> Self {
        CacheConfig {
            capacity: 32 << 10,
            line_size: 64,
            ways: 8,
            latency: 4,
            sectors: 1,
        }
    }

    /// A 32 KB, 8-way, 64 B-line L1 instruction cache (paper: "private first
    /// level instruction and data caches of 32KB").
    pub fn l1i_core2() -> Self {
        CacheConfig {
            capacity: 32 << 10,
            line_size: 64,
            ways: 8,
            latency: 4,
            sectors: 1,
        }
    }

    /// The shared 4 MB, 16-way, 64 B-line, 16-cycle L2 of Table 3.
    pub fn l2_4mb() -> Self {
        CacheConfig {
            capacity: 4 << 20,
            line_size: 64,
            ways: 16,
            latency: 16,
            sectors: 1,
        }
    }

    /// The stacked 12 MB SRAM L2 (8 MB added on the top die), 24 cycles.
    ///
    /// 12 MB is not a power-of-two capacity; with 16 ways and 64 B lines it
    /// still yields 12288 sets, so we use 24-way associativity to keep the
    /// set count (8192) a power of two.
    pub fn l2_12mb_stacked() -> Self {
        CacheConfig {
            capacity: 12 << 20,
            line_size: 64,
            ways: 24,
            latency: 24,
            sectors: 1,
        }
    }
}

/// DRAM bank-state-machine delays shared by the stacked DRAM cache and the
/// DDR main memory (Table 3: page open 50, precharge 54, read 50).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// Cycles to open (activate) a page.
    pub page_open: Cycles,
    /// Cycles to precharge a bank.
    pub precharge: Cycles,
    /// Cycles for a column read/write once the page is open.
    pub read: Cycles,
    /// Cycles the bank stays busy per column access (data burst). The
    /// `read` latency is pipelined: back-to-back accesses to an open page
    /// are spaced by the burst, not by the full CAS latency.
    pub burst: Cycles,
}

impl DramTiming {
    /// The Table 3 bank delays, with an 8-cycle data burst (64 B at DDR
    /// rate against a 3 GHz core clock).
    pub fn table3() -> Self {
        DramTiming {
            page_open: 50,
            precharge: 54,
            read: 50,
            burst: 8,
        }
    }

    /// Latency of an access that hits an already-open page.
    pub fn page_hit(&self) -> Cycles {
        self.read
    }

    /// Latency of an access to a bank with no open page.
    pub fn page_empty(&self) -> Cycles {
        self.page_open + self.read
    }

    /// Latency of an access that conflicts with a different open page.
    pub fn page_conflict(&self) -> Cycles {
        self.precharge + self.page_open + self.read
    }
}

/// Geometry and timing of a banked DRAM array (stacked cache data array or
/// DDR main memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of independent banks (Table 3: 16 for both arrays).
    pub banks: u32,
    /// Page (row) size in bytes: 512 B stacked, 4 KB main memory.
    pub page_size: u64,
    /// Bank state-machine delays.
    pub timing: DramTiming,
    /// Open rows tracked per bank. Conventional DDR keeps one row open;
    /// the stacked 3D DRAM models a small row-buffer cache (the dense
    /// die-to-die interface makes wide row buffers cheap), which also
    /// stands in for the row-hit batching a FR-FCFS controller achieves
    /// when several streams interleave on one bank.
    pub open_rows: u32,
}

impl DramConfig {
    /// The stacked DRAM cache array: 16 banks, 512 B pages, 4-entry
    /// row-buffer cache per bank.
    pub fn stacked() -> Self {
        DramConfig {
            banks: 16,
            page_size: 512,
            timing: DramTiming::table3(),
            open_rows: 4,
        }
    }

    /// The DDR3 main memory array: 16 banks, 4 KB pages, one open row per
    /// bank (conventional).
    pub fn ddr_main() -> Self {
        DramConfig {
            banks: 16,
            page_size: 4096,
            timing: DramTiming::table3(),
            open_rows: 1,
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.banks == 0 || !self.banks.is_power_of_two() {
            return Err(ConfigError::new("bank count must be a power of two >= 1"));
        }
        if !self.page_size.is_power_of_two() {
            return Err(ConfigError::new("page size must be a power of two"));
        }
        if self.open_rows == 0 {
            return Err(ConfigError::new("banks must track at least one open row"));
        }
        Ok(())
    }
}

/// Main-memory configuration: a banked DRAM array behind a fixed transport
/// latency so that a page-hit access costs the paper's 192 cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MainMemoryConfig {
    /// Banked array geometry/timing.
    pub dram: DramConfig,
    /// Controller + transport cycles added before the bank access.
    /// `192 - read(50) = 142`, so a page-hit access totals 192 cycles.
    pub transport: Cycles,
}

impl MainMemoryConfig {
    /// Table 3 main memory: 16 banks, 4 KB pages, 192-cycle page-hit access.
    pub fn table3() -> Self {
        MainMemoryConfig {
            dram: DramConfig::ddr_main(),
            transport: 142,
        }
    }
}

/// Off-die bus configuration.
///
/// Table 3 gives 16 GB/s off-die bandwidth; combined with the core frequency
/// this determines how many cycles a cache-line transfer occupies the bus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusConfig {
    /// Peak bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Core frequency in Hz (used to convert bandwidth into bytes/cycle).
    pub core_hz: f64,
    /// Per-transaction command overhead in bytes (address/command phase).
    pub overhead_bytes: u64,
}

impl BusConfig {
    /// Table 3 off-die bus: 16 GB/s at a 3 GHz core clock.
    pub fn table3() -> Self {
        BusConfig {
            bandwidth_bytes_per_sec: 16e9,
            core_hz: 3e9,
            overhead_bytes: 8,
        }
    }

    /// Bytes the bus moves per core cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bandwidth_bytes_per_sec / self.core_hz
    }

    /// Cycles a transfer of `bytes` occupies the bus (rounded up, minimum 1).
    pub fn transfer_cycles(&self, bytes: u64) -> Cycles {
        let c = (bytes as f64 / self.bytes_per_cycle()).ceil() as Cycles;
        c.max(1)
    }
}

/// The last level of the on-die hierarchy beyond the shared SRAM L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackedLevel {
    /// No stacked level: L2 misses go straight off-die.
    None,
    /// A stacked DRAM cache: on-die tags plus a banked DRAM data array on the
    /// top die (options (c) and (d) of Fig. 7).
    Dram {
        /// Tag/sector geometry (512 B lines, 8 sectors, tag latency on die).
        cache: CacheConfig,
        /// Banked data array.
        dram: DramConfig,
    },
}

/// Full hierarchy configuration for one simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyConfig {
    /// Number of CPUs (the paper simulates a two-processor SMP).
    pub cpus: usize,
    /// Per-core L1 instruction cache.
    pub l1i: CacheConfig,
    /// Per-core L1 data cache.
    pub l1d: CacheConfig,
    /// Shared SRAM L2, if present (removed in the 32 MB DRAM option).
    pub l2: Option<CacheConfig>,
    /// Stacked level beyond the L2.
    pub stacked: StackedLevel,
    /// Off-die bus.
    pub bus: BusConfig,
    /// Main memory.
    pub memory: MainMemoryConfig,
    /// Model fill latency through MSHRs: a reference to a line that is
    /// still in flight waits for the fill instead of hitting instantly
    /// (allocation-at-request is the default, as in classic trace-driven
    /// simulators; enabling this makes streaming reuse wait for fills).
    pub fill_latency: bool,
}

impl HierarchyConfig {
    /// The baseline Intel Core 2 Duo–class hierarchy of Table 3 / Fig. 4:
    /// 2 cores, 32 KB L1s, shared 4 MB L2, 16 GB/s bus, DDR main memory.
    pub fn core2_baseline() -> Self {
        HierarchyConfig {
            cpus: 2,
            l1i: CacheConfig::l1i_core2(),
            l1d: CacheConfig::l1d_core2(),
            l2: Some(CacheConfig::l2_4mb()),
            stacked: StackedLevel::None,
            bus: BusConfig::table3(),
            memory: MainMemoryConfig::table3(),
            fill_latency: false,
        }
    }

    /// Option (b) of Fig. 7: 8 MB SRAM stacked on top of the 4 MB L2 for a
    /// total 12 MB L2 at 24 cycles.
    pub fn stacked_sram_12mb() -> Self {
        HierarchyConfig {
            l2: Some(CacheConfig::l2_12mb_stacked()),
            ..Self::core2_baseline()
        }
    }

    /// Option (c) of Fig. 7: the 4 MB SRAM L2 is removed and replaced with a
    /// 32 MB stacked DRAM cache whose tags live on the CPU die.
    pub fn stacked_dram_32mb() -> Self {
        HierarchyConfig {
            l2: None,
            stacked: StackedLevel::Dram {
                cache: CacheConfig {
                    capacity: 32 << 20,
                    line_size: 512,
                    ways: 8,
                    // on-die tag lookup; the data access adds DRAM bank timing
                    latency: 6,
                    sectors: 8,
                },
                dram: DramConfig::stacked(),
            },
            ..Self::core2_baseline()
        }
    }

    /// Option (d) of Fig. 7: 64 MB stacked DRAM; the existing 4 MB SRAM L2
    /// array holds the tags, so the tag latency equals the old L2 latency.
    pub fn stacked_dram_64mb() -> Self {
        HierarchyConfig {
            l2: None,
            stacked: StackedLevel::Dram {
                cache: CacheConfig {
                    capacity: 64 << 20,
                    line_size: 512,
                    ways: 8,
                    latency: 16,
                    sectors: 8,
                },
                dram: DramConfig::stacked(),
            },
            ..Self::core2_baseline()
        }
    }

    /// All four Fig. 7 options in the order of Fig. 5's bar groups, paired
    /// with their last-level-cache capacity label in MB.
    pub fn fig7_options() -> Vec<(u32, HierarchyConfig)> {
        vec![
            (4, Self::core2_baseline()),
            (12, Self::stacked_sram_12mb()),
            (32, Self::stacked_dram_32mb()),
            (64, Self::stacked_dram_64mb()),
        ]
    }

    /// Checks every sub-configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cpus == 0 || self.cpus > 256 {
            return Err(ConfigError::new("cpu count must be between 1 and 256"));
        }
        self.l1i.validate()?;
        self.l1d.validate()?;
        if let Some(l2) = &self.l2 {
            l2.validate()?;
        }
        if let StackedLevel::Dram { cache, dram } = &self.stacked {
            cache.validate()?;
            dram.validate()?;
            if cache.sector_size() != self.l1d.line_size {
                return Err(ConfigError::new(
                    "stacked DRAM sector size must equal the L1 line size",
                ));
            }
        }
        self.memory.dram.validate()?;
        if self.bus.bandwidth_bytes_per_sec <= 0.0 || self.bus.core_hz <= 0.0 {
            return Err(ConfigError::new(
                "bus bandwidth and core frequency must be positive",
            ));
        }
        Ok(())
    }

    /// Capacity of the last on-die cache level in bytes.
    pub fn llc_capacity(&self) -> u64 {
        match &self.stacked {
            StackedLevel::Dram { cache, .. } => cache.capacity,
            StackedLevel::None => self.l2.map_or(0, |c| c.capacity),
        }
    }
}

/// A configuration-validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: &'static str,
}

impl ConfigError {
    pub(crate) fn new(message: &'static str) -> Self {
        ConfigError { message }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid memory configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_presets_validate() {
        for (_, cfg) in HierarchyConfig::fig7_options() {
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn l1d_geometry_matches_table3() {
        let c = CacheConfig::l1d_core2();
        assert_eq!(c.capacity, 32 * 1024);
        assert_eq!(c.ways, 8);
        assert_eq!(c.line_size, 64);
        assert_eq!(c.latency, 4);
        assert_eq!(c.num_sets(), 64);
    }

    #[test]
    fn l2_geometry_matches_table3() {
        let c = CacheConfig::l2_4mb();
        assert_eq!(c.capacity, 4 << 20);
        assert_eq!(c.ways, 16);
        assert_eq!(c.latency, 16);
        assert_eq!(c.num_sets(), 4096);
    }

    #[test]
    fn dram_timing_matches_table3() {
        let t = DramTiming::table3();
        assert_eq!(t.page_hit(), 50);
        assert_eq!(t.page_empty(), 100);
        assert_eq!(t.page_conflict(), 154);
    }

    #[test]
    fn main_memory_page_hit_is_192_cycles() {
        let m = MainMemoryConfig::table3();
        assert_eq!(m.transport + m.dram.timing.page_hit(), 192);
        assert_eq!(m.dram.page_size, 4096);
        assert_eq!(m.dram.banks, 16);
    }

    #[test]
    fn bus_line_transfer_is_12_cycles() {
        let b = BusConfig::table3();
        // 64 B at 16/3 bytes per cycle = 12 cycles
        assert_eq!(b.transfer_cycles(64), 12);
        assert!(b.bytes_per_cycle() > 5.3 && b.bytes_per_cycle() < 5.4);
        assert_eq!(b.transfer_cycles(0), 1);
    }

    #[test]
    fn stacked_dram_sector_size_is_l1_line() {
        let cfg = HierarchyConfig::stacked_dram_32mb();
        if let StackedLevel::Dram { cache, .. } = cfg.stacked {
            assert_eq!(cache.sector_size(), 64);
            assert_eq!(cache.line_size, 512);
        } else {
            panic!("expected stacked DRAM");
        }
    }

    #[test]
    fn llc_capacity_reports_correct_level() {
        assert_eq!(HierarchyConfig::core2_baseline().llc_capacity(), 4 << 20);
        assert_eq!(
            HierarchyConfig::stacked_sram_12mb().llc_capacity(),
            12 << 20
        );
        assert_eq!(
            HierarchyConfig::stacked_dram_32mb().llc_capacity(),
            32 << 20
        );
        assert_eq!(
            HierarchyConfig::stacked_dram_64mb().llc_capacity(),
            64 << 20
        );
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = CacheConfig::l1d_core2();
        c.line_size = 63;
        assert!(c.validate().is_err());

        let mut c = CacheConfig::l1d_core2();
        c.ways = 0;
        assert!(c.validate().is_err());

        let mut c = CacheConfig::l1d_core2();
        c.sectors = 3;
        assert!(c.validate().is_err());

        let mut d = DramConfig::stacked();
        d.banks = 3;
        assert!(d.validate().is_err());

        let mut h = HierarchyConfig::core2_baseline();
        h.cpus = 0;
        assert!(h.validate().is_err());
    }

    #[test]
    fn mismatched_sector_size_is_rejected() {
        let mut cfg = HierarchyConfig::stacked_dram_32mb();
        if let StackedLevel::Dram { cache, .. } = &mut cfg.stacked {
            cache.sectors = 4; // sector = 128 B != 64 B L1 line
        }
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn config_error_display() {
        let e = ConfigError::new("boom");
        assert!(e.to_string().contains("boom"));
    }
}
