//! Banked DRAM array with per-bank open-page state machines.
//!
//! Used for both the stacked DRAM cache data array (512 B pages, 16 banks)
//! and the DDR main memory (4 KB pages, 16 banks). Timing follows Table 3:
//! page open 50, precharge 54, read 50 cycles.

use crate::config::{ConfigError, Cycles, DramConfig};

/// Which page-state case a DRAM access hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageOutcome {
    /// The addressed row was already open (fast case: `read` only).
    Hit,
    /// The bank was idle (`open + read`).
    Empty,
    /// A different row was open (`precharge + open + read`).
    Conflict,
}

/// Completion information for one DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramAccess {
    /// Cycle at which the access completes.
    pub done: Cycles,
    /// Cycle at which the bank actually started serving it (after queueing).
    pub start: Cycles,
    /// Page-state case.
    pub outcome: PageOutcome,
    /// Bank that served the access.
    pub bank: u32,
}

impl DramAccess {
    /// Queueing delay spent waiting for the bank.
    pub fn queue_cycles(&self, arrival: Cycles) -> Cycles {
        self.start.saturating_sub(arrival)
    }
}

#[derive(Debug, Clone, Default)]
struct Bank {
    /// Open rows, most recently used first (bounded by
    /// [`DramConfig::open_rows`]).
    open_rows: Vec<u64>,
    free_at: Cycles,
}

/// A banked DRAM array.
#[derive(Debug, Clone)]
pub struct DramArray {
    cfg: DramConfig,
    banks: Vec<Bank>,
    /// Counters per page-state case: `[hit, empty, conflict]`.
    outcomes: [u64; 3],
    /// `page_size.trailing_zeros()` — validation guarantees a power of two.
    page_shift: u32,
    /// `banks - 1` as a mask — validation guarantees a power of two.
    bank_mask: u64,
    /// `banks.trailing_zeros()`.
    bank_shift: u32,
}

impl DramArray {
    /// Builds the array from a configuration.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] from [`DramConfig::validate`] if the
    /// configuration is rejected.
    pub fn new(cfg: DramConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(DramArray {
            banks: vec![Bank::default(); cfg.banks as usize],
            page_shift: cfg.page_size.trailing_zeros(),
            bank_mask: u64::from(cfg.banks - 1),
            bank_shift: cfg.banks.trailing_zeros(),
            cfg,
            outcomes: [0; 3],
        })
    }

    /// The configuration of this array.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Maps an address to its (bank, row) pair. Pages are interleaved across
    /// banks ("16 address interleaved banks", Table 3): consecutive pages go
    /// to consecutive banks.
    pub fn map(&self, addr: u64) -> (u32, u64) {
        let page = addr >> self.page_shift;
        let bank = (page & self.bank_mask) as u32;
        let row = page >> self.bank_shift;
        (bank, row)
    }

    /// Performs an access arriving at cycle `at` and returns its timing.
    /// The bank is busy until the access completes; an open-page policy is
    /// used (the row stays open afterwards).
    pub fn access(&mut self, addr: u64, at: Cycles) -> DramAccess {
        let (bank_idx, row) = self.map(addr);
        let t = &self.cfg.timing;
        let max_rows = self.cfg.open_rows as usize;
        let bank = &mut self.banks[bank_idx as usize];
        let start = at.max(bank.free_at);
        let (outcome, delay) = if let Some(pos) = bank.open_rows.iter().position(|&r| r == row) {
            bank.open_rows.remove(pos);
            (PageOutcome::Hit, t.page_hit())
        } else if bank.open_rows.len() < max_rows {
            (PageOutcome::Empty, t.page_empty())
        } else {
            bank.open_rows.pop();
            (PageOutcome::Conflict, t.page_conflict())
        };
        bank.open_rows.insert(0, row);
        // the CAS latency is pipelined: the bank is busy for the row
        // operations (everything beyond the `read` part of `delay`) plus
        // one data burst, while the requester sees the full `delay`
        bank.free_at = start + (delay - t.read) + t.burst;
        self.outcomes[outcome as usize] += 1;
        DramAccess {
            done: start + delay,
            start,
            outcome,
            bank: bank_idx,
        }
    }

    /// Access counts per page-state case: `(hits, empties, conflicts)`.
    pub fn outcome_counts(&self) -> (u64, u64, u64) {
        (self.outcomes[0], self.outcomes[1], self.outcomes[2])
    }

    /// Fraction of accesses that were page hits (0 if no accesses yet).
    pub fn page_hit_rate(&self) -> f64 {
        let total: u64 = self.outcomes.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.outcomes[0] as f64 / total as f64
        }
    }

    /// Closes all pages and idles all banks (e.g. between benchmark phases).
    pub fn reset(&mut self) {
        for b in &mut self.banks {
            *b = Bank::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramTiming;

    fn array() -> DramArray {
        DramArray::new(DramConfig {
            banks: 4,
            page_size: 512,
            timing: DramTiming::table3(),
            open_rows: 1,
        })
        .expect("valid test config")
    }

    #[test]
    fn mapping_interleaves_pages_across_banks() {
        let a = array();
        assert_eq!(a.map(0), (0, 0));
        assert_eq!(a.map(512), (1, 0));
        assert_eq!(a.map(3 * 512), (3, 0));
        assert_eq!(a.map(4 * 512), (0, 1));
        assert_eq!(a.map(4 * 512 + 511), (0, 1));
    }

    #[test]
    fn first_access_is_page_empty() {
        let mut a = array();
        let acc = a.access(0, 0);
        assert_eq!(acc.outcome, PageOutcome::Empty);
        assert_eq!(acc.done, 100, "open(50) + read(50)");
    }

    #[test]
    fn same_row_access_is_page_hit() {
        let mut a = array();
        a.access(0, 0);
        let acc = a.access(64, 200);
        assert_eq!(acc.outcome, PageOutcome::Hit);
        assert_eq!(acc.done, 250, "read(50) only");
    }

    #[test]
    fn different_row_same_bank_conflicts() {
        let mut a = array();
        a.access(0, 0); // bank 0 row 0
        let acc = a.access(4 * 512, 200); // bank 0 row 1
        assert_eq!(acc.outcome, PageOutcome::Conflict);
        assert_eq!(acc.done, 200 + 154);
    }

    #[test]
    fn busy_bank_queues_requests() {
        let mut a = array();
        let first = a.access(0, 0);
        assert_eq!(first.done, 100);
        // bank is busy for open(50) + burst(8); the CAS pipeline overlaps
        let second = a.access(64, 10);
        assert_eq!(second.start, 58);
        assert_eq!(second.queue_cycles(10), 48);
        assert_eq!(second.done, 108, "page hit: read(50) after the queue");
    }

    #[test]
    fn open_page_streaming_is_burst_limited() {
        let mut a = array();
        a.access(0, 0); // opens the page, bank free at 58
        let x = a.access(64, 1000);
        let y = a.access(128, 1000);
        assert_eq!(x.done, 1050);
        assert_eq!(y.start, 1008, "second access waits one burst, not one CAS");
        assert_eq!(y.done, 1058);
    }

    #[test]
    fn distinct_banks_are_independent() {
        let mut a = array();
        let b0 = a.access(0, 0);
        let b1 = a.access(512, 0);
        assert_eq!(b0.done, 100);
        assert_eq!(b1.done, 100, "no queueing across banks");
        assert_ne!(b0.bank, b1.bank);
    }

    #[test]
    fn outcome_counters_accumulate() {
        let mut a = array();
        a.access(0, 0); // empty
        a.access(64, 200); // hit
        a.access(4 * 512, 400); // conflict
        assert_eq!(a.outcome_counts(), (1, 1, 1));
        assert!((a.page_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reset_closes_pages() {
        let mut a = array();
        a.access(0, 0);
        a.reset();
        let acc = a.access(64, 1000);
        assert_eq!(acc.outcome, PageOutcome::Empty);
    }

    #[test]
    fn page_hit_rate_zero_without_accesses() {
        assert_eq!(array().page_hit_rate(), 0.0);
    }
}
