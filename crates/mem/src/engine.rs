//! The dependency-driven trace issue engine.
//!
//! Mirrors the methodology of §2.1: the memory-hierarchy simulator "honors
//! all the dependencies specified in the trace and issues memory accesses
//! accordingly" — a record whose dependency has not completed may not issue.
//! Independent records from the same CPU issue back-to-back (up to a
//! configurable outstanding-miss window, which bounds memory-level
//! parallelism like a set of MSHRs would).

use stacksim_trace::{CpuId, MemOp, RecordBlock, Trace, TraceRecord};

use crate::config::{ConfigError, Cycles};
use crate::hierarchy::MemoryHierarchy;
use crate::stats::{HierarchyStats, RunResult};

/// Issue-engine parameters.
///
/// Marked `#[non_exhaustive]`: construct with [`EngineConfig::default`] or
/// [`EngineConfig::builder`] so new knobs can be added without breaking
/// downstream callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct EngineConfig {
    /// Maximum outstanding references per CPU (MSHR-like window).
    pub window: usize,
    /// Minimum cycles between successive issues from one CPU.
    pub issue_interval: Cycles,
    /// Out-of-order lookahead in cycles: younger independent references may
    /// issue at most this far *before* the most recently issued reference.
    /// This is the time-domain analogue of a finite reorder buffer — a
    /// dependency stall lets younger work proceed, but only as much as the
    /// window can hold.
    pub rob_lookahead: Cycles,
    /// Ablation switch: ignore dependency edges entirely (records then issue
    /// as fast as the window allows). Used by the `ablate_deps` bench.
    pub ignore_deps: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            window: 32,
            issue_interval: 1,
            rob_lookahead: 192,
            ignore_deps: false,
        }
    }
}

impl EngineConfig {
    /// Starts a builder seeded with the default configuration.
    #[must_use]
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder {
            cfg: EngineConfig::default(),
        }
    }

    /// Checks internal consistency. The lint pass `SL041` and the builder's
    /// [`EngineConfigBuilder::build`] both delegate here.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.window == 0 {
            return Err(ConfigError::new(
                "outstanding-reference window must be at least 1",
            ));
        }
        if self.issue_interval == 0 {
            return Err(ConfigError::new("issue interval must be at least 1 cycle"));
        }
        Ok(())
    }
}

/// Builder for [`EngineConfig`].
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    cfg: EngineConfig,
}

impl EngineConfigBuilder {
    /// Maximum outstanding references per CPU (MSHR-like window).
    #[must_use]
    pub fn window(mut self, window: usize) -> Self {
        self.cfg.window = window;
        self
    }

    /// Minimum cycles between successive issues from one CPU.
    #[must_use]
    pub fn issue_interval(mut self, issue_interval: Cycles) -> Self {
        self.cfg.issue_interval = issue_interval;
        self
    }

    /// Out-of-order lookahead in cycles.
    #[must_use]
    pub fn rob_lookahead(mut self, rob_lookahead: Cycles) -> Self {
        self.cfg.rob_lookahead = rob_lookahead;
        self
    }

    /// Ablation switch: ignore dependency edges entirely.
    #[must_use]
    pub fn ignore_deps(mut self, ignore_deps: bool) -> Self {
        self.cfg.ignore_deps = ignore_deps;
        self
    }

    /// Finishes the configuration, validating it.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`EngineConfig::validate`]). Use [`Self::try_build`] to handle the
    /// error instead.
    #[must_use]
    pub fn build(self) -> EngineConfig {
        match self.try_build() {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Finishes the configuration, returning the first constraint violation
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the violation reported by [`EngineConfig::validate`].
    pub fn try_build(self) -> Result<EngineConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[derive(Debug, Clone, Default)]
struct CpuState {
    /// Issue-bandwidth cursor: advances by `issue_interval` per record,
    /// independent of stalls — a dependency stall delays the stalled record
    /// only, while younger independent records keep issuing (out-of-order
    /// issue, as in the paper's tool where only the dependent record waits).
    cursor: Cycles,
    /// Completion times of outstanding references, sorted *descending* so
    /// both hot operations — draining completed references and claiming
    /// the earliest completion when the window is full — are pops off the
    /// tail instead of head removals or whole-vector scans.
    outstanding: Vec<Cycles>,
}

impl CpuState {
    #[inline(always)]
    fn drain_before(&mut self, t: Cycles) {
        while self.outstanding.last().is_some_and(|&c| c <= t) {
            self.outstanding.pop();
        }
    }

    #[inline(always)]
    fn insert(&mut self, done: Cycles) {
        // Linear scan from the tail (the *small*, recently-completing
        // entries) instead of a binary search: completions cluster, so
        // the scan stops after a couple of well-predicted probes, while
        // `partition_point` eats branch mispredicts on every level.
        // Ties may land on either side of existing equal entries — both
        // drain/pop paths treat equal times identically.
        // Open-coded as push-then-shift: `Vec::insert` costs a capacity
        // check and an out-of-line memmove even when nothing moves, while
        // this loop compiles to a couple of in-register moves for the
        // typical 0–4 displaced entries.
        let v = &mut self.outstanding;
        v.push(done);
        let mut pos = v.len() - 1;
        while pos > 0 && v[pos - 1] < done {
            v[pos] = v[pos - 1];
            pos -= 1;
        }
        v[pos] = done;
    }
}

/// Issue time and completion time of one stepped record.
#[derive(Debug, Clone, Copy)]
struct Issued {
    /// Cycle the record issued (after dependency / window stalls).
    at: Cycles,
    /// Cycle the reference was satisfied.
    done: Cycles,
}

/// Drives a [`MemoryHierarchy`] with a dependency-annotated trace.
#[derive(Debug)]
pub struct Engine {
    cfg: EngineConfig,
    hierarchy: MemoryHierarchy,
}

impl Engine {
    /// Creates an engine around a hierarchy.
    pub fn new(hierarchy: MemoryHierarchy, cfg: EngineConfig) -> Self {
        Engine { cfg, hierarchy }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Read access to the driven hierarchy.
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }

    /// Runs a whole trace and reports metrics over all of it.
    pub fn run(&mut self, trace: &Trace) -> RunResult {
        self.run_warmed(trace, 0.0)
    }

    /// Runs a trace, excluding the first `warmup` fraction (0.0..1.0) of
    /// records from the reported metrics. The excluded prefix still updates
    /// cache, bank and bus state, so large caches are measured warm.
    ///
    /// The measured interval is bounded by *issue* and *completion* times
    /// of the measured records themselves: it opens at the earliest issue
    /// among them and closes at their latest completion. Pre-warmup
    /// references still in flight at the boundary therefore no longer
    /// deflate the interval (they used to: the interval previously opened
    /// at the max completion over the whole warmup prefix, which can lie
    /// *beyond* most of the measured work).
    ///
    /// # Panics
    ///
    /// Panics if `warmup` is not within `0.0..1.0`, or if `warmup` rounds
    /// the warm prefix up to the entire (non-empty) trace and would leave
    /// an empty measurement window — which would otherwise silently
    /// report a CPMA of 0.0.
    pub fn run_warmed(&mut self, trace: &Trace, warmup: f64) -> RunResult {
        assert!(
            (0.0..1.0).contains(&warmup),
            "warmup fraction must be in [0, 1)"
        );
        let warm_records = (trace.len() as f64 * warmup) as usize;
        assert!(
            trace.is_empty() || warm_records < trace.len(),
            "warmup fraction {warmup} warms all {} records and leaves an \
             empty measurement window",
            trace.len()
        );
        // Completion times live in a power-of-two ring sized to the
        // largest dependency distance in the trace, not a full-length
        // table: the dependency offset is bounded, so by the time slot
        // `i & mask` is overwritten no later record can reference index
        // `i` any more (a distance of exactly `ring_len` is legal — the
        // slot is read before this record's own write clobbers it).
        let packed = trace.packed();
        let ring_len = (trace.max_dep_offset().max(1) as usize).next_power_of_two();
        let mask = ring_len - 1;
        let mut ring: Vec<Cycles> = vec![0; ring_len];
        let mut cpus: Vec<CpuState> = vec![CpuState::default(); trace.cpu_count().max(1)];

        let mut stats_at_warmup = HierarchyStats::default();
        let mut bus_bytes_at_warmup = 0u64;
        // Earliest issue / latest completion over the *measured* records
        // (`MAX` = none measured yet; min-tracking stays branchless).
        let mut measured_from: Cycles = Cycles::MAX;
        let mut measured_last: Cycles = 0;

        let (warm, measured) = packed.split_at(warm_records);
        for (i, p) in warm.iter().enumerate() {
            let d = p.dep_offset() as usize;
            let dep_done = if d == 0 { 0 } else { ring[(i - d) & mask] };
            let cpu = p.cpu();
            let issued = self.issue(cpu, p.op(), p.addr, &mut cpus[cpu.index()], dep_done);
            ring[i & mask] = issued.done;
        }
        if warm_records > 0 {
            stats_at_warmup = *self.hierarchy.stats();
            bus_bytes_at_warmup = self.hierarchy.bus().bytes();
        }
        for (j, p) in measured.iter().enumerate() {
            let i = warm_records + j;
            let d = p.dep_offset() as usize;
            let dep_done = if d == 0 { 0 } else { ring[(i - d) & mask] };
            let cpu = p.cpu();
            let issued = self.issue(cpu, p.op(), p.addr, &mut cpus[cpu.index()], dep_done);
            ring[i & mask] = issued.done;
            measured_from = measured_from.min(issued.at);
            measured_last = measured_last.max(issued.done);
        }
        self.hierarchy.obs_flush();
        if stacksim_obs::enabled() {
            stacksim_obs::counter(crate::obs::ENGINE_RECORDS).add(trace.len() as u64);
        }

        let end_stats = *self.hierarchy.stats();
        let stats = diff_stats(end_stats, stats_at_warmup);
        let bytes = self.hierarchy.bus().bytes() - bus_bytes_at_warmup;
        let total_cycles = measured_last.saturating_sub(if measured_from == Cycles::MAX {
            0
        } else {
            measured_from
        });
        let references = stats.accesses;
        debug_assert!(
            references > 0 || trace.is_empty(),
            "non-empty trace produced an empty measurement window"
        );
        let cpma = if references == 0 {
            0.0
        } else {
            total_cycles as f64 / references as f64
        };
        let gbs = if total_cycles == 0 {
            0.0
        } else {
            bytes as f64 * self.hierarchy.config().bus.core_hz / total_cycles as f64 / 1e9
        };
        RunResult {
            total_cycles,
            references,
            cpma,
            mean_latency: stats.mean_latency(),
            offdie_gb_per_sec: gbs,
            offdie_bytes: bytes,
            stats,
        }
    }

    /// Runs a record stream without materialising it, for paper-scale
    /// (billions of references) runs. Dependencies must point at most
    /// `dep_window` records back — the engine keeps only a ring of recent
    /// completion times. Kernel-generated traces have short dependence
    /// distances (indices feeding gathers, reduction chains), so a few
    /// thousand is ample.
    ///
    /// # Panics
    ///
    /// Panics if `dep_window` is zero, a record's dependency is further
    /// back than `dep_window`, or the stream's ids are not dense from 0.
    pub fn run_stream<I>(&mut self, records: I, dep_window: usize) -> RunResult
    where
        I: IntoIterator<Item = TraceRecord>,
    {
        assert!(dep_window > 0, "dependency window must be positive");
        let mut ring: Vec<Cycles> = vec![0; dep_window];
        let mut cpus: Vec<CpuState> = Vec::new();
        let mut last_done: Cycles = 0;
        let mut n: u64 = 0;
        for r in records {
            assert_eq!(r.id.raw(), n, "stream ids must be dense from zero");
            if let Some(dep) = r.dep {
                // A distance of *exactly* `dep_window` is legal: the
                // dependency's completion still sits in
                // `ring[dep % dep_window]` — the very slot this record
                // overwrites below — and the issue step reads it before
                // that overwrite. Any greater distance has already been
                // clobbered by an intervening record, so it must panic
                // rather than silently use a younger completion time.
                assert!(
                    r.id.raw() - dep.raw() <= dep_window as u64,
                    "dependency distance {} exceeds the window {dep_window}",
                    r.id.raw() - dep.raw()
                );
            }
            if r.cpu.index() >= cpus.len() {
                cpus.resize_with(r.cpu.index() + 1, CpuState::default);
            }
            let dep_done = r.dep.map_or(0, |dep| ring[dep.index() % dep_window]);
            let issued = self.issue(r.cpu, r.op, r.addr, &mut cpus[r.cpu.index()], dep_done);
            ring[r.id.index() % dep_window] = issued.done;
            last_done = last_done.max(issued.done);
            n += 1;
        }
        self.hierarchy.obs_flush();
        if stacksim_obs::enabled() {
            stacksim_obs::counter(crate::obs::ENGINE_RECORDS).add(n);
        }
        self.stream_result(last_done, n)
    }

    /// Runs a stream of packed-record blocks — the generate-while-simulate
    /// pipeline. Blocks typically arrive through a bounded channel fed by a
    /// producer thread (see `stacksim-workloads`), so the whole trace is
    /// never materialised. Dependencies must point at most `dep_window`
    /// records back; the engine keeps only a power-of-two ring of recent
    /// completion times. Batched observability counters flush once per
    /// block rather than per reference.
    ///
    /// Simulation results are bit-identical to [`Engine::run`] on the
    /// materialised concatenation of the blocks, for any block
    /// partitioning — the channel carries data, never ordering.
    ///
    /// # Panics
    ///
    /// Panics if `dep_window` is zero or a record's dependency reaches
    /// further back than `dep_window`.
    pub fn run_blocks<I>(&mut self, blocks: I, dep_window: usize) -> RunResult
    where
        I: IntoIterator<Item = RecordBlock>,
    {
        assert!(dep_window > 0, "dependency window must be positive");
        let ring_len = dep_window.next_power_of_two();
        let mask = ring_len - 1;
        let mut ring: Vec<Cycles> = vec![0; ring_len];
        let mut cpus: Vec<CpuState> = Vec::new();
        let mut last_done: Cycles = 0;
        let mut n: usize = 0;
        for block in blocks {
            for p in &block {
                let d = p.dep_offset() as usize;
                assert!(
                    d <= dep_window,
                    "dependency distance {d} exceeds the window {dep_window}"
                );
                let cpu = p.cpu();
                if cpu.index() >= cpus.len() {
                    cpus.resize_with(cpu.index() + 1, CpuState::default);
                }
                let dep_done = if d == 0 { 0 } else { ring[(n - d) & mask] };
                let issued = self.issue(cpu, p.op(), p.addr, &mut cpus[cpu.index()], dep_done);
                ring[n & mask] = issued.done;
                last_done = last_done.max(issued.done);
                n += 1;
            }
            self.hierarchy.obs_flush();
        }
        if stacksim_obs::enabled() {
            stacksim_obs::counter(crate::obs::ENGINE_RECORDS).add(n as u64);
        }
        self.stream_result(last_done, n as u64)
    }

    /// Whole-stream accounting shared by [`Engine::run_stream`] and
    /// [`Engine::run_blocks`]: the measured interval opens at cycle 0.
    fn stream_result(&self, last_done: Cycles, n: u64) -> RunResult {
        let stats = *self.hierarchy.stats();
        let bytes = self.hierarchy.bus().bytes();
        let cpma = if n == 0 {
            0.0
        } else {
            last_done as f64 / n as f64
        };
        let gbs = if last_done == 0 {
            0.0
        } else {
            bytes as f64 * self.hierarchy.config().bus.core_hz / last_done as f64 / 1e9
        };
        RunResult {
            total_cycles: last_done,
            references: n,
            cpma,
            mean_latency: stats.mean_latency(),
            offdie_gb_per_sec: gbs,
            offdie_bytes: bytes,
            stats,
        }
    }

    /// The one issue/drain/access/cursor sequence shared by every run
    /// path. `dep_done` is the completion time of the record's dependency
    /// (0 when it has none); it is ignored under the `ignore_deps`
    /// ablation. Force-inlined: with four call sites this loses the
    /// inliner's cost model, but each replay loop wants the whole
    /// issue/access/insert chain flattened so the per-cpu state stays in
    /// registers across records.
    #[inline(always)]
    fn issue(
        &mut self,
        cpu_id: CpuId,
        op: MemOp,
        addr: u64,
        cpu: &mut CpuState,
        dep_done: Cycles,
    ) -> Issued {
        let mut t = cpu.cursor;
        if !self.cfg.ignore_deps {
            t = t.max(dep_done);
        }
        cpu.drain_before(t);
        while cpu.outstanding.len() >= self.cfg.window {
            match cpu.outstanding.pop() {
                Some(earliest) => t = t.max(earliest),
                None => break, // unreachable: len >= window >= 1
            }
        }
        let res = self.hierarchy.access(cpu_id, op, addr, t);
        cpu.insert(res.done);
        // the cursor advances at issue bandwidth, but may not lag the newest
        // issue by more than the lookahead — younger records overlap a stall
        // only as far as the reorder window reaches
        cpu.cursor =
            cpu.cursor.max(t.saturating_sub(self.cfg.rob_lookahead)) + self.cfg.issue_interval;
        Issued {
            at: t,
            done: res.done,
        }
    }
}

fn diff_stats(end: HierarchyStats, start: HierarchyStats) -> HierarchyStats {
    HierarchyStats {
        accesses: end.accesses - start.accesses,
        l1_hits: end.l1_hits - start.l1_hits,
        l2_hits: end.l2_hits - start.l2_hits,
        stacked_hits: end.stacked_hits - start.stacked_hits,
        stacked_sector_misses: end.stacked_sector_misses - start.stacked_sector_misses,
        memory_accesses: end.memory_accesses - start.memory_accesses,
        memory_served: end.memory_served - start.memory_served,
        l1_writebacks: end.l1_writebacks - start.l1_writebacks,
        offdie_writebacks: end.offdie_writebacks - start.offdie_writebacks,
        fill_waits: end.fill_waits - start.fill_waits,
        latency_sum: end.latency_sum - start.latency_sum,
        last_completion: end.last_completion,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HierarchyConfig;
    use stacksim_trace::{CpuId, MemOp, TraceBuilder};

    fn engine() -> Engine {
        Engine::new(
            MemoryHierarchy::new(HierarchyConfig::core2_baseline()).expect("valid preset"),
            EngineConfig::default(),
        )
    }

    #[test]
    fn builder_accepts_valid_config() {
        let cfg = EngineConfig::builder().window(8).issue_interval(2).build();
        assert_eq!(cfg.window, 8);
        assert_eq!(cfg.issue_interval, 2);
    }

    #[test]
    fn zero_window_rejected() {
        let err = EngineConfig::builder().window(0).try_build();
        assert!(err.unwrap_err().to_string().contains("window"));
    }

    #[test]
    fn zero_issue_interval_rejected() {
        let err = EngineConfig::builder().issue_interval(0).try_build();
        assert!(err.unwrap_err().to_string().contains("issue interval"));
    }

    #[test]
    #[should_panic(expected = "invalid memory configuration")]
    fn build_panics_on_invalid() {
        let _ = EngineConfig::builder().window(0).build();
    }

    #[test]
    fn pure_hit_trace_reaches_issue_throughput() {
        // one cpu touching a single line repeatedly: after the cold miss,
        // every access is an L1 hit and issues once per cycle
        let mut b = TraceBuilder::new();
        for _ in 0..1000 {
            b.record(CpuId::new(0), MemOp::Load, 0x1000, 0);
        }
        let t = b.build();
        let r = engine().run(&t);
        // elapsed ~ cold miss latency + ~1000 issue slots; cpma ~ 1.26
        assert!(r.cpma < 1.5, "cpma = {}", r.cpma);
        assert_eq!(r.references, 1000);
        assert_eq!(r.stats.l1_hits, 999);
    }

    #[test]
    fn two_cpus_halve_cpma() {
        let mut b = TraceBuilder::new();
        for _ in 0..1000 {
            b.record(CpuId::new(0), MemOp::Load, 0x1000, 0);
            b.record(CpuId::new(1), MemOp::Load, 0x9000, 0);
        }
        let t = b.build();
        let r = engine().run(&t);
        assert!(
            r.cpma < 0.8,
            "two independent streams overlap: cpma = {}",
            r.cpma
        );
    }

    #[test]
    fn serial_dependence_chain_exposes_latency() {
        // every load depends on the previous one and misses (distinct 4 KB
        // pages, distinct L2 sets): CPMA approaches the memory latency
        let mut b = TraceBuilder::new();
        let mut prev = None;
        for i in 0..200u64 {
            prev = Some(b.record_dep(CpuId::new(0), MemOp::Load, i << 20, 0, prev));
        }
        let t = b.build();
        let r = engine().run(&t);
        assert!(
            r.cpma > 150.0,
            "serial misses cannot overlap: cpma = {}",
            r.cpma
        );
    }

    #[test]
    fn ignoring_deps_restores_overlap() {
        // stride 4 KB so successive misses hit different DDR banks and can
        // genuinely overlap once dependencies are ignored
        let mut b = TraceBuilder::new();
        let mut prev = None;
        for i in 0..200u64 {
            prev = Some(b.record_dep(CpuId::new(0), MemOp::Load, i * 4096, 0, prev));
        }
        let t = b.build();
        let mut e = Engine::new(
            MemoryHierarchy::new(HierarchyConfig::core2_baseline()).expect("valid preset"),
            EngineConfig {
                ignore_deps: true,
                ..EngineConfig::default()
            },
        );
        let overlapped = e.run(&t).cpma;
        let mut e = Engine::new(
            MemoryHierarchy::new(HierarchyConfig::core2_baseline()).expect("valid preset"),
            EngineConfig::default(),
        );
        let serial = e.run(&t).cpma;
        assert!(
            overlapped * 2.0 < serial,
            "ignoring deps must at least halve CPMA: {overlapped} vs {serial}"
        );
    }

    #[test]
    fn window_bounds_outstanding_misses() {
        // independent misses with window 1 serialize completely
        let mut b = TraceBuilder::new();
        for i in 0..100u64 {
            b.record(CpuId::new(0), MemOp::Load, i << 20, 0);
        }
        let t = b.build();
        let mut e = Engine::new(
            MemoryHierarchy::new(HierarchyConfig::core2_baseline()).expect("valid preset"),
            EngineConfig {
                window: 1,
                ..EngineConfig::default()
            },
        );
        let serial = e.run(&t).cpma;
        let parallel = engine().run(&t).cpma;
        assert!(
            serial > 2.0 * parallel,
            "window=1 ({serial}) must be much slower than window=16 ({parallel})"
        );
    }

    #[test]
    fn warmup_excludes_cold_misses() {
        // first half touches the working set (cold), second half re-touches
        // it (warm); with warmup=0.5 the reported run is all hits
        let mut b = TraceBuilder::new();
        for rep in 0..2 {
            for i in 0..64u64 {
                let _ = rep;
                b.record(CpuId::new(0), MemOp::Load, 0x1000 + i * 64, 0);
            }
        }
        let t = b.build();
        let mut e = engine();
        let r = e.run_warmed(&t, 0.5);
        assert_eq!(r.references, 64);
        assert_eq!(r.stats.l1_hits, 64, "measured region is fully warm");
    }

    #[test]
    fn warmup_interval_opens_at_measured_issue_not_warmup_completion() {
        // One cold off-die miss (completes ~262) followed by an L1 hit.
        // With warmup=0.5 the measured window is just the hit: it issues
        // at cycle 1 and completes at cycle 5. The old accounting opened
        // the interval at the *warmup prefix's* max completion (262),
        // saturating-subtracted its way to 0 cycles and reported CPMA 0.
        let mut b = TraceBuilder::new();
        b.record(CpuId::new(0), MemOp::Load, 0x1000, 0);
        b.record(CpuId::new(0), MemOp::Load, 0x1000, 0);
        let t = b.build();
        let r = engine().run_warmed(&t, 0.5);
        assert_eq!(r.references, 1);
        assert_eq!(r.stats.l1_hits, 1);
        assert_eq!(r.total_cycles, 4, "issue at 1, L1 hit completes at 5");
        assert!((r.cpma - 4.0).abs() < 1e-12, "cpma = {}", r.cpma);
    }

    #[test]
    fn warmup_near_one_on_short_trace_still_measures() {
        let mut b = TraceBuilder::new();
        b.record(CpuId::new(0), MemOp::Load, 0x1000, 0);
        b.record(CpuId::new(0), MemOp::Load, 0x1000, 0);
        let t = b.build();
        // 2 * 0.9 floors to 1 warm record: one measured reference remains.
        let r = engine().run_warmed(&t, 0.9);
        assert_eq!(r.references, 1);
        assert!(r.cpma > 0.0, "a measured reference must cost cycles");
    }

    #[test]
    fn extreme_warmup_never_empties_the_measurement_window() {
        // The largest f64 below 1.0. For any trace length the product
        // `len * warmup` stays strictly below `len` (the real value
        // `len - len * 2^-53` never rounds up to `len`), so at least one
        // record is always measured — and the explicit assert in
        // `run_warmed` guards the invariant should the computation ever
        // change. Before the accounting fix this scenario reported a
        // silent CPMA of 0.0; now it must always cost cycles.
        let warmup = f64::from_bits(0x3FEF_FFFF_FFFF_FFFF);
        for len in [1usize, 2, 3, 1024] {
            let mut b = TraceBuilder::new();
            for _ in 0..len {
                b.record(CpuId::new(0), MemOp::Load, 0x1000, 0);
            }
            let t = b.build();
            let r = engine().run_warmed(&t, warmup);
            assert!(r.references >= 1, "len {len} measured nothing");
            assert!(r.cpma > 0.0, "len {len}: measured work must cost cycles");
        }
    }

    #[test]
    fn empty_trace_is_a_zero_run() {
        let r = engine().run(&Trace::new());
        assert_eq!(r.references, 0);
        assert_eq!(r.cpma, 0.0);
        assert_eq!(r.offdie_bytes, 0);
    }

    #[test]
    #[should_panic(expected = "warmup fraction")]
    fn invalid_warmup_panics() {
        let _ = engine().run_warmed(&Trace::new(), 1.5);
    }

    fn mixed_trace(n: u64) -> Trace {
        let mut b = TraceBuilder::new();
        let mut prev = None;
        for i in 0..n {
            let dep = if i % 4 == 0 { prev } else { None };
            prev = Some(b.record_dep(
                CpuId::new((i % 2) as u8),
                if i % 7 == 0 {
                    MemOp::Store
                } else {
                    MemOp::Load
                },
                (i * 2917) % (1 << 22),
                0,
                dep,
            ));
        }
        b.build()
    }

    fn assert_stream_matches_run(cfg: EngineConfig, t: &Trace, dep_window: usize) {
        let mut batch_engine = Engine::new(
            MemoryHierarchy::new(HierarchyConfig::core2_baseline()).expect("valid preset"),
            cfg,
        );
        let batch = batch_engine.run(t);
        let mut stream_engine = Engine::new(
            MemoryHierarchy::new(HierarchyConfig::core2_baseline()).expect("valid preset"),
            cfg,
        );
        let stream = stream_engine.run_stream(t.iter(), dep_window);
        assert_eq!(batch.total_cycles, stream.total_cycles, "cfg {cfg:?}");
        assert_eq!(batch.offdie_bytes, stream.offdie_bytes, "cfg {cfg:?}");
        assert_eq!(batch.references, stream.references, "cfg {cfg:?}");
        assert_eq!(batch.stats, stream.stats, "cfg {cfg:?}");
    }

    #[test]
    fn run_stream_matches_run_on_materialised_traces() {
        assert_stream_matches_run(EngineConfig::default(), &mixed_trace(5_000), 64);
    }

    #[test]
    fn run_stream_matches_run_with_nonzero_lookahead_variants() {
        // The shared issue core must agree for lookahead 0 (cursor pinned
        // to the newest issue), the default 192, and an effectively
        // unbounded lookahead.
        let t = mixed_trace(5_000);
        for rob_lookahead in [0, 192, 1 << 40] {
            let cfg = EngineConfig {
                rob_lookahead,
                ..EngineConfig::default()
            };
            assert_stream_matches_run(cfg, &t, 64);
        }
    }

    #[test]
    fn run_stream_matches_run_with_saturated_window() {
        // window=2 forces the outstanding-miss drain loop to run on nearly
        // every record, exercising the full-window path of the shared core.
        let cfg = EngineConfig {
            window: 2,
            ..EngineConfig::default()
        };
        assert_stream_matches_run(cfg, &mixed_trace(5_000), 64);
    }

    #[test]
    fn run_stream_accepts_dependency_at_exactly_dep_window() {
        // Distance == dep_window is the boundary the ring invariant makes
        // legal: the dependency's slot is read before this record
        // overwrites it. The stream must also agree with the batch path.
        let dep_window = 16usize;
        let mut b = TraceBuilder::new();
        let first = b.record_dep(CpuId::new(0), MemOp::Load, 0, 0, None);
        for i in 1..dep_window as u64 {
            b.record(CpuId::new(0), MemOp::Load, i << 20, 0);
        }
        // id == dep_window, dep id == 0: distance exactly dep_window
        b.record_dep(CpuId::new(0), MemOp::Load, 64, 0, Some(first));
        let t = b.build();
        assert_stream_matches_run(EngineConfig::default(), &t, dep_window);
    }

    #[test]
    #[should_panic(expected = "exceeds the window")]
    fn run_stream_rejects_dependency_at_dep_window_plus_one() {
        // One past the boundary: the slot has been overwritten by the
        // depending record's predecessor, so the engine must refuse.
        let dep_window = 16usize;
        let mut b = TraceBuilder::new();
        let first = b.record_dep(CpuId::new(0), MemOp::Load, 0, 0, None);
        for i in 1..=dep_window as u64 {
            b.record(CpuId::new(0), MemOp::Load, i << 20, 0);
        }
        // id == dep_window + 1, dep id == 0
        b.record_dep(CpuId::new(0), MemOp::Load, 64, 0, Some(first));
        let t = b.build();
        let _ = engine().run_stream(t.iter(), dep_window);
    }

    #[test]
    #[should_panic(expected = "exceeds the window")]
    fn run_stream_rejects_distant_dependencies() {
        let mut b = TraceBuilder::new();
        let first = b.record(CpuId::new(0), MemOp::Load, 0, 0);
        for _ in 0..100 {
            b.record(CpuId::new(0), MemOp::Load, 64, 0);
        }
        b.record_dep(CpuId::new(0), MemOp::Load, 128, 0, Some(first));
        let t = b.build();
        let _ = engine().run_stream(t.iter(), 16);
    }

    #[test]
    fn run_blocks_matches_run_at_any_block_size() {
        let t = mixed_trace(5_000);
        let batch = engine().run(&t);
        for block_len in [1usize, 64, 4096] {
            let blocks: Vec<_> = t.packed().chunks(block_len).map(<[_]>::to_vec).collect();
            let mut e = engine();
            let streamed = e.run_blocks(blocks, 64);
            assert_eq!(
                batch.total_cycles, streamed.total_cycles,
                "block {block_len}"
            );
            assert_eq!(
                batch.offdie_bytes, streamed.offdie_bytes,
                "block {block_len}"
            );
            assert_eq!(batch.references, streamed.references, "block {block_len}");
            assert_eq!(batch.stats, streamed.stats, "block {block_len}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the window")]
    fn run_blocks_rejects_distant_dependencies() {
        let mut b = TraceBuilder::new();
        let first = b.record(CpuId::new(0), MemOp::Load, 0, 0);
        for _ in 0..100 {
            b.record(CpuId::new(0), MemOp::Load, 64, 0);
        }
        b.record_dep(CpuId::new(0), MemOp::Load, 128, 0, Some(first));
        let t = b.build();
        let _ = engine().run_blocks([t.packed().to_vec()], 16);
    }

    #[test]
    fn offdie_bandwidth_reported_for_streaming_misses() {
        let mut b = TraceBuilder::new();
        for i in 0..5000u64 {
            b.record(CpuId::new(0), MemOp::Load, i * 64, 0);
        }
        let t = b.build();
        let mut e = engine();
        let r = e.run(&t);
        assert!(
            r.offdie_gb_per_sec > 1.0,
            "streaming misses load the bus: {}",
            r.offdie_gb_per_sec
        );
        assert!(r.offdie_bytes >= 5000 / 64 * 64, "every line fetched once");
    }
}
