//! The full multi-processor memory hierarchy of Fig. 4 / Fig. 7.
//!
//! Composition: per-core L1I/L1D → shared SRAM L2 (optional) → stacked
//! SRAM/DRAM cache (optional) → off-die bus → DDR main memory. The
//! hierarchy is inclusive: evictions from an outer level back-invalidate the
//! inner levels.

use std::collections::HashMap;

use stacksim_trace::{CpuId, MemOp};

use crate::bus::Bus;
use crate::cache::{Cache, Evicted, Lookup};
use crate::config::{ConfigError, Cycles, HierarchyConfig, StackedLevel};
use crate::dram::DramArray;
use crate::obs::HierObs;
use crate::stats::HierarchyStats;

/// Which level satisfied an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceLevel {
    /// Hit in the per-core L1 (instruction or data).
    L1,
    /// Hit in the shared SRAM L2.
    L2,
    /// Hit in the stacked cache (both tag and sector present).
    Stacked,
    /// Satisfied by main memory.
    Memory,
}

/// Timing and routing outcome of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycle at which the request is satisfied.
    pub done: Cycles,
    /// Level that supplied the data.
    pub level: ServiceLevel,
}

/// A stacked DRAM cache: on-die tags + banked DRAM data array on the top die.
#[derive(Debug, Clone)]
struct StackedDram {
    tags: Cache,
    data: DramArray,
}

/// Counter values at the last observability flush. The hot path only
/// bumps plain [`HierarchyStats`] fields and bus aggregates; deltas
/// against this baseline are published to the process-global
/// instruments at flush points, so the per-access cost of the obs layer
/// is zero rather than a dozen atomic RMWs.
#[derive(Debug, Clone, Copy, Default)]
struct ObsBaseline {
    stats: HierarchyStats,
    bus_bytes: u64,
    bus_transfers: u64,
    bus_busy: Cycles,
    dram_outcomes: (u64, u64, u64),
    stacked_outcomes: (u64, u64, u64),
}

fn sub3(a: (u64, u64, u64), b: (u64, u64, u64)) -> (u64, u64, u64) {
    (a.0 - b.0, a.1 - b.1, a.2 - b.2)
}

/// The simulated memory hierarchy.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    cfg: HierarchyConfig,
    l1i: Vec<Cache>,
    l1d: Vec<Cache>,
    l2: Option<Cache>,
    stacked: Option<StackedDram>,
    bus: Bus,
    memory: DramArray,
    /// Completion times of lines currently being filled from memory
    /// (consulted only when `fill_latency` is enabled).
    inflight: HashMap<u64, Cycles>,
    stats: HierarchyStats,
    /// `!(l1 line size - 1)`, hoisted out of the per-access path (the
    /// configuration validated the size as a power of two once).
    line_mask: u64,
    /// Observability handles (process-global cells; only touched at
    /// [`MemoryHierarchy::obs_flush`], never per access).
    obs: HierObs,
    /// Counter values already published to the obs instruments.
    base: ObsBaseline,
}

impl MemoryHierarchy {
    /// Builds the hierarchy from a configuration.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] from [`HierarchyConfig::validate`]
    /// if any level's configuration is rejected.
    pub fn new(cfg: HierarchyConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let stacked = match &cfg.stacked {
            StackedLevel::None => None,
            StackedLevel::Dram { cache, dram } => Some(StackedDram {
                tags: Cache::new(*cache)?,
                data: DramArray::new(*dram)?,
            }),
        };
        Ok(MemoryHierarchy {
            l1i: (0..cfg.cpus)
                .map(|_| Cache::new(cfg.l1i))
                .collect::<Result<_, _>>()?,
            l1d: (0..cfg.cpus)
                .map(|_| Cache::new(cfg.l1d))
                .collect::<Result<_, _>>()?,
            l2: cfg.l2.map(Cache::new).transpose()?,
            stacked,
            bus: Bus::new(cfg.bus),
            memory: DramArray::new(cfg.memory.dram)?,
            inflight: HashMap::new(),
            stats: HierarchyStats::default(),
            line_mask: !(cfg.l1d.line_size - 1),
            obs: HierObs::new(),
            base: ObsBaseline::default(),
            cfg,
        })
    }

    /// The configuration this hierarchy was built from.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// The off-die bus (for bandwidth/power reporting).
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// Page-outcome counters of the stacked DRAM data array, if present.
    pub fn stacked_dram_outcomes(&self) -> Option<(u64, u64, u64)> {
        self.stacked.as_ref().map(|s| s.data.outcome_counts())
    }

    /// Simulates one memory reference issued by `cpu` at cycle `at`.
    ///
    /// Returns when and where it was satisfied. Updates all cache state,
    /// bus occupancy, DRAM bank state and statistics.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range for the configured CPU count.
    #[inline]
    pub fn access(&mut self, cpu: CpuId, op: MemOp, addr: u64, at: Cycles) -> AccessResult {
        assert!(cpu.index() < self.cfg.cpus, "cpu {cpu} out of range");
        // Fast path, inlined into the replay loops: an access the L1's MRU
        // line filter swallows touches nothing but the statistics. The
        // filter only fires when the hit is a guaranteed array no-op, so
        // falling through to the full path below yields identical state.
        let is_write = op.is_write();
        let l1 = if op == MemOp::IFetch {
            &self.l1i[cpu.index()]
        } else {
            &self.l1d[cpu.index()]
        };
        if l1.filter_hit(addr, is_write) {
            self.stats.accesses += 1;
            self.stats.l1_hits += 1;
            let t = at + l1.config().latency;
            let done = if self.cfg.fill_latency {
                self.fill_gate(addr, t)
            } else {
                t
            };
            self.stats.latency_sum += done - at;
            self.stats.last_completion = self.stats.last_completion.max(done);
            return AccessResult {
                done,
                level: ServiceLevel::L1,
            };
        }
        self.access_full(cpu, op, addr, at, is_write)
    }

    /// The full lookup chain; everything the fast path above does not
    /// handle inline.
    fn access_full(
        &mut self,
        cpu: CpuId,
        op: MemOp,
        addr: u64,
        at: Cycles,
        is_write: bool,
    ) -> AccessResult {
        self.stats.accesses += 1;

        // ---- L1 ----
        let l1 = if op == MemOp::IFetch {
            &mut self.l1i[cpu.index()]
        } else {
            &mut self.l1d[cpu.index()]
        };
        let t = at + l1.config().latency;
        // the fast path in `access` already saw this L1's filter miss
        match l1.access_past_filter(addr, is_write) {
            Lookup::Hit | Lookup::SectorMiss => {
                self.stats.l1_hits += 1;
                let done = self.fill_gate(addr, t);
                let result = AccessResult {
                    done,
                    level: ServiceLevel::L1,
                };
                self.finish(at, result);
                return result;
            }
            Lookup::Miss(evicted) => {
                if let Some(ev) = evicted {
                    if ev.dirty {
                        self.writeback_below_l1(ev, t);
                    }
                }
            }
        }

        // ---- L2 ----
        let mut t = t;
        if let Some(l2) = self.l2.as_mut() {
            t += l2.config().latency;
            // L1 is write-back, so a store miss *fills* L2 clean; the
            // line only becomes dirty in L2 when the L1 copy is written
            // back down
            match l2.access(addr, false) {
                Lookup::Hit | Lookup::SectorMiss => {
                    self.stats.l2_hits += 1;
                    let done = self.fill_gate(addr, t);
                    let result = AccessResult {
                        done,
                        level: ServiceLevel::L2,
                    };
                    self.finish(at, result);
                    return result;
                }
                Lookup::Miss(evicted) => {
                    if let Some(ev) = evicted {
                        self.handle_l2_eviction(ev, t);
                    }
                }
            }
        }

        // ---- stacked cache ----
        if let Some(s) = self.stacked.as_mut() {
            t += s.tags.config().latency;
            match s.tags.access(addr, false) {
                Lookup::Hit => {
                    // data access on the top die
                    let acc = s.data.access(addr, t);
                    self.stats.stacked_hits += 1;
                    let result = AccessResult {
                        done: acc.done,
                        level: ServiceLevel::Stacked,
                    };
                    self.finish(at, result);
                    return result;
                }
                Lookup::SectorMiss => {
                    // tag match, sector absent: fetch just this sector off-die
                    self.stats.stacked_sector_misses += 1;
                    let line = self.cfg.l1d.line_size;
                    let done = self.fetch_from_memory(addr, line, t);
                    // the returning sector is written into the DRAM array by
                    // the write buffer, off the critical path and without
                    // occupying a bank in front of demand reads
                    let result = AccessResult {
                        done,
                        level: ServiceLevel::Memory,
                    };
                    self.finish(at, result);
                    return result;
                }
                Lookup::Miss(evicted) => {
                    if let Some(ev) = evicted {
                        self.handle_stacked_eviction(ev, t);
                    }
                }
            }
        }

        // ---- main memory ----
        let line = self.cfg.l1d.line_size;
        let done = self.fetch_from_memory(addr, line, t);
        // fills into the stacked DRAM are posted through the write buffer
        // and drained opportunistically; they do not occupy banks in front
        // of demand reads
        let result = AccessResult {
            done,
            level: ServiceLevel::Memory,
        };
        self.finish(at, result);
        result
    }

    /// One off-die round trip: bus (with queueing) then the DDR banks behind
    /// the fixed transport latency. `bytes` is the payload size.
    fn fetch_from_memory(&mut self, addr: u64, bytes: u64, at: Cycles) -> Cycles {
        let xfer = self.bus.transfer(bytes, at);
        let mem = self
            .memory
            .access(addr, xfer.start + self.cfg.memory.transport);
        self.stats.memory_accesses += 1;
        let done = mem.done.max(xfer.done);
        if self.cfg.fill_latency {
            let line = addr & self.line_mask;
            self.inflight.insert(line, done);
            if self.inflight.len() > 8192 {
                self.inflight.retain(|_, d| *d + 100_000 > at);
            }
        }
        done
    }

    /// When fill latency is modelled, a hit on a line whose fill has not
    /// arrived yet (an MSHR coalesce) completes at the fill time instead.
    fn fill_gate(&mut self, addr: u64, done: Cycles) -> Cycles {
        if !self.cfg.fill_latency {
            return done;
        }
        let line = addr & self.line_mask;
        match self.inflight.get(&line) {
            Some(&fill) if fill > done => {
                self.stats.fill_waits += 1;
                fill
            }
            _ => done,
        }
    }

    /// A dirty L1 victim is written to the next level down. Pure state
    /// update; write-backs are posted and do not delay the triggering access.
    fn writeback_below_l1(&mut self, ev: Evicted, at: Cycles) {
        self.stats.l1_writebacks += 1;
        if let Some(l2) = self.l2.as_mut() {
            match l2.access(ev.line_addr, true) {
                Lookup::Hit | Lookup::SectorMiss => {}
                Lookup::Miss(Some(victim)) => self.handle_l2_eviction(victim, at),
                Lookup::Miss(None) => {}
            }
        } else if let Some(s) = self.stacked.as_mut() {
            let lookup = s.tags.access(ev.line_addr, true);
            match lookup {
                // the write lands via the write buffer; no bank occupancy
                Lookup::Hit | Lookup::SectorMiss => {}
                Lookup::Miss(Some(victim)) => self.handle_stacked_eviction(victim, at),
                Lookup::Miss(None) => {}
            }
        } else {
            self.offdie_writeback(self.cfg.l1d.line_size, ev.line_addr, at);
        }
    }

    /// An L2 victim: back-invalidate the L1s (inclusion); if anything dirty,
    /// pass it down to the stacked level or off-die.
    fn handle_l2_eviction(&mut self, ev: Evicted, at: Cycles) {
        let mut dirty = ev.dirty;
        for cpu in 0..self.cfg.cpus {
            if let Some(d) = self.l1d[cpu].invalidate(ev.line_addr) {
                dirty |= d;
            }
            let _ = self.l1i[cpu].invalidate(ev.line_addr);
        }
        if !dirty {
            return;
        }
        if let Some(s) = self.stacked.as_mut() {
            let lookup = s.tags.access(ev.line_addr, true);
            match lookup {
                // the write lands via the write buffer; no bank occupancy
                Lookup::Hit | Lookup::SectorMiss => {}
                Lookup::Miss(Some(victim)) => self.handle_stacked_eviction(victim, at),
                Lookup::Miss(None) => {}
            }
        } else {
            self.offdie_writeback(self.cfg.l1d.line_size, ev.line_addr, at);
        }
    }

    /// A stacked-cache victim: back-invalidate every covered L1/L2 line;
    /// dirty data leaves the die (only the valid sectors are transferred).
    fn handle_stacked_eviction(&mut self, ev: Evicted, at: Cycles) {
        // Only ever called while a stacked level exists; the early
        // return (instead of a panic) makes the invariant harmless if a
        // future refactor breaks it.
        let Some(s) = self.stacked.as_ref() else {
            return;
        };
        let (line, sector) = (s.tags.config().line_size, s.tags.config().sector_size());
        let mut dirty = ev.dirty;
        let mut sub = ev.line_addr;
        while sub < ev.line_addr + line {
            for cpu in 0..self.cfg.cpus {
                if let Some(d) = self.l1d[cpu].invalidate(sub) {
                    dirty |= d;
                }
                let _ = self.l1i[cpu].invalidate(sub);
            }
            if let Some(l2) = self.l2.as_mut() {
                if let Some(d) = l2.invalidate(sub) {
                    dirty |= d;
                }
            }
            sub += sector;
        }
        if dirty {
            let bytes = u64::from(ev.valid_sectors.max(1)) * sector;
            self.offdie_writeback(bytes, ev.line_addr, at);
        }
    }

    /// Posts a write-back transfer on the off-die bus. The memory
    /// controller's write buffer drains write-backs opportunistically, so
    /// they consume bus bandwidth but do not occupy DDR banks in front of
    /// demand reads (the classic buffered-write simplification).
    fn offdie_writeback(&mut self, bytes: u64, addr: u64, at: Cycles) {
        let _ = addr;
        self.stats.offdie_writebacks += 1;
        let _ = self.bus.transfer(bytes, at);
    }

    /// Publishes everything accumulated since the last flush to the
    /// process-global obs instruments.
    ///
    /// The access path only bumps plain struct fields; this is the one
    /// place atomics are touched, so the obs-enabled overhead amortises
    /// over a whole run (or one streamed block) instead of costing a
    /// dozen atomic RMWs per reference. While `stacksim_obs` is
    /// disabled the flush still advances the baseline, so intervals
    /// simulated with recording off are never retroactively published.
    pub fn obs_flush(&mut self) {
        let batch = self.bus.take_queue_batch();
        let bus = (
            self.bus.bytes(),
            self.bus.transfers(),
            self.bus.busy_cycles(),
        );
        let dram = self.memory.outcome_counts();
        let stacked = self
            .stacked
            .as_ref()
            .map(|s| s.data.outcome_counts())
            .unwrap_or_default();
        if stacksim_obs::enabled() {
            let s = &self.stats;
            let b = &self.base.stats;
            let o = &self.obs;
            o.accesses.add(s.accesses - b.accesses);
            o.l1_hits.add(s.l1_hits - b.l1_hits);
            o.l2_hits.add(s.l2_hits - b.l2_hits);
            o.stacked_hits.add(s.stacked_hits - b.stacked_hits);
            o.stacked_sector_misses
                .add(s.stacked_sector_misses - b.stacked_sector_misses);
            o.memory_accesses.add(s.memory_accesses - b.memory_accesses);
            o.memory_served.add(s.memory_served - b.memory_served);
            o.l1_writebacks.add(s.l1_writebacks - b.l1_writebacks);
            o.offdie_writebacks
                .add(s.offdie_writebacks - b.offdie_writebacks);
            o.fill_waits.add(s.fill_waits - b.fill_waits);
            o.bus_bytes.add(bus.0 - self.base.bus_bytes);
            o.bus_transfers.add(bus.1 - self.base.bus_transfers);
            o.bus_busy_cycles.add(bus.2 - self.base.bus_busy);
            if bus.1 > self.base.bus_transfers {
                o.bus_backlog_cycles.set(self.bus.last_backlog() as f64);
            }
            o.bus_queue_cycles.merge_batch(&batch);
            o.dram_pages.add(sub3(dram, self.base.dram_outcomes));
            o.stacked_pages
                .add(sub3(stacked, self.base.stacked_outcomes));
        }
        self.base = ObsBaseline {
            stats: self.stats,
            bus_bytes: bus.0,
            bus_transfers: bus.1,
            bus_busy: bus.2,
            dram_outcomes: dram,
            stacked_outcomes: stacked,
        };
    }

    fn finish(&mut self, issued: Cycles, result: AccessResult) {
        self.stats.latency_sum += result.done - issued;
        self.stats.memory_served += u64::from(result.level == ServiceLevel::Memory);
        self.stats.last_completion = self.stats.last_completion.max(result.done);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, HierarchyConfig};

    fn baseline() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::core2_baseline()).expect("valid preset")
    }

    #[test]
    fn l1_hit_costs_l1_latency() {
        let mut h = baseline();
        h.access(CpuId::new(0), MemOp::Load, 0x1000, 0); // cold
        let r = h.access(CpuId::new(0), MemOp::Load, 0x1000, 1000);
        assert_eq!(r.level, ServiceLevel::L1);
        assert_eq!(r.done, 1004);
    }

    #[test]
    fn l2_hit_costs_l1_plus_l2() {
        let mut h = baseline();
        // load on cpu0 brings line into L1(cpu0) and L2
        h.access(CpuId::new(0), MemOp::Load, 0x1000, 0);
        // cpu1 misses its own L1 but hits the shared L2
        let r = h.access(CpuId::new(1), MemOp::Load, 0x1000, 1000);
        assert_eq!(r.level, ServiceLevel::L2);
        assert_eq!(r.done, 1000 + 4 + 16);
    }

    #[test]
    fn cold_miss_goes_to_memory_with_expected_latency() {
        let mut h = baseline();
        let r = h.access(CpuId::new(0), MemOp::Load, 0x1000, 0);
        assert_eq!(r.level, ServiceLevel::Memory);
        // l1(4) + l2(16) + transport(142) + page_empty(100) = 262
        assert_eq!(r.done, 262);
    }

    #[test]
    fn open_page_second_miss_is_faster() {
        let mut h = baseline();
        let first = h.access(CpuId::new(0), MemOp::Load, 0x10_0000, 0);
        // different line, same 4 KB DDR page
        let second = h.access(CpuId::new(0), MemOp::Load, 0x10_0040, first.done);
        assert_eq!(second.level, ServiceLevel::Memory);
        // page hit: l1+l2+transport+read(50) = 212
        assert_eq!(second.done - first.done, 212);
    }

    #[test]
    fn stacked_dram_hit_uses_bank_timing() {
        let mut h =
            MemoryHierarchy::new(HierarchyConfig::stacked_dram_32mb()).expect("valid preset");
        // miss fills tag + sector (fill also opens the DRAM page)
        let r1 = h.access(CpuId::new(0), MemOp::Load, 0x20_0000, 0);
        assert_eq!(r1.level, ServiceLevel::Memory);
        // evict from L1 so the next access reaches the stacked level:
        // L1 is 32 KB 8-way; 9 conflicting lines 32 KB apart evict the first
        let mut t = r1.done;
        for i in 1..=8u64 {
            t = h
                .access(CpuId::new(0), MemOp::Load, 0x20_0000 + i * 32 * 1024, t)
                .done;
        }
        let r2 = h.access(CpuId::new(0), MemOp::Load, 0x20_0000, t);
        assert_eq!(r2.level, ServiceLevel::Stacked);
        // l1(4) + tag(6) + bank access: at least a page-hit read(50); the
        // intervening fills share the bank, so a conflict (154) plus some
        // bank queueing is also legal — but it must stay far below an
        // off-die access (~262 minimum)
        let lat = r2.done - t;
        assert!(lat >= 4 + 6 + 50, "latency {lat} below tag + page-hit read");
        assert!(
            lat < 550,
            "latency {lat} should not look like an off-die miss chain"
        );
    }

    #[test]
    fn stacked_sector_miss_fetches_only_missing_sector() {
        let mut h =
            MemoryHierarchy::new(HierarchyConfig::stacked_dram_32mb()).expect("valid preset");
        let r1 = h.access(CpuId::new(0), MemOp::Load, 0x20_0000, 0);
        // adjacent 64 B sector in the same 512 B stacked line, not in L1
        let r2 = h.access(CpuId::new(0), MemOp::Load, 0x20_0040, r1.done);
        assert_eq!(r2.level, ServiceLevel::Memory);
        assert_eq!(h.stats().stacked_sector_misses, 1);
    }

    #[test]
    fn writeback_traffic_reaches_the_bus() {
        let mut h = baseline();
        // dirty a line, then evict it from both L1 and L2 by touching
        // many conflicting lines; L2 is 4 MB 16-way => 17 conflicting lines
        // 256 KB apart map to the same L2 set (and same L1 set).
        let stride = 256 * 1024;
        h.access(CpuId::new(0), MemOp::Store, 0x100_0000, 0);
        let mut t = 1000;
        // the dirty line is written back into L2 when it leaves L1 (after 8
        // conflicting lines), which refreshes its L2 recency — so walk far
        // enough that it becomes LRU in L2 again and is finally evicted
        for i in 1..=25u64 {
            t = h
                .access(CpuId::new(0), MemOp::Load, 0x100_0000 + i * stride, t)
                .done;
        }
        assert!(
            h.stats().offdie_writebacks >= 1,
            "dirty line must leave the die"
        );
    }

    #[test]
    fn inclusion_l2_eviction_invalidates_l1() {
        let mut h = baseline();
        h.access(CpuId::new(0), MemOp::Load, 0x100_0000, 0);
        let stride = 256 * 1024;
        let mut t = 1000;
        for i in 1..=17u64 {
            t = h
                .access(CpuId::new(0), MemOp::Load, 0x100_0000 + i * stride, t)
                .done;
        }
        // the original line must have left L1 as well; a re-access misses
        let r = h.access(CpuId::new(0), MemOp::Load, 0x100_0000, t);
        assert_ne!(
            r.level,
            ServiceLevel::L1,
            "L1 copy must have been back-invalidated"
        );
    }

    #[test]
    fn stats_count_hits_per_level() {
        let mut h = baseline();
        h.access(CpuId::new(0), MemOp::Load, 0x1000, 0);
        h.access(CpuId::new(0), MemOp::Load, 0x1000, 500);
        h.access(CpuId::new(1), MemOp::Load, 0x1000, 1000);
        let s = h.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.l1_hits, 1);
        assert_eq!(s.l2_hits, 1);
        assert_eq!(s.memory_accesses, 1);
    }

    #[test]
    fn ifetch_uses_l1i_not_l1d() {
        let mut h = baseline();
        h.access(CpuId::new(0), MemOp::IFetch, 0x4000, 0);
        // same address via the data port still misses L1D (hits L2)
        let r = h.access(CpuId::new(0), MemOp::Load, 0x4000, 1000);
        assert_eq!(r.level, ServiceLevel::L2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_cpu_panics() {
        let mut h = baseline();
        h.access(CpuId::new(5), MemOp::Load, 0, 0);
    }

    #[test]
    fn fill_latency_gates_reuse_of_inflight_lines() {
        let mut cfg = HierarchyConfig::core2_baseline();
        cfg.fill_latency = true;
        let mut h = MemoryHierarchy::new(cfg).expect("valid test config");
        // the miss departs at t=0 and completes off-die (~262)
        let miss = h.access(CpuId::new(0), MemOp::Load, 0x50_0000, 0);
        assert_eq!(miss.level, ServiceLevel::Memory);
        // a second reference to the same line one cycle later must wait
        // for the fill, not hit in 4 cycles
        let reuse = h.access(CpuId::new(0), MemOp::Load, 0x50_0008, 1);
        assert_eq!(reuse.level, ServiceLevel::L1, "tag is allocated");
        assert_eq!(reuse.done, miss.done, "data arrives with the fill");
        assert_eq!(h.stats().fill_waits, 1);
        // after the fill, reuse is a normal L1 hit
        let later = h.access(CpuId::new(0), MemOp::Load, 0x50_0010, miss.done + 10);
        assert_eq!(later.done, miss.done + 14);
    }

    #[test]
    fn fill_latency_off_keeps_allocation_at_request() {
        let mut h = baseline();
        let miss = h.access(CpuId::new(0), MemOp::Load, 0x50_0000, 0);
        let reuse = h.access(CpuId::new(0), MemOp::Load, 0x50_0008, 1);
        assert!(reuse.done < miss.done, "classic trace-driven optimism");
        assert_eq!(h.stats().fill_waits, 0);
    }

    #[test]
    fn small_l1_cache_without_l2_writes_back_off_die() {
        let mut cfg = HierarchyConfig::core2_baseline();
        cfg.l2 = None;
        cfg.stacked = StackedLevel::None;
        cfg.l1d = CacheConfig {
            capacity: 4096,
            line_size: 64,
            ways: 1,
            latency: 4,
            sectors: 1,
        };
        cfg.l1i = cfg.l1d;
        let mut h = MemoryHierarchy::new(cfg).expect("valid test config");
        h.access(CpuId::new(0), MemOp::Store, 0x0, 0);
        h.access(CpuId::new(0), MemOp::Load, 0x1000, 1000); // conflicts, evicts dirty
        assert_eq!(h.stats().offdie_writebacks, 1);
    }
}
