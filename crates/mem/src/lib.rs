//! Trace-driven multi-processor memory-hierarchy simulator.
//!
//! This crate reproduces the Memory+Logic evaluation infrastructure of §2.1
//! and §3 of *Die Stacking (3D) Microarchitecture* (Black et al., MICRO
//! 2006): a memory-hierarchy simulator that "models all aspects of the
//! memory hierarchy including DRAM caches with banks, RAS, CAS, page sizes"
//! and is driven by dependency-annotated memory traces.
//!
//! # Structure
//!
//! * [`config`] — the Table 3 machine description and the Fig. 7 stacking
//!   options (`4 MB` baseline, `12 MB` stacked SRAM, `32/64 MB` stacked
//!   DRAM).
//! * [`cache`] — set-associative write-back caches with optional 64 B
//!   sectors in 512 B lines (the stacked-DRAM organisation).
//! * [`dram`] — banked DRAM arrays with open-page bank state machines
//!   (page open 50 / precharge 54 / read 50 cycles).
//! * [`bus`] — the 16 GB/s off-die bus with queueing and bandwidth
//!   accounting.
//! * [`hierarchy`] — the composed inclusive hierarchy.
//! * [`engine`] — the dependency-honouring issue engine and the CPMA /
//!   bandwidth metrics of Fig. 5.
//!
//! # Example
//!
//! ```
//! use stacksim_mem::{Engine, EngineConfig, HierarchyConfig, MemoryHierarchy};
//! use stacksim_trace::{CpuId, MemOp, TraceBuilder};
//!
//! let mut b = TraceBuilder::new();
//! for i in 0..1000u64 {
//!     b.record(CpuId::new(0), MemOp::Load, 0x10_0000 + (i % 32) * 64, 0x400);
//! }
//! let trace = b.build();
//!
//! let hierarchy = MemoryHierarchy::new(HierarchyConfig::core2_baseline())?;
//! let mut engine = Engine::new(hierarchy, EngineConfig::default());
//! let result = engine.run(&trace);
//! assert!(result.cpma > 0.0);
//! # Ok::<(), stacksim_mem::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bus;
pub mod cache;
pub mod config;
pub mod dram;
pub mod engine;
pub mod hierarchy;
pub mod obs;
pub mod stats;

pub use bus::{Bus, BusTransfer};
pub use cache::{Cache, Evicted, Lookup};
pub use config::{
    BusConfig, CacheConfig, ConfigError, Cycles, DramConfig, DramTiming, HierarchyConfig,
    MainMemoryConfig, StackedLevel,
};
pub use dram::{DramAccess, DramArray, PageOutcome};
pub use engine::{Engine, EngineConfig, EngineConfigBuilder};
pub use hierarchy::{AccessResult, MemoryHierarchy, ServiceLevel};
pub use stats::{HierarchyStats, MemTelemetry, RunResult};
