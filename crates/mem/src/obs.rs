//! Observability instruments of the memory hierarchy.
//!
//! The declared-name table below is the contract checked by the `SL060`
//! lint pass: every instrument this crate registers at runtime must
//! appear here, names must be well-formed `component.metric` paths, and
//! no two components may claim the same name.

use stacksim_obs::{Counter, Gauge, Histogram};

/// Component tag of every instrument this crate owns.
pub const COMPONENT: &str = "mem";

/// Per-level hit counters.
pub const ACCESSES: &str = "mem.accesses";
/// L1 hits (instruction + data).
pub const L1_HITS: &str = "mem.l1_hits";
/// Shared-L2 hits.
pub const L2_HITS: &str = "mem.l2_hits";
/// Stacked-cache hits (tag + sector present).
pub const STACKED_HITS: &str = "mem.stacked_hits";
/// Stacked tag hits whose sector had to be fetched off-die.
pub const STACKED_SECTOR_MISSES: &str = "mem.stacked_sector_misses";
/// References that went to main memory.
pub const MEMORY_ACCESSES: &str = "mem.memory_accesses";
/// References ultimately served by main memory.
pub const MEMORY_SERVED: &str = "mem.memory_served";
/// Dirty L1 victims written to the next level.
pub const L1_WRITEBACKS: &str = "mem.l1_writebacks";
/// Dirty lines leaving the die.
pub const OFFDIE_WRITEBACKS: &str = "mem.offdie_writebacks";
/// Hits gated behind an in-flight fill (MSHR coalesces).
pub const FILL_WAITS: &str = "mem.fill_waits";
/// Bytes moved over the off-die bus (incl. command overhead).
pub const BUS_BYTES: &str = "mem.bus.bytes";
/// Off-die bus transfers.
pub const BUS_TRANSFERS: &str = "mem.bus.transfers";
/// Cycles the bus spent actively transferring.
pub const BUS_BUSY_CYCLES: &str = "mem.bus.busy_cycles";
/// How far ahead the bus is booked when a transfer arrives (a queue-depth
/// gauge in cycles).
pub const BUS_BACKLOG_CYCLES: &str = "mem.bus.backlog_cycles";
/// Histogram of per-transfer queueing delay in cycles.
pub const BUS_QUEUE_CYCLES: &str = "mem.bus.queue_cycles";
/// Main-memory DDR page hits.
pub const DRAM_PAGE_HITS: &str = "mem.dram.page_hits";
/// Main-memory accesses to a closed (empty) bank.
pub const DRAM_PAGE_EMPTY: &str = "mem.dram.page_empty";
/// Main-memory bank conflicts (open page, wrong row).
pub const DRAM_PAGE_CONFLICTS: &str = "mem.dram.page_conflicts";
/// Stacked-DRAM page hits.
pub const STACKED_PAGE_HITS: &str = "mem.stacked.page_hits";
/// Stacked-DRAM accesses to a closed (empty) bank.
pub const STACKED_PAGE_EMPTY: &str = "mem.stacked.page_empty";
/// Stacked-DRAM bank conflicts.
pub const STACKED_PAGE_CONFLICTS: &str = "mem.stacked.page_conflicts";
/// Trace records processed by the issue engine.
pub const ENGINE_RECORDS: &str = "mem.engine.records";

/// Every instrument name this crate may register, for the SL060 lint
/// pass and the snapshot-coverage test.
pub const NAMES: &[&str] = &[
    ACCESSES,
    L1_HITS,
    L2_HITS,
    STACKED_HITS,
    STACKED_SECTOR_MISSES,
    MEMORY_ACCESSES,
    MEMORY_SERVED,
    L1_WRITEBACKS,
    OFFDIE_WRITEBACKS,
    FILL_WAITS,
    BUS_BYTES,
    BUS_TRANSFERS,
    BUS_BUSY_CYCLES,
    BUS_BACKLOG_CYCLES,
    BUS_QUEUE_CYCLES,
    DRAM_PAGE_HITS,
    DRAM_PAGE_EMPTY,
    DRAM_PAGE_CONFLICTS,
    STACKED_PAGE_HITS,
    STACKED_PAGE_EMPTY,
    STACKED_PAGE_CONFLICTS,
    ENGINE_RECORDS,
];

/// Handles for every hierarchy instrument, resolved once at
/// [`MemoryHierarchy::new`](crate::MemoryHierarchy::new) so the hot path
/// never touches the registry. Clones share the process-global cells.
#[derive(Debug, Clone)]
pub(crate) struct HierObs {
    pub accesses: Counter,
    pub l1_hits: Counter,
    pub l2_hits: Counter,
    pub stacked_hits: Counter,
    pub stacked_sector_misses: Counter,
    pub memory_accesses: Counter,
    pub memory_served: Counter,
    pub l1_writebacks: Counter,
    pub offdie_writebacks: Counter,
    pub fill_waits: Counter,
    pub bus_bytes: Counter,
    pub bus_transfers: Counter,
    pub bus_busy_cycles: Counter,
    pub bus_backlog_cycles: Gauge,
    pub bus_queue_cycles: Histogram,
    pub dram_pages: PageObs,
    pub stacked_pages: PageObs,
}

/// Page-outcome counter triple for one DRAM array.
#[derive(Debug, Clone)]
pub(crate) struct PageObs {
    hits: Counter,
    empty: Counter,
    conflicts: Counter,
}

impl PageObs {
    fn new(hits: &str, empty: &str, conflicts: &str) -> Self {
        PageObs {
            hits: stacksim_obs::counter(hits),
            empty: stacksim_obs::counter(empty),
            conflicts: stacksim_obs::counter(conflicts),
        }
    }

    /// Add page-outcome deltas (`(hits, empties, conflicts)`, the layout
    /// of [`DramArray::outcome_counts`](crate::dram::DramArray::outcome_counts))
    /// accumulated since the last flush.
    pub fn add(&self, (hits, empty, conflicts): (u64, u64, u64)) {
        self.hits.add(hits);
        self.empty.add(empty);
        self.conflicts.add(conflicts);
    }
}

impl HierObs {
    pub fn new() -> Self {
        HierObs {
            accesses: stacksim_obs::counter(ACCESSES),
            l1_hits: stacksim_obs::counter(L1_HITS),
            l2_hits: stacksim_obs::counter(L2_HITS),
            stacked_hits: stacksim_obs::counter(STACKED_HITS),
            stacked_sector_misses: stacksim_obs::counter(STACKED_SECTOR_MISSES),
            memory_accesses: stacksim_obs::counter(MEMORY_ACCESSES),
            memory_served: stacksim_obs::counter(MEMORY_SERVED),
            l1_writebacks: stacksim_obs::counter(L1_WRITEBACKS),
            offdie_writebacks: stacksim_obs::counter(OFFDIE_WRITEBACKS),
            fill_waits: stacksim_obs::counter(FILL_WAITS),
            bus_bytes: stacksim_obs::counter(BUS_BYTES),
            bus_transfers: stacksim_obs::counter(BUS_TRANSFERS),
            bus_busy_cycles: stacksim_obs::counter(BUS_BUSY_CYCLES),
            bus_backlog_cycles: stacksim_obs::gauge(BUS_BACKLOG_CYCLES),
            bus_queue_cycles: stacksim_obs::histogram(BUS_QUEUE_CYCLES),
            dram_pages: PageObs::new(DRAM_PAGE_HITS, DRAM_PAGE_EMPTY, DRAM_PAGE_CONFLICTS),
            stacked_pages: PageObs::new(
                STACKED_PAGE_HITS,
                STACKED_PAGE_EMPTY,
                STACKED_PAGE_CONFLICTS,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_names_are_unique_and_prefixed() {
        let mut seen = std::collections::BTreeSet::new();
        for name in NAMES {
            assert!(seen.insert(name), "duplicate declared name {name}");
            assert!(
                name.starts_with("mem."),
                "{name} must carry the {COMPONENT} prefix"
            );
        }
    }
}
