//! Counters and derived metrics for the memory-hierarchy simulator.

use crate::config::Cycles;

/// Raw event counters accumulated by
/// [`MemoryHierarchy`](crate::MemoryHierarchy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Total memory references simulated.
    pub accesses: u64,
    /// References satisfied by a per-core L1.
    pub l1_hits: u64,
    /// References satisfied by the shared SRAM L2.
    pub l2_hits: u64,
    /// References satisfied by the stacked cache (tag + sector present).
    pub stacked_hits: u64,
    /// Tag hits whose sector had to be fetched off-die.
    pub stacked_sector_misses: u64,
    /// Demand accesses that reached main memory.
    pub memory_accesses: u64,
    /// References ultimately served by main memory.
    pub memory_served: u64,
    /// Dirty L1 victims written down the hierarchy.
    pub l1_writebacks: u64,
    /// Dirty lines that left the die (bus write-back transfers).
    pub offdie_writebacks: u64,
    /// Hits on lines whose fill was still in flight (MSHR coalesces);
    /// only counted when `fill_latency` is enabled.
    pub fill_waits: u64,
    /// Sum of per-reference latencies (issue to satisfaction).
    pub latency_sum: Cycles,
    /// Latest completion time seen.
    pub last_completion: Cycles,
}

impl HierarchyStats {
    /// Mean reference latency in cycles (0 if no accesses).
    pub fn mean_latency(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.accesses as f64
        }
    }

    /// L1 hit rate over all references.
    pub fn l1_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.l1_hits as f64 / self.accesses as f64
        }
    }

    /// Fraction of all references served by main memory.
    pub fn memory_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.memory_served as f64 / self.accesses as f64
        }
    }
}

/// Result of a whole-trace simulation run
/// (produced by [`Engine::run`](crate::Engine::run)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunResult {
    /// Cycles elapsed from first issue to last completion.
    pub total_cycles: Cycles,
    /// Number of memory references simulated.
    pub references: u64,
    /// Cycles per memory access: elapsed cycles divided by references —
    /// the paper's throughput-style CPMA metric (Fig. 5 bars sit well below
    /// the L1 latency, so CPMA is elapsed-time-per-access, not mean latency).
    pub cpma: f64,
    /// Mean per-reference latency in cycles (a secondary metric).
    pub mean_latency: f64,
    /// Achieved off-die bandwidth in GB/s over the run.
    pub offdie_gb_per_sec: f64,
    /// Total bytes that crossed the off-die bus.
    pub offdie_bytes: u64,
    /// Final hierarchy counters.
    pub stats: HierarchyStats,
}

impl RunResult {
    /// Off-die traffic in bytes per memory reference.
    pub fn bytes_per_reference(&self) -> f64 {
        if self.references == 0 {
            0.0
        } else {
            self.offdie_bytes as f64 / self.references as f64
        }
    }

    /// The compact per-run summary the experiment harness records as
    /// telemetry: trace length, CPMA, bandwidth and hit behaviour.
    pub fn telemetry(&self) -> MemTelemetry {
        MemTelemetry {
            trace_records: self.references,
            cpma: self.cpma,
            offdie_gb_per_sec: self.offdie_gb_per_sec,
            l1_hit_rate: self.stats.l1_hit_rate(),
            memory_fraction: self.stats.memory_fraction(),
        }
    }
}

/// The memory-engine telemetry row recorded per simulated trace by the
/// experiment harness (one per benchmark × option).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MemTelemetry {
    /// References driven through the hierarchy (measured region).
    pub trace_records: u64,
    /// Cycles per memory access achieved.
    pub cpma: f64,
    /// Achieved off-die bandwidth in GB/s.
    pub offdie_gb_per_sec: f64,
    /// L1 hit rate over the measured region.
    pub l1_hit_rate: f64,
    /// Fraction of references served by main memory.
    pub memory_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_stats_have_zero_rates() {
        let s = HierarchyStats::default();
        assert_eq!(s.mean_latency(), 0.0);
        assert_eq!(s.l1_hit_rate(), 0.0);
        assert_eq!(s.memory_fraction(), 0.0);
    }

    #[test]
    fn rates_compute_from_counters() {
        let s = HierarchyStats {
            accesses: 10,
            l1_hits: 8,
            memory_served: 2,
            latency_sum: 100,
            ..Default::default()
        };
        assert!((s.mean_latency() - 10.0).abs() < 1e-12);
        assert!((s.l1_hit_rate() - 0.8).abs() < 1e-12);
        assert!((s.memory_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn bytes_per_reference_handles_empty_run() {
        let r = RunResult {
            total_cycles: 0,
            references: 0,
            cpma: 0.0,
            mean_latency: 0.0,
            offdie_gb_per_sec: 0.0,
            offdie_bytes: 0,
            stats: HierarchyStats::default(),
        };
        assert_eq!(r.bytes_per_reference(), 0.0);
    }
}
