//! Interleaving model of `stacksim_thermal::pool::SpinBarrier`.
//!
//! The real barrier (crates/thermal/src/pool.rs) is a sense-reversing
//! generation barrier: each waiter loads the current generation, the
//! last arrival resets the `arrived` counter *before* bumping the
//! generation, and everyone else spins until the generation moves. The
//! reset-before-bump order is the load-bearing detail — the bump is the
//! release point that lets waiters re-enter `wait()`, so the counter
//! must already be zero by then. [`SpinBarrierModel`] translates each
//! atomic access into one explorer step, and the buggy bump-then-reset
//! variant is kept (gated by `reset_after_release`) so the test suite
//! can prove the explorer actually finds the deadlock that ordering
//! causes.

use crate::explore::{Model, Step};

/// Per-thread program counter inside `wait()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Pc {
    /// `let generation = self.generation.load(Acquire);`
    LoadGen,
    /// `self.arrived.fetch_add(1, AcqRel)` and the `== workers - 1` test.
    Arrive,
    /// Last arrival: `self.arrived.store(0, Relaxed);`
    Reset,
    /// Last arrival: `self.generation.fetch_add(1, Release);`
    Bump,
    /// Everyone else: spin `while self.generation.load(Acquire) == generation`.
    Spin,
}

/// One waiter's state: where it is in `wait()`, the generation it
/// loaded on entry, and how many rounds it has completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Thread {
    pc: Pc,
    loaded_gen: u8,
    round: u8,
}

/// Shared barrier state plus every waiter.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BarrierState {
    arrived: u8,
    generation: u8,
    threads: Vec<Thread>,
}

/// `workers` threads calling `SpinBarrier::wait()` `rounds` times each.
pub struct SpinBarrierModel {
    pub workers: usize,
    pub rounds: u8,
    /// When true, models the bug of resetting `arrived` *after* the
    /// generation bump. The explorer must report a deadlock.
    pub reset_after_release: bool,
}

impl SpinBarrierModel {
    pub fn correct(workers: usize, rounds: u8) -> Self {
        Self {
            workers,
            rounds,
            reset_after_release: false,
        }
    }
}

impl Model for SpinBarrierModel {
    type State = BarrierState;

    fn name(&self) -> &'static str {
        "thermal::pool::SpinBarrier"
    }

    fn threads(&self) -> usize {
        self.workers
    }

    fn init(&self) -> Self::State {
        BarrierState {
            arrived: 0,
            generation: 0,
            threads: vec![
                Thread {
                    pc: Pc::LoadGen,
                    loaded_gen: 0,
                    round: 0,
                };
                self.workers
            ],
        }
    }

    fn step(&self, st: &mut Self::State, tid: usize) -> Step {
        let t = st.threads[tid];
        if t.round >= self.rounds {
            return Step::Done;
        }
        match t.pc {
            Pc::LoadGen => {
                st.threads[tid].loaded_gen = st.generation;
                st.threads[tid].pc = Pc::Arrive;
                Step::Ran
            }
            Pc::Arrive => {
                let prior = st.arrived;
                st.arrived += 1;
                st.threads[tid].pc = if usize::from(prior) == self.workers - 1 {
                    if self.reset_after_release {
                        Pc::Bump
                    } else {
                        Pc::Reset
                    }
                } else {
                    Pc::Spin
                };
                Step::Ran
            }
            Pc::Reset => {
                st.arrived = 0;
                if self.reset_after_release {
                    // Buggy variant: the reset was the *second* action,
                    // so this thread's round is now over.
                    finish_round(&mut st.threads[tid]);
                } else {
                    st.threads[tid].pc = Pc::Bump;
                }
                Step::Ran
            }
            Pc::Bump => {
                st.generation += 1;
                if self.reset_after_release {
                    st.threads[tid].pc = Pc::Reset;
                } else {
                    finish_round(&mut st.threads[tid]);
                }
                Step::Ran
            }
            Pc::Spin => {
                if st.generation == t.loaded_gen {
                    Step::Blocked
                } else {
                    finish_round(&mut st.threads[tid]);
                    Step::Ran
                }
            }
        }
    }

    fn invariant(&self, st: &Self::State) -> Result<(), String> {
        // With reset-before-bump, the counter can never exceed the
        // worker count: a new round's arrivals only start after the
        // bump, and the reset happens before it.
        if !self.reset_after_release && usize::from(st.arrived) > self.workers {
            return Err(format!(
                "arrived counter reached {} with only {} workers",
                st.arrived, self.workers
            ));
        }
        // No thread may be more than one round ahead of any other: the
        // whole point of the barrier.
        let min = st.threads.iter().map(|t| t.round).min().unwrap_or(0);
        let max = st.threads.iter().map(|t| t.round).max().unwrap_or(0);
        if max > min + 1 {
            return Err(format!(
                "thread finished round {max} while another is still in round {min}"
            ));
        }
        Ok(())
    }

    fn on_final(&self, st: &Self::State) -> Result<(), String> {
        for (i, t) in st.threads.iter().enumerate() {
            if t.round != self.rounds {
                return Err(format!(
                    "thread {i} completed {} of {} rounds",
                    t.round, self.rounds
                ));
            }
        }
        if st.arrived != 0 {
            return Err(format!("arrived counter left at {}", st.arrived));
        }
        Ok(())
    }
}

/// Advances a waiter to the next `wait()` call (or completion).
fn finish_round(t: &mut Thread) {
    t.round += 1;
    t.pc = Pc::LoadGen;
    t.loaded_gen = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore;

    #[test]
    fn two_workers_two_rounds_are_clean() {
        let stats = explore(&SpinBarrierModel::correct(2, 2)).expect("clean");
        assert!(stats.terminals >= 1);
    }

    #[test]
    fn three_workers_two_rounds_are_clean() {
        explore(&SpinBarrierModel::correct(3, 2)).expect("clean");
    }

    #[test]
    fn reset_after_release_deadlocks() {
        // Bump-then-reset lets a fast waiter re-enter and arrive before
        // the counter is cleared; the stale count then never reaches
        // workers-1 again and everyone spins forever. The explorer must
        // find that schedule.
        let err = explore(&SpinBarrierModel {
            workers: 2,
            rounds: 2,
            reset_after_release: true,
        })
        .unwrap_err();
        assert!(err.contains("deadlock"), "{err}");
    }
}
