//! Interleaving model of the serve session's dedup-slot state machine.
//!
//! In `stacksim_core::harness::session`, `submit()` holds the scheduler
//! mutex while it checks the in-flight table and, on a miss, creates a
//! slot and queues it — check and insert are one critical section. The
//! scheduler thread drains the queue, runs the batch, and completes
//! each slot exactly once; waiters block on the slot until it leaves
//! the queued/running states. [`DedupModel`] models that machine with
//! two submitters racing on the same digest plus the scheduler, and
//! asserts the experiment executes exactly once and every waiter
//! resolves. The `atomic_submit: false` variant splits the check and
//! the insert into two steps — dropping the lock between them — and the
//! test suite proves the explorer catches the duplicate execution that
//! allows.

use crate::explore::{Model, Step};

/// Lifecycle of one dedup slot, mirroring `SlotState` in session.rs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum SlotState {
    Queued,
    Running,
    Done,
}

/// A submitter thread: look up or create the slot, then wait on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum SubmitterPc {
    /// Atomic mode: check the in-flight table and insert in one step.
    /// Split mode: just the check, remembering the miss.
    Lookup,
    /// Split mode only: insert the slot checked as missing earlier.
    Insert,
    /// Block until the attached slot is `Done`.
    Wait,
    Finished,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Submitter {
    pc: SubmitterPc,
    /// Index into `slots` once attached.
    slot: Option<usize>,
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct DedupState {
    /// Slot the in-flight table maps the (single, shared) digest to.
    inflight: Option<usize>,
    slots: Vec<SlotState>,
    /// Slot indices awaiting the scheduler.
    pending: Vec<usize>,
    /// Times the scheduler actually executed the experiment.
    executions: u8,
    submitters: [Submitter; 2],
    scheduler_done: bool,
}

/// Two submitters racing on one digest, one scheduler thread.
pub struct DedupModel {
    /// When false, the check-then-insert in `submit()` is modelled as
    /// two separate steps (the bug the session lock prevents).
    pub atomic_submit: bool,
}

const SCHEDULER: usize = 2;

impl Model for DedupModel {
    type State = DedupState;

    fn name(&self) -> &'static str {
        "session dedup slots"
    }

    fn threads(&self) -> usize {
        3
    }

    fn init(&self) -> Self::State {
        DedupState {
            inflight: None,
            slots: Vec::new(),
            pending: Vec::new(),
            executions: 0,
            submitters: [Submitter {
                pc: SubmitterPc::Lookup,
                slot: None,
            }; 2],
            scheduler_done: false,
        }
    }

    fn step(&self, st: &mut Self::State, tid: usize) -> Step {
        if tid == SCHEDULER {
            return self.scheduler_step(st);
        }
        let sub = st.submitters[tid];
        match sub.pc {
            SubmitterPc::Lookup => {
                if let Some(slot) = st.inflight {
                    // Dedup hit: attach to the existing slot.
                    st.submitters[tid] = Submitter {
                        pc: SubmitterPc::Wait,
                        slot: Some(slot),
                    };
                } else if self.atomic_submit {
                    let slot = create_slot(st);
                    st.submitters[tid] = Submitter {
                        pc: SubmitterPc::Wait,
                        slot: Some(slot),
                    };
                } else {
                    // Buggy split: the miss is observed now, the insert
                    // happens in a later step with the lock dropped.
                    st.submitters[tid].pc = SubmitterPc::Insert;
                }
                Step::Ran
            }
            SubmitterPc::Insert => {
                let slot = create_slot(st);
                st.submitters[tid] = Submitter {
                    pc: SubmitterPc::Wait,
                    slot: Some(slot),
                };
                Step::Ran
            }
            SubmitterPc::Wait => {
                let Some(slot) = sub.slot else {
                    // Unreachable by construction: Wait is only entered
                    // with a slot attached. Treat as blocked, not panic.
                    return Step::Blocked;
                };
                if st.slots[slot] == SlotState::Done {
                    st.submitters[tid].pc = SubmitterPc::Finished;
                    Step::Ran
                } else {
                    Step::Blocked
                }
            }
            SubmitterPc::Finished => Step::Done,
        }
    }

    fn invariant(&self, st: &Self::State) -> Result<(), String> {
        if self.atomic_submit && st.executions > 1 {
            return Err(format!(
                "same digest executed {} times despite dedup",
                st.executions
            ));
        }
        Ok(())
    }

    fn on_final(&self, st: &Self::State) -> Result<(), String> {
        if st.executions != 1 {
            return Err(format!(
                "expected exactly 1 execution, got {}",
                st.executions
            ));
        }
        for (i, sub) in st.submitters.iter().enumerate() {
            if sub.pc != SubmitterPc::Finished {
                return Err(format!("submitter {i} never resolved"));
            }
        }
        Ok(())
    }
}

impl DedupModel {
    /// One scheduler-loop iteration: drain the queue and complete one
    /// slot (batch-of-one keeps the state space small; dedup is decided
    /// at submit time, not batch time).
    ///
    /// The scheduler waits for both submitters to finish submitting
    /// before it starts the batch — mirroring `scheduler_loop`, which
    /// snapshots the pending queue into one batch. Keeping the batch
    /// after the submission window makes the checked property exactly
    /// "concurrent same-digest submits execute once": a re-submit
    /// *after* completion is a legitimate new execution (the digest has
    /// left the in-flight table) and is out of scope here.
    fn scheduler_step(&self, st: &mut DedupState) -> Step {
        if st.scheduler_done {
            return Step::Done;
        }
        if !st
            .submitters
            .iter()
            .all(|s| matches!(s.pc, SubmitterPc::Wait | SubmitterPc::Finished))
        {
            return Step::Blocked;
        }
        if let Some(slot) = st.pending.first().copied() {
            st.pending.remove(0);
            st.slots[slot] = SlotState::Running;
            st.executions += 1;
            st.slots[slot] = SlotState::Done;
            // Completion removes the digest from the in-flight table.
            if st.inflight == Some(slot) {
                st.inflight = None;
            }
            Step::Ran
        } else {
            // All submissions are in and nothing is queued: the session
            // is drained and the scheduler can park.
            st.scheduler_done = true;
            Step::Ran
        }
    }
}

/// `submit()` miss path: new slot, queued and registered in-flight.
fn create_slot(st: &mut DedupState) -> usize {
    let slot = st.slots.len();
    st.slots.push(SlotState::Queued);
    st.pending.push(slot);
    st.inflight = Some(slot);
    slot
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore;

    #[test]
    fn locked_submit_executes_once() {
        let stats = explore(&DedupModel {
            atomic_submit: true,
        })
        .expect("clean");
        assert!(stats.terminals >= 1);
    }

    #[test]
    fn split_check_then_insert_double_executes() {
        // Both submitters observe the miss before either inserts; each
        // then queues its own slot and the experiment runs twice. This
        // is the race the session mutex exists to prevent.
        let err = explore(&DedupModel {
            atomic_submit: false,
        })
        .unwrap_err();
        assert!(err.contains("execution"), "{err}");
    }
}
