//! The interleaving explorer: a depth-first enumeration of every
//! schedule of a small concurrent [`Model`], with visited-state
//! memoisation and deadlock detection.
//!
//! A model is a fixed set of logical threads stepping an explicit shared
//! state; each [`Model::step`] is one atomic action (one load, one
//! read-modify-write, one lock-held critical section). The explorer
//! drives every runnable thread from every reachable state, so any
//! invariant violation or deadlock that exists under *some* interleaving
//! of those atomic actions is found deterministically — the same job
//! `loom` does for instrumented code, scaled down to hand-translated
//! state machines and zero dependencies.

use std::collections::BTreeSet;

/// What one thread step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The thread performed an action; the state may have changed.
    Ran,
    /// The thread cannot act in this state (spin-wait, empty queue) and
    /// must be rescheduled after another thread changes the state.
    Blocked,
    /// The thread has finished its program.
    Done,
}

/// A small concurrent algorithm to check exhaustively.
pub trait Model {
    /// Shared state, including every thread's program counter. `Ord` so
    /// visited states deduplicate.
    type State: Clone + Ord + std::fmt::Debug;

    fn name(&self) -> &'static str;
    fn threads(&self) -> usize;
    fn init(&self) -> Self::State;

    /// Performs thread `tid`'s next atomic action. Must leave the state
    /// untouched when returning [`Step::Blocked`] or [`Step::Done`].
    fn step(&self, st: &mut Self::State, tid: usize) -> Step;

    /// Checked in every reachable state.
    fn invariant(&self, st: &Self::State) -> Result<(), String> {
        let _ = st;
        Ok(())
    }

    /// Checked in every terminal state (all threads done).
    fn on_final(&self, st: &Self::State) -> Result<(), String>;
}

/// Exploration statistics for one model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Distinct states visited.
    pub states: usize,
    /// Thread steps executed across all schedules.
    pub transitions: usize,
    /// Terminal (all-threads-done) states reached.
    pub terminals: usize,
}

/// Transition budget: exceeding it fails the run deterministically
/// instead of hanging CI on a state-space blowup.
const MAX_TRANSITIONS: usize = 1 << 22;

/// Explores every interleaving of `model`, checking the invariant in
/// each state, the final condition in each terminal state, and that no
/// reachable state deadlocks (some thread can always run until all are
/// done).
pub fn explore<M: Model>(model: &M) -> Result<Stats, String> {
    let threads = model.threads();
    let init = model.init();
    model
        .invariant(&init)
        .map_err(|e| format!("{}: initial state: {e}", model.name()))?;

    let mut visited: BTreeSet<M::State> = BTreeSet::new();
    visited.insert(init.clone());
    let mut stack: Vec<M::State> = vec![init];
    let mut stats = Stats {
        states: 1,
        transitions: 0,
        terminals: 0,
    };

    while let Some(state) = stack.pop() {
        let mut ran_any = false;
        let mut all_done = true;
        for tid in 0..threads {
            let mut next = state.clone();
            match model.step(&mut next, tid) {
                Step::Done => continue,
                Step::Blocked => {
                    all_done = false;
                    continue;
                }
                Step::Ran => {
                    stats.transitions += 1;
                    if stats.transitions > MAX_TRANSITIONS {
                        return Err(format!(
                            "{}: exceeded {MAX_TRANSITIONS} transitions; shrink the model",
                            model.name()
                        ));
                    }
                    ran_any = true;
                    all_done = false;
                    model.invariant(&next).map_err(|e| {
                        format!("{}: invariant: {e}\nstate: {next:?}", model.name())
                    })?;
                    if visited.insert(next.clone()) {
                        stats.states += 1;
                        stack.push(next);
                    }
                }
            }
        }
        if all_done {
            stats.terminals += 1;
            model
                .on_final(&state)
                .map_err(|e| format!("{}: final state: {e}\nstate: {state:?}", model.name()))?;
        } else if !ran_any {
            return Err(format!(
                "{}: deadlock — no thread can run\nstate: {state:?}",
                model.name()
            ));
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads each increment a shared counter twice; with atomic
    /// increments every interleaving ends at 4.
    struct Counter;

    impl Model for Counter {
        type State = (u8, [u8; 2]);

        fn name(&self) -> &'static str {
            "counter"
        }
        fn threads(&self) -> usize {
            2
        }
        fn init(&self) -> Self::State {
            (0, [0, 0])
        }
        fn step(&self, st: &mut Self::State, tid: usize) -> Step {
            if st.1[tid] >= 2 {
                return Step::Done;
            }
            st.0 += 1;
            st.1[tid] += 1;
            Step::Ran
        }
        fn on_final(&self, st: &Self::State) -> Result<(), String> {
            (st.0 == 4)
                .then_some(())
                .ok_or_else(|| format!("counter ended at {}", st.0))
        }
    }

    /// A non-atomic read-modify-write loses updates under the right
    /// interleaving; the explorer must find it.
    struct RacyCounter;

    impl Model for RacyCounter {
        // (counter, per-thread (pc, loaded))
        type State = (u8, [(u8, u8); 2]);

        fn name(&self) -> &'static str {
            "racy-counter"
        }
        fn threads(&self) -> usize {
            2
        }
        fn init(&self) -> Self::State {
            (0, [(0, 0), (0, 0)])
        }
        fn step(&self, st: &mut Self::State, tid: usize) -> Step {
            let (pc, loaded) = st.1[tid];
            match pc {
                0 => {
                    st.1[tid] = (1, st.0);
                    Step::Ran
                }
                1 => {
                    st.0 = loaded + 1;
                    st.1[tid] = (2, 0);
                    Step::Ran
                }
                _ => Step::Done,
            }
        }
        fn on_final(&self, st: &Self::State) -> Result<(), String> {
            (st.0 == 2)
                .then_some(())
                .ok_or_else(|| format!("counter ended at {}", st.0))
        }
    }

    /// Two threads that each wait for the other first: a deadlock.
    struct Deadlock;

    impl Model for Deadlock {
        type State = [bool; 2];

        fn name(&self) -> &'static str {
            "deadlock"
        }
        fn threads(&self) -> usize {
            2
        }
        fn init(&self) -> Self::State {
            [false, false]
        }
        fn step(&self, st: &mut Self::State, tid: usize) -> Step {
            if st[1 - tid] {
                st[tid] = true;
                Step::Ran
            } else {
                Step::Blocked
            }
        }
        fn on_final(&self, _: &Self::State) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn atomic_counter_is_clean() {
        let stats = explore(&Counter).expect("clean");
        assert!(stats.states > 1);
        assert!(stats.terminals >= 1);
    }

    #[test]
    fn lost_update_is_found() {
        let err = explore(&RacyCounter).unwrap_err();
        assert!(err.contains("counter ended at 1"), "{err}");
    }

    #[test]
    fn deadlock_is_found() {
        let err = explore(&Deadlock).unwrap_err();
        assert!(err.contains("deadlock"), "{err}");
    }
}
