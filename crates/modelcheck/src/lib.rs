//! stacksim-modelcheck: exhaustive interleaving checks for the
//! workspace's hand-rolled synchronisation.
//!
//! The container has no `loom`, so this crate carries a small
//! stand-alone explorer ([`explore`]) and hand-translated models of the
//! two pieces of coordination the static auditor (SA004/SA005) can only
//! approximate structurally:
//!
//! * [`barrier::SpinBarrierModel`] — `thermal::pool::SpinBarrier`'s
//!   sense-reversing generation protocol, including proof that the
//!   reset-before-release ordering is load-bearing.
//! * [`dedup::DedupModel`] — the serve session's dedup-slot state
//!   machine, including proof that the check-then-insert in `submit()`
//!   must stay under one lock.
//!
//! Fast configurations run as ordinary unit tests; `cargo xtask loom`
//! runs the full sweep below (larger thread/round counts) and is wired
//! into CI next to the audit job.

pub mod barrier;
pub mod dedup;
pub mod explore;

pub use explore::{explore, Model, Stats, Step};

use barrier::SpinBarrierModel;
use dedup::DedupModel;

/// Runs the full model sweep: every checked-in model at the largest
/// configuration that still explores in seconds. Returns a one-line
/// summary per model, or the first counterexample found.
pub fn run_all() -> Result<String, String> {
    let mut lines = Vec::new();

    for (workers, rounds) in [(2, 3), (3, 2), (4, 2)] {
        let model = SpinBarrierModel::correct(workers, rounds);
        let stats = explore(&model)?;
        lines.push(summary(
            &format!(
                "{} [{workers} workers x {rounds} rounds]",
                model_name(&model)
            ),
            stats,
        ));
    }

    // Negative control: the explorer must still be able to find the
    // classic reset-after-release barrier bug; a pass here would mean
    // the sweep has gone blind, so it is an error.
    let buggy = SpinBarrierModel {
        workers: 3,
        rounds: 2,
        reset_after_release: true,
    };
    match explore(&buggy) {
        Err(e) if e.contains("deadlock") => lines.push(format!(
            "{} [buggy variant]: counterexample found as expected",
            model_name(&buggy)
        )),
        Err(e) => return Err(format!("buggy barrier failed for the wrong reason: {e}")),
        Ok(_) => {
            return Err("buggy barrier variant explored clean; the explorer is unsound".to_string())
        }
    }

    let model = DedupModel {
        atomic_submit: true,
    };
    let stats = explore(&model)?;
    lines.push(summary(model_name(&model), stats));

    let split = DedupModel {
        atomic_submit: false,
    };
    match explore(&split) {
        Err(e) if e.contains("execution") => lines.push(format!(
            "{} [split submit]: counterexample found as expected",
            model_name(&split)
        )),
        Err(e) => {
            return Err(format!(
                "split-submit model failed for the wrong reason: {e}"
            ))
        }
        Ok(_) => {
            return Err(
                "split-submit dedup variant explored clean; the explorer is unsound".to_string(),
            )
        }
    }

    Ok(lines.join("\n"))
}

fn model_name<M: Model>(m: &M) -> &'static str {
    m.name()
}

fn summary(name: &str, stats: Stats) -> String {
    format!(
        "{name}: OK — {} states, {} transitions, {} terminal(s)",
        stats.states, stats.transitions, stats.terminals
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_sweep_is_clean() {
        let summary = run_all().expect("sweep clean");
        assert!(summary.contains("SpinBarrier"), "{summary}");
        assert!(summary.contains("dedup"), "{summary}");
        assert!(
            summary.contains("counterexample found as expected"),
            "{summary}"
        );
    }
}
