//! Structured events: spans, point events, and sinks.
//!
//! # Event schema (one JSON object per line)
//!
//! ```text
//! {"ev":"begin","span":ID,"name":NAME,"t_us":T}
//! {"ev":"end","span":ID,"name":NAME,"t_us":T,"fields":{...}}
//! {"ev":"point","name":NAME,"t_us":T,"fields":{...}}
//! ```
//!
//! `t_us` is microseconds on a process-monotonic clock anchored at
//! [`crate::enable`] (or the first event, whichever comes first); span
//! ids are unique per process and strictly positive. Fields are flat
//! `string → number | string | bool` maps.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::json::{write_f64, write_str};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

static CLOCK: OnceLock<Instant> = OnceLock::new();

pub(crate) fn init_clock() {
    let _ = CLOCK.get_or_init(Instant::now);
}

/// Microseconds since the monotonic clock anchor.
pub fn now_us() -> u64 {
    CLOCK.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Receiver for pre-formatted JSONL event lines. Implementations must
/// tolerate concurrent calls.
pub trait EventSink: Send + Sync {
    /// Deliver one complete JSON line (no trailing newline).
    fn line(&self, s: &str);
    /// Flush buffered lines; called when the sink is uninstalled.
    fn flush(&self) {}
}

static HAS_SINK: AtomicBool = AtomicBool::new(false);

#[allow(clippy::type_complexity)]
fn sink_slot() -> &'static Mutex<Option<Arc<dyn EventSink>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<dyn EventSink>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Install (or with `None`, remove) the global event sink. The
/// outgoing sink is flushed.
pub fn set_sink(sink: Option<Arc<dyn EventSink>>) {
    let prev = {
        let mut slot = lock(sink_slot());
        HAS_SINK.store(sink.is_some(), Ordering::SeqCst);
        std::mem::replace(&mut *slot, sink)
    };
    if let Some(prev) = prev {
        prev.flush();
    }
}

#[inline]
fn sink_active() -> bool {
    crate::enabled() && HAS_SINK.load(Ordering::Relaxed)
}

fn emit(line: &str) {
    let sink = lock(sink_slot()).clone();
    if let Some(sink) = sink {
        sink.line(line);
    }
}

/// A field value attached to an event or span end record.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Float (shortest round-trip formatting).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (JSON-escaped).
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

fn write_fields(fields: &[(&str, FieldValue)], out: &mut String) {
    out.push_str(",\"fields\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_str(k, out);
        out.push(':');
        match v {
            FieldValue::U64(n) => out.push_str(&n.to_string()),
            FieldValue::F64(f) => write_f64(*f, out),
            FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            FieldValue::Str(s) => write_str(s, out),
        }
    }
    out.push('}');
}

/// Emit a point event with fields. No-op unless enabled and a sink is
/// installed.
pub fn event(name: &str, fields: &[(&str, FieldValue)]) {
    if !sink_active() {
        return;
    }
    let mut line = String::with_capacity(64);
    line.push_str("{\"ev\":\"point\",\"name\":");
    write_str(name, &mut line);
    line.push_str(&format!(",\"t_us\":{}", now_us()));
    write_fields(fields, &mut line);
    line.push('}');
    emit(&line);
}

static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

/// An in-flight span. Emits `begin` at creation ([`span`]) and `end`
/// (with any attached fields) on drop.
#[derive(Debug)]
pub struct Span {
    id: u64,
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
}

/// Open a span. Inert (id 0, fields ignored, nothing emitted) unless
/// enabled and a sink is installed at creation time.
pub fn span(name: &'static str) -> Span {
    if !sink_active() {
        return Span {
            id: 0,
            name,
            fields: Vec::new(),
        };
    }
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    let mut line = String::with_capacity(64);
    line.push_str(&format!("{{\"ev\":\"begin\",\"span\":{id},\"name\":"));
    write_str(name, &mut line);
    line.push_str(&format!(",\"t_us\":{}}}", now_us()));
    emit(&line);
    Span {
        id,
        name,
        fields: Vec::new(),
    }
}

impl Span {
    /// Attach a field, reported on the `end` record. No-op on inert
    /// spans.
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if self.id != 0 {
            self.fields.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        let mut line = String::with_capacity(64);
        line.push_str(&format!("{{\"ev\":\"end\",\"span\":{},\"name\":", self.id));
        write_str(self.name, &mut line);
        line.push_str(&format!(",\"t_us\":{}", now_us()));
        write_fields(&self.fields, &mut line);
        line.push('}');
        emit(&line);
    }
}

/// An [`EventSink`] appending lines to a buffered file — the `--events
/// FILE.jsonl` backend.
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Create (truncating) the output file.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl EventSink for JsonlSink {
    fn line(&self, s: &str) {
        let mut w = lock(&self.writer);
        let _ = writeln!(w, "{s}");
    }

    fn flush(&self) {
        let _ = lock(&self.writer).flush();
    }
}
