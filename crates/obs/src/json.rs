//! Minimal deterministic JSON writing helpers.
//!
//! Mirrors the conventions of the core harness encoder so snapshots
//! written here re-parse with the harness `Json` parser: shortest
//! round-trip floats via `Display`, plus the `Infinity` / `-Infinity` /
//! `NaN` extensions for non-finite values.

use std::fmt::Write as _;

pub(crate) fn write_f64(v: f64, out: &mut String) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("Infinity");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Infinity");
    } else {
        let _ = write!(out, "{v}");
    }
}

pub(crate) fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_and_nonfinite_use_extensions() {
        let mut s = String::new();
        write_f64(0.1, &mut s);
        assert_eq!(s, "0.1");
        s.clear();
        write_f64(f64::INFINITY, &mut s);
        assert_eq!(s, "Infinity");
        s.clear();
        write_f64(f64::NAN, &mut s);
        assert_eq!(s, "NaN");
    }

    #[test]
    fn strings_escape_controls() {
        let mut s = String::new();
        write_str("a\"b\\c\nd\u{1}", &mut s);
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
