//! Zero-cost-when-disabled observability for stacksim.
//!
//! The crate follows the `log`-crate pattern: a process-global registry
//! plus a global *enabled* flag, so instrumented crates (`mem`,
//! `thermal`, `core`) depend only on `stacksim-obs` — never on each
//! other — and an uninstrumented binary pays nothing.
//!
//! # Overhead contract
//!
//! Every hot-path recording method ([`Counter::add`], [`Gauge::set`],
//! [`Histogram::record`], [`span`], [`event`]) starts with a branch on a
//! single relaxed atomic load ([`enabled`]). While observability is
//! disabled — the default — that branch is the *entire* cost: no locks,
//! no allocation, no time-stamping, and crucially no floating-point
//! work, so simulation results are bit-identical with the layer enabled
//! or disabled (the golden-digest tests in the root crate pin this).
//!
//! # Shape
//!
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — cheap `Arc`-backed handles
//!   resolved once from the [`Registry`] (typically at component
//!   construction time) and then touched lock-free on the hot path.
//! * [`span`] / [`event`] — structured records pushed to an installed
//!   [`EventSink`] (e.g. [`JsonlSink`]) with monotonic microsecond
//!   timestamps. Spans emit paired `begin` / `end` lines.
//! * [`Registry::snapshot`] — a deterministic, schema-stable JSON
//!   snapshot (`schema = "stacksim-obs/1"`) of every registered
//!   instrument, sorted by name.
//!
//! Instruments are process-global aggregates: two clones of an
//! instrumented component share the same cells. Callers that want a
//! clean slate (the CLI, tests) call [`reset`] first.

pub mod event;
mod json;
pub mod metrics;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

pub use event::{event, set_sink, span, EventSink, FieldValue, JsonlSink, Span};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramBatch, HistogramSnapshot, Registry, Snapshot,
};

/// Version tag written into every metrics snapshot; bump on any change
/// to the snapshot layout.
pub const SNAPSHOT_SCHEMA: &str = "stacksim-obs/1";

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is the observability layer recording? Relaxed load; this is the
/// branch every instrumentation site pays when disabled.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on. Also anchors the monotonic event clock so the
/// first event does not pay for clock initialisation.
pub fn enable() {
    event::init_clock();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn recording off. Instruments keep their accumulated values (take
/// a [`Registry::snapshot`] before or after; it reads the same cells).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// The process-global instrument registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// Resolve (registering on first use) a counter by name.
pub fn counter(name: &str) -> Counter {
    registry().counter(name)
}

/// Resolve (registering on first use) a gauge by name.
pub fn gauge(name: &str) -> Gauge {
    registry().gauge(name)
}

/// Resolve (registering on first use) a histogram by name.
pub fn histogram(name: &str) -> Histogram {
    registry().histogram(name)
}

/// Zero every registered instrument (names stay registered).
pub fn reset() {
    registry().reset();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, MutexGuard};

    /// Global-state tests must not interleave; each one holds this.
    pub(crate) fn global_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[derive(Default)]
    pub(crate) struct CaptureSink {
        pub lines: Mutex<Vec<String>>,
    }

    impl EventSink for CaptureSink {
        fn line(&self, s: &str) {
            self.lines
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(s.to_string());
        }
    }

    #[test]
    fn disabled_instruments_record_nothing() {
        let _g = global_lock();
        disable();
        reset();
        let c = counter("test.disabled_counter");
        let g = gauge("test.disabled_gauge");
        let h = histogram("test.disabled_hist");
        c.add(7);
        g.set(3.5);
        h.record(12);
        assert_eq!(c.value(), 0);
        assert_eq!(g.value(), 0.0);
        let snap = registry().snapshot();
        let hs = snap
            .histograms
            .iter()
            .find(|h| h.name == "test.disabled_hist")
            .map(|h| h.count);
        assert_eq!(hs, Some(0));
    }

    #[test]
    fn enabled_instruments_accumulate() {
        let _g = global_lock();
        reset();
        enable();
        let c = counter("test.counter");
        c.add(3);
        c.inc();
        let g = gauge("test.gauge");
        g.set(1.25);
        let h = histogram("test.hist");
        h.record(0);
        h.record(1);
        h.record(5);
        h.record(1024);
        disable();
        assert_eq!(c.value(), 4);
        assert_eq!(g.value(), 1.25);
        let snap = registry().snapshot();
        let hs = snap
            .histograms
            .iter()
            .find(|h| h.name == "test.hist")
            .cloned()
            .unwrap();
        assert_eq!(hs.count, 4);
        assert_eq!(hs.sum, 1030);
        assert_eq!(hs.min, 0);
        assert_eq!(hs.max, 1024);
        // 0 → bucket 0; 1 → bucket 1; 5 → bucket 3 ([4,7]); 1024 → bucket 11.
        assert_eq!(hs.buckets, vec![(0, 1), (1, 1), (3, 1), (11, 1)]);
        reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn handles_share_cells_by_name() {
        let _g = global_lock();
        reset();
        enable();
        let a = counter("test.shared");
        let b = counter("test.shared");
        a.add(2);
        b.add(3);
        disable();
        assert_eq!(a.value(), 5);
        assert_eq!(b.value(), 5);
    }

    #[test]
    fn snapshot_is_sorted_and_schema_tagged() {
        let _g = global_lock();
        reset();
        counter("test.z_last");
        counter("test.a_first");
        let snap = registry().snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        let text = snap.encode();
        assert!(text.starts_with("{\"schema\":\"stacksim-obs/1\""));
        assert!(text.contains("\"test.a_first\""));
    }

    #[test]
    fn spans_emit_paired_begin_end_lines() {
        let _g = global_lock();
        reset();
        let sink = Arc::new(CaptureSink::default());
        set_sink(Some(sink.clone()));
        enable();
        {
            let mut s = span("test.span");
            s.field("answer", 42u64);
            s.field("label", "x");
        }
        event("test.point", &[("ok", FieldValue::from(true))]);
        disable();
        set_sink(None);
        let lines = sink.lines.lock().unwrap_or_else(|e| e.into_inner()).clone();
        assert_eq!(lines.len(), 3);
        assert!(
            lines[0].contains("\"ev\":\"begin\"") && lines[0].contains("\"name\":\"test.span\"")
        );
        assert!(lines[1].contains("\"ev\":\"end\"") && lines[1].contains("\"answer\":42"));
        assert!(lines[1].contains("\"label\":\"x\""));
        assert!(lines[2].contains("\"ev\":\"point\"") && lines[2].contains("\"ok\":true"));
        // begin and end carry the same span id.
        let id = |l: &str| {
            l.split("\"span\":")
                .nth(1)
                .and_then(|t| t.split(',').next())
                .map(str::to_string)
        };
        assert_eq!(id(&lines[0]), id(&lines[1]));
        assert!(id(&lines[0]).is_some());
    }

    #[test]
    fn spans_are_inert_when_disabled_or_sinkless() {
        let _g = global_lock();
        disable();
        let sink = Arc::new(CaptureSink::default());
        set_sink(Some(sink.clone()));
        {
            let mut s = span("test.noop");
            s.field("k", 1u64);
        }
        set_sink(None);
        // Enabled but no sink installed: also inert.
        enable();
        drop(span("test.noop2"));
        disable();
        assert!(sink
            .lines
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty());
    }
}
