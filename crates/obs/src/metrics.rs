//! Instrument handles and the process-global registry.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::json::{write_f64, write_str};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A monotonically increasing `u64` counter.
///
/// Handles are cheap clones of an `Arc`; resolve them once (component
/// construction) and call [`Counter::add`] on the hot path.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add `n`; a relaxed-atomic branch + `fetch_add` when enabled, the
    /// branch alone when disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` gauge (stored as bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

/// Power-of-two bucket count: 0 → bucket 0, otherwise
/// `floor(log2(v)) + 1`, so bucket `i ≥ 1` spans `[2^(i-1), 2^i - 1]`.
pub(crate) const HIST_BUCKETS: usize = 65;

#[derive(Debug)]
pub(crate) struct HistCells {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for HistCells {
    fn default() -> Self {
        HistCells {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
        }
    }
}

impl HistCells {
    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// A histogram of `u64` samples over power-of-two buckets, tracking
/// count, sum, min and max exactly.
#[derive(Debug, Clone)]
pub struct Histogram {
    cells: Arc<HistCells>,
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        let c = &*self.cells;
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }
}

/// A plain, non-atomic histogram accumulator for batched recording.
///
/// Hot loops that would otherwise hammer a shared [`Histogram`] with
/// per-event atomics accumulate into one of these (plain integer adds,
/// no contention, no `enabled()` branch per event) and merge the whole
/// batch into the global instrument at a flush point via
/// [`Histogram::merge_batch`].
#[derive(Debug, Clone)]
pub struct HistogramBatch {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for HistogramBatch {
    fn default() -> Self {
        HistogramBatch {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl HistogramBatch {
    /// An empty batch.
    pub fn new() -> Self {
        HistogramBatch::default()
    }

    /// Record one sample into the batch.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        // wraps like the atomic `fetch_add` in `Histogram::record`
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Number of samples accumulated.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether the batch holds no samples.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Empties the batch, returning what was accumulated.
    pub fn take(&mut self) -> HistogramBatch {
        std::mem::take(self)
    }
}

impl Histogram {
    /// Merge a pre-aggregated batch of samples, equivalent to having
    /// called [`Histogram::record`] for each of them. One `enabled()`
    /// branch for the whole batch; empty batches are free.
    pub fn merge_batch(&self, batch: &HistogramBatch) {
        if !crate::enabled() || batch.is_empty() {
            return;
        }
        let c = &*self.cells;
        c.count.fetch_add(batch.count, Ordering::Relaxed);
        c.sum.fetch_add(batch.sum, Ordering::Relaxed);
        c.min.fetch_min(batch.min, Ordering::Relaxed);
        c.max.fetch_max(batch.max, Ordering::Relaxed);
        for (cell, &n) in c.buckets.iter().zip(batch.buckets.iter()) {
            if n > 0 {
                cell.fetch_add(n, Ordering::Relaxed);
            }
        }
    }
}

/// Point-in-time values of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Instrument name.
    pub name: String,
    /// Number of recorded samples.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 if none recorded).
    pub min: u64,
    /// Largest sample (0 if none recorded).
    pub max: u64,
    /// Non-empty `(bucket index, count)` pairs, ascending.
    pub buckets: Vec<(u32, u64)>,
}

/// Point-in-time values of every registered instrument, sorted by name.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, f64)>,
    /// Every histogram.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Encode as the schema-stable `stacksim-obs/1` JSON document.
    ///
    /// Deterministic: instruments sort by name, keys are emitted in a
    /// fixed order, floats print with shortest-round-trip formatting.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":");
        write_str(crate::SNAPSHOT_SCHEMA, &mut out);
        out.push_str(",\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(name, &mut out);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(name, &mut out);
            out.push(':');
            write_f64(*v, &mut out);
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&h.name, &mut out);
            out.push_str(&format!(
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                h.count, h.sum, h.min, h.max
            ));
            for (j, (b, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{b},{c}]"));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// The instrument registry: name → shared cells.
///
/// Resolving a handle registers the name; the registry never forgets a
/// name ([`Registry::reset`] only zeroes values), so snapshots list
/// every instrument the process ever touched, including zeros.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistCells>>>,
}

impl Registry {
    pub(crate) fn new() -> Self {
        Registry::default()
    }

    /// Resolve (registering on first use) a counter by name.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = lock(&self.counters);
        let cell = map.entry(name.to_string()).or_default().clone();
        Counter { cell }
    }

    /// Resolve (registering on first use) a gauge by name.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = lock(&self.gauges);
        let cell = map.entry(name.to_string()).or_default().clone();
        Gauge { cell }
    }

    /// Resolve (registering on first use) a histogram by name.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = lock(&self.histograms);
        let cells = map.entry(name.to_string()).or_default().clone();
        Histogram { cells }
    }

    /// Every registered instrument name, sorted, deduplicated across
    /// kinds. Used by the lint layer to prove runtime registrations
    /// stay within the statically declared tables.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = lock(&self.counters).keys().cloned().collect();
        names.extend(lock(&self.gauges).keys().cloned());
        names.extend(lock(&self.histograms).keys().cloned());
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Zero every instrument, keeping names registered.
    pub fn reset(&self) {
        for cell in lock(&self.counters).values() {
            cell.store(0, Ordering::Relaxed);
        }
        for cell in lock(&self.gauges).values() {
            cell.store(0f64.to_bits(), Ordering::Relaxed);
        }
        for cells in lock(&self.histograms).values() {
            cells.reset();
        }
    }

    /// Capture the current value of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        let counters = lock(&self.counters)
            .iter()
            .map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed)))
            .collect();
        let gauges = lock(&self.gauges)
            .iter()
            .map(|(n, c)| (n.clone(), f64::from_bits(c.load(Ordering::Relaxed))))
            .collect();
        let histograms = lock(&self.histograms)
            .iter()
            .map(|(n, c)| {
                let count = c.count.load(Ordering::Relaxed);
                let min = c.min.load(Ordering::Relaxed);
                HistogramSnapshot {
                    name: n.clone(),
                    count,
                    sum: c.sum.load(Ordering::Relaxed),
                    min: if count == 0 { 0 } else { min },
                    max: c.max.load(Ordering::Relaxed),
                    buckets: c
                        .buckets
                        .iter()
                        .enumerate()
                        .filter_map(|(i, b)| {
                            let v = b.load(Ordering::Relaxed);
                            (v > 0).then_some((i as u32, v))
                        })
                        .collect(),
                }
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indices_are_log2_plus_one() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn batch_merge_equals_individual_records() {
        let _g = crate::tests::global_lock();
        crate::reset();
        crate::enable();
        let direct = crate::histogram("test.batch_direct");
        let merged = crate::histogram("test.batch_merged");
        let mut batch = HistogramBatch::new();
        for v in [0u64, 1, 5, 5, 1024, u64::MAX] {
            direct.record(v);
            batch.record(v);
        }
        merged.merge_batch(&batch);
        crate::disable();
        let snap = crate::registry().snapshot();
        let find = |name: &str| {
            snap.histograms
                .iter()
                .find(|h| h.name == name)
                .cloned()
                .unwrap()
        };
        let (mut d, mut m) = (find("test.batch_direct"), find("test.batch_merged"));
        d.name.clear();
        m.name.clear();
        assert_eq!(d, m);
        assert_eq!(m.count, 6);
    }

    #[test]
    fn empty_batch_take_and_merge_are_noops() {
        let mut batch = HistogramBatch::new();
        assert!(batch.is_empty());
        batch.record(3);
        let taken = batch.take();
        assert!(batch.is_empty());
        assert_eq!(taken.count(), 1);
    }

    #[test]
    fn snapshot_encodes_deterministically() {
        let snap = Snapshot {
            counters: vec![("a.one".into(), 1), ("b.two".into(), 2)],
            gauges: vec![("g.x".into(), 0.5)],
            histograms: vec![HistogramSnapshot {
                name: "h.y".into(),
                count: 2,
                sum: 5,
                min: 1,
                max: 4,
                buckets: vec![(1, 1), (3, 1)],
            }],
        };
        assert_eq!(
            snap.encode(),
            "{\"schema\":\"stacksim-obs/1\",\"counters\":{\"a.one\":1,\"b.two\":2},\
             \"gauges\":{\"g.x\":0.5},\"histograms\":{\"h.y\":{\"count\":2,\"sum\":5,\
             \"min\":1,\"max\":4,\"buckets\":[[1,1],[3,1]]}}}"
        );
    }
}
