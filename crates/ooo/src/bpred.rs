//! A gshare branch predictor.
//!
//! The workload generator emits architectural branch outcomes; the
//! simulator runs this predictor at fetch to decide which dynamic branches
//! mispredict, so predictability emerges from the outcome *patterns*
//! rather than a fixed rate.

/// A gshare predictor: a table of 2-bit counters indexed by
/// `ip ⊕ global history`.
#[derive(Debug, Clone)]
pub struct Gshare {
    counters: Vec<u8>,
    history: u64,
    bits: u32,
    history_bits: u32,
    predictions: u64,
    mispredictions: u64,
}

impl Gshare {
    /// Creates a predictor with `2^bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or more than 24.
    pub fn new(bits: u32) -> Self {
        Self::with_history(bits, bits)
    }

    /// Creates a predictor with `2^bits` counters but only `history_bits`
    /// of global history folded into the index. Shorter histories warm up
    /// faster and tolerate outcome noise; `history_bits = 0` degenerates to
    /// a per-IP bimodal predictor.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or more than 24, or `history_bits > bits`.
    pub fn with_history(bits: u32, history_bits: u32) -> Self {
        assert!(bits > 0 && bits <= 24, "predictor size must be 1..=24 bits");
        assert!(
            history_bits <= bits,
            "history cannot exceed the index width"
        );
        Gshare {
            counters: vec![1; 1 << bits], // weakly not-taken
            history: 0,
            bits,
            history_bits,
            predictions: 0,
            mispredictions: 0,
        }
    }

    fn index(&self, ip: u64) -> usize {
        let hist = if self.history_bits == 0 {
            0
        } else {
            self.history & ((1 << self.history_bits) - 1)
        };
        ((ip >> 2) ^ hist) as usize & ((1 << self.bits) - 1)
    }

    /// Predicts and then trains on the actual outcome; returns whether the
    /// prediction was correct.
    pub fn predict_and_train(&mut self, ip: u64, taken: bool) -> bool {
        let idx = self.index(ip);
        let predicted = self.counters[idx] >= 2;
        let counter = &mut self.counters[idx];
        if taken {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
        self.history = (self.history << 1) | u64::from(taken);
        self.predictions += 1;
        let correct = predicted == taken;
        if !correct {
            self.mispredictions += 1;
        }
        correct
    }

    /// Fraction of predictions that were wrong (0 before any prediction).
    pub fn misprediction_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }

    /// Total predictions made.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_constant_branch() {
        let mut p = Gshare::new(10);
        for _ in 0..2000 {
            p.predict_and_train(0x400, true);
        }
        // only history warm-up misses: each fresh history value trains once
        assert!(
            p.misprediction_rate() < 0.02,
            "rate {}",
            p.misprediction_rate()
        );
    }

    #[test]
    fn learns_a_short_pattern() {
        // taken-taken-not pattern is history-predictable
        let mut p = Gshare::new(12);
        for i in 0..3000u64 {
            p.predict_and_train(0x400, i % 3 != 2);
        }
        assert!(
            p.misprediction_rate() < 0.15,
            "rate {}",
            p.misprediction_rate()
        );
    }

    #[test]
    fn struggles_on_random_outcomes() {
        let mut p = Gshare::new(12);
        // xorshift pseudo-random outcomes
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut mis = 0;
        let n = 10_000;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if !p.predict_and_train(0x400, x & 1 == 1) {
                mis += 1;
            }
        }
        let rate = mis as f64 / n as f64;
        assert!(rate > 0.3, "random branches should hurt: {rate}");
    }

    #[test]
    fn distinct_ips_do_not_fully_alias() {
        let mut p = Gshare::new(14);
        for _ in 0..2000 {
            p.predict_and_train(0x400, true);
            p.predict_and_train(0x800, false);
        }
        assert!(
            p.misprediction_rate() < 0.15,
            "rate {}",
            p.misprediction_rate()
        );
    }

    #[test]
    #[should_panic(expected = "predictor size")]
    fn zero_bits_panics() {
        let _ = Gshare::new(0);
    }
}
