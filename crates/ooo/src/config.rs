//! Machine description: core resources, latencies and the Table-4 wire
//! paths.

/// Extra pipe stages attributable to wire delay on each of the ten
/// functional paths of Table 4. The planar machine carries the full stage
/// counts; the 3D floorplan of Fig. 10 eliminates the fraction listed in
/// Table 4 ("% of Stages Eliminated").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireConfig {
    /// Front-end pipeline stages (fetch/decode hand-offs).
    pub front_end: u32,
    /// Trace-cache read stages.
    pub trace_cache: u32,
    /// Rename/allocation stages.
    pub rename_alloc: u32,
    /// Extra FP source-operand bypass cycles: the planar floorplan routes
    /// FP register reads across the SIMD unit (Fig. 9), costing all FP
    /// instructions two cycles.
    pub fp_bypass: u32,
    /// Integer register-file read stages.
    pub int_rf_read: u32,
    /// Data-cache read stages (part of load-to-use).
    pub dcache_read: u32,
    /// Instruction-loop stages: branch resolve back to refetch.
    pub instruction_loop: u32,
    /// Retire-to-deallocation lag: cycles after retirement before an ROB
    /// entry is recycled.
    pub retire_dealloc: u32,
    /// Extra stages on FP loads (D$ to the FP register file).
    pub fp_load: u32,
    /// Post-retirement store lifetime: cycles a retired store occupies its
    /// store-queue entry before the entry is recycled.
    pub store_lifetime: u32,
}

impl WireConfig {
    /// The planar Fig. 9 machine's wire stages.
    pub fn planar() -> Self {
        WireConfig {
            front_end: 8,
            trace_cache: 5,
            rename_alloc: 8,
            fp_bypass: 2,
            int_rf_read: 8,
            dcache_read: 4,
            instruction_loop: 18,
            retire_dealloc: 20,
            fp_load: 6,
            store_lifetime: 48,
        }
    }

    /// The 3D floorplan of Fig. 10: each path loses the Table-4 fraction of
    /// its stages (front-end 12.5%, trace cache 20%, rename 25%, FP bypass
    /// eliminated, int RF read 25%, D$ read 25%, instruction loop 17%,
    /// retire-dealloc 20%, FP load 35%, store lifetime 30%).
    pub fn folded_3d() -> Self {
        WireConfig {
            front_end: 7,         // -12.5%
            trace_cache: 4,       // -20%
            rename_alloc: 6,      // -25%
            fp_bypass: 0,         // the Fig. 10 stack removes both cycles
            int_rf_read: 6,       // -25%
            dcache_read: 3,       // -25%
            instruction_loop: 15, // -17%
            retire_dealloc: 16,   // -20%
            fp_load: 4,           // -35% (rounded)
            store_lifetime: 34,   // -30%
        }
    }

    /// Total wire stages across all paths (the Table 4 "~25%" bookkeeping).
    pub fn total_stages(&self) -> u32 {
        self.front_end
            + self.trace_cache
            + self.rename_alloc
            + self.fp_bypass
            + self.int_rf_read
            + self.dcache_read
            + self.instruction_loop
            + self.retire_dealloc
            + self.fp_load
            + self.store_lifetime
    }

    /// The branch misprediction redirect penalty implied by the wire
    /// stages: resolve → refetch → re-deliver through the front of the
    /// machine. Added to [`CoreConfig::base_redirect`].
    pub fn redirect_stages(&self) -> u32 {
        self.instruction_loop
            + self.front_end
            + self.trace_cache
            + self.rename_alloc
            + self.int_rf_read
    }
}

/// Core resources and base latencies (a deeply pipelined Pentium 4–class
/// single-threaded machine).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Uops renamed/dispatched per cycle.
    pub rename_width: u32,
    /// Uops issued to execution per cycle.
    pub issue_width: u32,
    /// Uops retired per cycle.
    pub retire_width: u32,
    /// Reorder-buffer capacity.
    pub rob: usize,
    /// Scheduler (reservation-station) capacity.
    pub rs: usize,
    /// Store-queue capacity.
    pub store_queue: usize,
    /// Physical-register / completion-resource pool: allocated at rename,
    /// recycled `retire_dealloc` cycles after retirement (the "post
    /// completion resource recovery" of §4).
    pub phys_regs: usize,
    /// Integer ALUs.
    pub int_units: u32,
    /// FP units.
    pub fp_units: u32,
    /// SIMD units.
    pub simd_units: u32,
    /// Load/store ports.
    pub mem_ports: u32,
    /// Integer op latency.
    pub int_latency: u32,
    /// FP op latency (before the fp_bypass wire adder).
    pub fp_latency: u32,
    /// SIMD op latency.
    pub simd_latency: u32,
    /// L1 load-to-use latency before the dcache_read wire adder.
    pub l1_latency: u32,
    /// L2 hit latency.
    pub l2_latency: u32,
    /// Main-memory latency.
    pub mem_latency: u32,
    /// Redirect penalty floor (in addition to the wire stages).
    pub base_redirect: u32,
    /// Wire-delay stage configuration.
    pub wire: WireConfig,
}

impl CoreConfig {
    /// The planar baseline machine.
    pub fn planar() -> Self {
        CoreConfig {
            rename_width: 3,
            issue_width: 6,
            retire_width: 3,
            rob: 64,
            rs: 48,
            store_queue: 10,
            phys_regs: 34,
            int_units: 3,
            fp_units: 1,
            simd_units: 1,
            mem_ports: 2,
            int_latency: 1,
            fp_latency: 5,
            simd_latency: 3,
            l1_latency: 2,
            l2_latency: 18,
            mem_latency: 300,
            base_redirect: 4,
            wire: WireConfig::planar(),
        }
    }

    /// The same machine with the Fig. 10 3D wire configuration.
    pub fn folded_3d() -> Self {
        CoreConfig {
            wire: WireConfig::folded_3d(),
            ..Self::planar()
        }
    }

    /// Full branch misprediction penalty in cycles.
    pub fn redirect_penalty(&self) -> u32 {
        self.base_redirect + self.wire.redirect_stages()
    }

    /// Load-to-use latency for a given hit level, including wire stages.
    pub fn load_latency(&self, level: crate::uop::MemLevel, fp: bool) -> u32 {
        let base = match level {
            crate::uop::MemLevel::L1 => self.l1_latency,
            crate::uop::MemLevel::L2 => self.l1_latency + self.l2_latency,
            crate::uop::MemLevel::Memory => self.l1_latency + self.l2_latency + self.mem_latency,
        };
        let wire = self.wire.dcache_read + if fp { self.wire.fp_load } else { 0 };
        base + wire
    }

    /// Execution latency of an FP op including the bypass detour.
    pub fn fp_op_latency(&self) -> u32 {
        self.fp_latency + self.wire.fp_bypass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uop::MemLevel;

    #[test]
    fn planar_redirect_penalty_exceeds_30_cycles() {
        // §4: "a branch miss-prediction penalty of more than 30 clock cycles"
        let c = CoreConfig::planar();
        assert!(
            c.redirect_penalty() > 30,
            "penalty {}",
            c.redirect_penalty()
        );
    }

    #[test]
    fn folded_penalty_is_smaller() {
        let p = CoreConfig::planar();
        let f = CoreConfig::folded_3d();
        assert!(f.redirect_penalty() < p.redirect_penalty());
    }

    #[test]
    fn about_a_quarter_of_wire_stages_disappear() {
        let p = WireConfig::planar().total_stages();
        let f = WireConfig::folded_3d().total_stages();
        let eliminated = 1.0 - f as f64 / p as f64;
        assert!((eliminated - 0.25).abs() < 0.05, "eliminated {eliminated}");
    }

    #[test]
    fn load_latency_composition() {
        let c = CoreConfig::planar();
        assert_eq!(c.load_latency(MemLevel::L1, false), 2 + 4);
        assert_eq!(c.load_latency(MemLevel::L1, true), 2 + 4 + 6);
        assert_eq!(c.load_latency(MemLevel::L2, false), 2 + 18 + 4);
        assert!(c.load_latency(MemLevel::Memory, false) > 300);
    }

    #[test]
    fn fp_op_pays_the_bypass_detour_only_when_planar() {
        assert_eq!(CoreConfig::planar().fp_op_latency(), 7);
        assert_eq!(CoreConfig::folded_3d().fp_op_latency(), 5);
    }
}
