//! Cycle-level deeply pipelined out-of-order core simulator.
//!
//! Reproduces the Logic+Logic evaluation infrastructure of §2.2 and §4 of
//! *Die Stacking (3D) Microarchitecture* (Black et al., MICRO 2006): a
//! Pentium 4–class single-threaded performance model that "accurately
//! models the wire delays due to block interconnections", with every
//! Table-4 wire path exposed as a runtime stage-count parameter.
//!
//! * [`config`] — core resources and the planar / folded-3D
//!   [`WireConfig`]s.
//! * [`workload`] — synthetic uop streams for the eight application
//!   classes the paper's >650 traces span.
//! * [`bpred`] — the gshare predictor that decides which dynamic branches
//!   redirect the deep pipeline.
//! * [`pipeline`] — the cycle model (rename/ROB/scheduler/FUs/retire with
//!   post-retirement store lifetime and delayed deallocation).
//! * [`wire`] — the ten Table-4 paths as single-change experiment handles.
//!
//! # Example
//!
//! ```
//! use stacksim_ooo::{CoreConfig, Simulator, WorkloadClass};
//!
//! let uops = WorkloadClass::SpecFp.generate(5_000, 1);
//! let planar = Simulator::new(CoreConfig::planar()).run(&uops);
//! let folded = Simulator::new(CoreConfig::folded_3d()).run(&uops);
//! assert!(folded.ipc() >= planar.ipc());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bpred;
pub mod config;
pub mod pipeline;
pub mod uop;
pub mod wire;
pub mod workload;

pub use bpred::Gshare;
pub use config::{CoreConfig, WireConfig};
pub use pipeline::{SimStats, Simulator};
pub use uop::{MemLevel, Uop, UopKind};
pub use wire::WirePath;
pub use workload::{suite, MixProfile, WorkloadClass};
