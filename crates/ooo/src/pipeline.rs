//! The cycle-level pipeline model.
//!
//! A deeply pipelined out-of-order machine in the style of the paper's
//! product simulator: trace-cache front end with a gshare predictor,
//! rename/dispatch into an ROB + scheduler, per-class functional units,
//! load latencies by hit level, in-order retirement, and — crucially for
//! Table 4 — wire-delay stages as first-class latency parameters: redirect
//! depth, FP bypass, D$ read, FP load delivery, post-retirement store
//! lifetime and retire-to-deallocation lag.
//!
//! Mispredicted branches stall rename until they resolve and the redirect
//! penalty elapses (the standard stall-at-mispredict approximation for
//! trace-driven correct-path simulation).

use std::collections::VecDeque;

use crate::bpred::Gshare;
use crate::config::CoreConfig;
use crate::uop::{Uop, UopKind};

/// Results of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimStats {
    /// Total cycles elapsed.
    pub cycles: u64,
    /// Uops retired.
    pub uops: u64,
    /// Branch mispredictions (redirects taken).
    pub redirects: u64,
    /// Cycles rename was blocked because the ROB was full.
    pub rob_stall_cycles: u64,
    /// Cycles rename was blocked because the scheduler was full.
    pub rs_stall_cycles: u64,
    /// Cycles rename was blocked because the store queue was full.
    pub sq_stall_cycles: u64,
    /// Cycles rename was blocked because the register pool was empty.
    pub reg_stall_cycles: u64,
    /// Cycles rename was blocked waiting on a mispredicted branch.
    pub redirect_stall_cycles: u64,
    /// Predictor misprediction rate over the run.
    pub mispredict_rate: f64,
}

impl SimStats {
    /// Retired uops per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.uops as f64 / self.cycles as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    /// Index into the uop stream.
    global: usize,
    issued: bool,
    /// Completion cycle once issued.
    complete: Option<u64>,
    /// Whether this is the mispredicted branch rename is waiting on.
    blocking_branch: bool,
}

/// The simulator. Construct once per configuration and run uop streams.
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: CoreConfig,
}

impl Simulator {
    /// Creates a simulator for a machine configuration.
    pub fn new(cfg: CoreConfig) -> Self {
        Simulator { cfg }
    }

    /// The machine configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Runs the uop stream to completion and reports statistics.
    ///
    /// # Panics
    ///
    /// Panics if the stream is empty.
    pub fn run(&self, uops: &[Uop]) -> SimStats {
        assert!(!uops.is_empty(), "cannot simulate an empty uop stream");
        let cfg = &self.cfg;
        let n = uops.len();

        let mut predictor = Gshare::with_history(14, 6);
        // completion cycle of every uop (usable after its producer leaves
        // the ROB as well)
        let mut complete_at: Vec<u64> = vec![u64::MAX; n];

        let mut rob: VecDeque<RobEntry> = VecDeque::with_capacity(cfg.rob);
        // entries occupied but waiting for delayed deallocation
        let mut rob_pending_free: VecDeque<u64> = VecDeque::new();
        let mut rob_occupancy: usize = 0;
        let mut sq_pending_free: VecDeque<u64> = VecDeque::new();
        let mut sq_occupancy: usize = 0;
        let mut rs_occupancy: usize = 0;
        let mut reg_pending_free: VecDeque<u64> = VecDeque::new();
        let mut reg_occupancy: usize = 0;

        let mut next_rename: usize = 0; // next uop to rename
        let mut fetch_ready_at: u64 = u64::from(cfg.wire.front_end + cfg.wire.trace_cache);
        let mut waiting_redirect = false;

        let mut now: u64 = 0;
        let mut retired: usize = 0;
        let mut stats = SimStats {
            cycles: 0,
            uops: n as u64,
            redirects: 0,
            rob_stall_cycles: 0,
            rs_stall_cycles: 0,
            sq_stall_cycles: 0,
            reg_stall_cycles: 0,
            redirect_stall_cycles: 0,
            mispredict_rate: 0.0,
        };

        while retired < n {
            // ---- release delayed ROB / SQ slots ----
            while rob_pending_free.front().is_some_and(|&t| t <= now) {
                rob_pending_free.pop_front();
                rob_occupancy -= 1;
            }
            while sq_pending_free.front().is_some_and(|&t| t <= now) {
                sq_pending_free.pop_front();
                sq_occupancy -= 1;
            }
            while reg_pending_free.front().is_some_and(|&t| t <= now) {
                reg_pending_free.pop_front();
                reg_occupancy -= 1;
            }

            // ---- retire (in order) ----
            let mut n_retire = 0;
            while n_retire < cfg.retire_width {
                let Some(head) = rob.front() else { break };
                let Some(c) = head.complete else { break };
                if c > now {
                    break;
                }
                let Some(e) = rob.pop_front() else { break };
                // the ROB slot and the result register recycle after the
                // retire-to-dealloc lag
                rob_pending_free.push_back(now + u64::from(cfg.wire.retire_dealloc));
                if !uops[e.global].kind.is_store() && !uops[e.global].kind.is_branch() {
                    reg_pending_free.push_back(now + u64::from(cfg.wire.retire_dealloc));
                }
                if uops[e.global].kind.is_store() {
                    // the SQ entry lives on past retirement
                    sq_pending_free.push_back(now + u64::from(cfg.wire.store_lifetime));
                }
                retired += 1;
                n_retire += 1;
            }

            // ---- issue ----
            let mut int_left = cfg.int_units;
            let mut fp_left = cfg.fp_units;
            let mut simd_left = cfg.simd_units;
            let mut mem_left = cfg.mem_ports;
            let mut issue_left = cfg.issue_width;
            for e in rob.iter_mut() {
                if issue_left == 0 {
                    break;
                }
                if e.issued {
                    continue;
                }
                let u = &uops[e.global];
                // operand readiness: producers must have completed
                let ready = [u.src1, u.src2].into_iter().flatten().all(|d| {
                    let p = e.global - d as usize;
                    complete_at[p] <= now
                });
                if !ready {
                    continue;
                }
                let (unit, latency) = match u.kind {
                    UopKind::Int => (&mut int_left, cfg.int_latency),
                    UopKind::Branch { .. } => (&mut int_left, cfg.int_latency),
                    UopKind::Fp => (&mut fp_left, cfg.fp_op_latency()),
                    UopKind::Simd => (&mut simd_left, cfg.simd_latency),
                    UopKind::Load => (&mut mem_left, cfg.load_latency(u.mem_level, false)),
                    UopKind::FpLoad => (&mut mem_left, cfg.load_latency(u.mem_level, true)),
                    UopKind::Store => (&mut mem_left, cfg.int_latency),
                };
                if *unit == 0 {
                    continue;
                }
                *unit -= 1;
                issue_left -= 1;
                e.issued = true;
                rs_occupancy -= 1;
                let done = now + u64::from(latency);
                e.complete = Some(done);
                complete_at[e.global] = done;
                if e.blocking_branch {
                    // redirect: the front end restarts after the branch
                    // resolves plus the full refetch pipeline
                    fetch_ready_at = done + u64::from(cfg.redirect_penalty());
                    stats.redirects += 1;
                }
            }

            // ---- rename / dispatch ----
            if waiting_redirect {
                if now >= fetch_ready_at {
                    waiting_redirect = false;
                } else {
                    stats.redirect_stall_cycles += 1;
                }
            }
            if !waiting_redirect && now >= fetch_ready_at {
                let mut width = cfg.rename_width;
                while width > 0 && next_rename < n {
                    if rob_occupancy >= cfg.rob {
                        stats.rob_stall_cycles += 1;
                        break;
                    }
                    if rs_occupancy >= cfg.rs {
                        stats.rs_stall_cycles += 1;
                        break;
                    }
                    let u = &uops[next_rename];
                    if u.kind.is_store() && sq_occupancy >= cfg.store_queue {
                        stats.sq_stall_cycles += 1;
                        break;
                    }
                    let needs_reg = !u.kind.is_store() && !u.kind.is_branch();
                    if needs_reg && reg_occupancy >= cfg.phys_regs {
                        stats.reg_stall_cycles += 1;
                        break;
                    }
                    let mut blocking = false;
                    if let UopKind::Branch { taken } = u.kind {
                        let correct = predictor.predict_and_train(u.ip, taken);
                        if !correct {
                            blocking = true;
                        }
                    }
                    rob.push_back(RobEntry {
                        global: next_rename,
                        issued: false,
                        complete: None,
                        blocking_branch: blocking,
                    });
                    rob_occupancy += 1;
                    rs_occupancy += 1;
                    if u.kind.is_store() {
                        sq_occupancy += 1;
                    }
                    if needs_reg {
                        reg_occupancy += 1;
                    }
                    next_rename += 1;
                    width -= 1;
                    if blocking {
                        // stop renaming past the mispredicted branch until
                        // it resolves and the redirect penalty elapses
                        waiting_redirect = true;
                        fetch_ready_at = u64::MAX; // set at branch issue
                        break;
                    }
                }
            }

            now += 1;
            // safety: a stuck simulation is a bug, not an infinite loop
            assert!(
                now < (n as u64 + 10_000) * 2_000,
                "simulation wedged at cycle {now} with {retired}/{n} retired"
            );
        }

        stats.cycles = now;
        stats.mispredict_rate = predictor.misprediction_rate();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uop::MemLevel;

    fn sim() -> Simulator {
        Simulator::new(CoreConfig::planar())
    }

    fn ints(n: usize) -> Vec<Uop> {
        (0..n).map(|_| Uop::nop()).collect()
    }

    #[test]
    fn independent_ints_reach_rename_width() {
        // sustained IPC for register-consuming uops is capped by the
        // completion-resource pool over the dealloc lag (34/20 = 1.7)
        let s = sim().run(&ints(30_000));
        let ipc = s.ipc();
        assert!(ipc > 1.4 && ipc <= 1.75, "ipc {ipc}");
        assert_eq!(s.redirects, 0);
        assert!(s.reg_stall_cycles > 0, "the pool is the binding resource");
    }

    #[test]
    fn serial_chain_runs_at_one_per_cycle() {
        let uops: Vec<Uop> = (0..10_000)
            .map(|i| Uop {
                src1: if i > 0 { Some(1) } else { None },
                ..Uop::nop()
            })
            .collect();
        let s = sim().run(&uops);
        let ipc = s.ipc();
        assert!(ipc > 0.9 && ipc <= 1.01, "serial ints: ipc {ipc}");
    }

    #[test]
    fn fp_chain_is_limited_by_fp_latency() {
        let uops: Vec<Uop> = (0..5_000)
            .map(|i| Uop {
                kind: UopKind::Fp,
                src1: if i > 0 { Some(1) } else { None },
                ..Uop::nop()
            })
            .collect();
        let planar = sim().run(&uops).ipc();
        // planar FP latency 5 + 2 bypass = 7 cycles per op
        assert!(
            (1.0 / planar - 7.0).abs() < 0.3,
            "planar fp chain cpi {}",
            1.0 / planar
        );
        let folded = Simulator::new(CoreConfig::folded_3d()).run(&uops).ipc();
        assert!(
            (1.0 / folded - 5.0).abs() < 0.3,
            "3d fp chain cpi {}",
            1.0 / folded
        );
    }

    #[test]
    fn memory_misses_fill_the_rob() {
        let uops: Vec<Uop> = (0..3_000)
            .map(|i| {
                if i % 100 == 0 {
                    Uop {
                        kind: UopKind::Load,
                        mem_level: MemLevel::Memory,
                        ..Uop::nop()
                    }
                } else {
                    Uop::nop()
                }
            })
            .collect();
        let s = sim().run(&uops);
        assert!(
            s.rob_stall_cycles + s.reg_stall_cycles > 0,
            "long misses must back up the window"
        );
        assert!(s.ipc() < 1.5, "ipc {}", s.ipc());
    }

    #[test]
    fn predictable_branches_cost_little() {
        let uops: Vec<Uop> = (0..20_000)
            .map(|i| {
                if i % 5 == 0 {
                    Uop {
                        kind: UopKind::Branch { taken: true },
                        ip: 0x400,
                        ..Uop::nop()
                    }
                } else {
                    Uop::nop()
                }
            })
            .collect();
        let s = sim().run(&uops);
        assert!(s.mispredict_rate < 0.05, "always-taken is predictable");
        assert!(s.ipc() > 1.5, "ipc {}", s.ipc());
    }

    #[test]
    fn random_branches_cause_redirect_stalls() {
        let mut x = 12345u64;
        let uops: Vec<Uop> = (0..20_000)
            .map(|i| {
                if i % 5 == 0 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    Uop {
                        kind: UopKind::Branch { taken: x & 1 == 1 },
                        ip: 0x400,
                        ..Uop::nop()
                    }
                } else {
                    Uop::nop()
                }
            })
            .collect();
        let s = sim().run(&uops);
        assert!(s.redirects > 500, "redirects {}", s.redirects);
        assert!(
            s.redirect_stall_cycles > s.cycles / 4,
            "deep pipeline hurts"
        );
        // the shallower 3D pipeline recovers faster
        let s3 = Simulator::new(CoreConfig::folded_3d()).run(&uops);
        assert!(s3.cycles < s.cycles, "{} < {}", s3.cycles, s.cycles);
    }

    #[test]
    fn store_bursts_hit_the_store_queue() {
        let uops: Vec<Uop> = (0..20_000)
            .map(|i| {
                if i % 3 != 0 {
                    Uop {
                        kind: UopKind::Store,
                        ..Uop::nop()
                    }
                } else {
                    Uop::nop()
                }
            })
            .collect();
        let s = sim().run(&uops);
        assert!(
            s.sq_stall_cycles > 0,
            "store-dense code must pressure the SQ"
        );
        // shorter post-retirement lifetime relieves the pressure
        let s3 = Simulator::new(CoreConfig::folded_3d()).run(&uops);
        assert!(s3.sq_stall_cycles < s.sq_stall_cycles);
        assert!(s3.cycles < s.cycles);
    }

    #[test]
    fn folded_machine_is_never_slower_on_the_suite() {
        use crate::workload::WorkloadClass;
        for class in WorkloadClass::all() {
            let uops = class.generate(20_000, 42);
            let p = sim().run(&uops);
            let f = Simulator::new(CoreConfig::folded_3d()).run(&uops);
            assert!(
                f.cycles <= p.cycles,
                "{}: 3D {} vs planar {}",
                class.name(),
                f.cycles,
                p.cycles
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty uop stream")]
    fn empty_stream_panics() {
        let _ = sim().run(&[]);
    }
}
