//! Micro-operations: the unit of work in the pipeline model.

/// Which memory level a load finds its data in (decided by the workload
/// generator, which plays the role of the cache model the product
/// simulator's traces embedded).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemLevel {
    /// L1 data cache hit.
    L1,
    /// L2 hit.
    L2,
    /// Main memory.
    Memory,
}

/// Micro-op kinds, mapped to functional-unit classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UopKind {
    /// Integer ALU operation.
    Int,
    /// Scalar floating-point operation (takes the RF→FP wire path).
    Fp,
    /// SIMD operation.
    Simd,
    /// Integer-side load.
    Load,
    /// Floating-point load (takes the extra FP-load wire path).
    FpLoad,
    /// Store.
    Store,
    /// Conditional branch with its architectural outcome.
    Branch {
        /// Whether the branch is actually taken.
        taken: bool,
    },
}

impl UopKind {
    /// Whether this uop reads memory.
    pub fn is_load(self) -> bool {
        matches!(self, UopKind::Load | UopKind::FpLoad)
    }

    /// Whether this uop writes memory.
    pub fn is_store(self) -> bool {
        matches!(self, UopKind::Store)
    }

    /// Whether this uop is a branch.
    pub fn is_branch(self) -> bool {
        matches!(self, UopKind::Branch { .. })
    }

    /// Whether this uop executes on the FP side.
    pub fn is_fp(self) -> bool {
        matches!(self, UopKind::Fp | UopKind::FpLoad)
    }
}

/// One micro-operation. Sources are given as backwards distances in the
/// dynamic uop stream (`1` = the immediately preceding uop); the pipeline
/// resolves them to in-flight producers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Uop {
    /// Kind / functional-unit class.
    pub kind: UopKind,
    /// Instruction pointer (used by the branch predictor).
    pub ip: u64,
    /// First source operand, as a backwards distance.
    pub src1: Option<u32>,
    /// Second source operand, as a backwards distance.
    pub src2: Option<u32>,
    /// Where a load finds its data (ignored for non-loads).
    pub mem_level: MemLevel,
}

impl Uop {
    /// A source-less integer uop at ip 0 (convenient in tests).
    pub fn nop() -> Self {
        Uop {
            kind: UopKind::Int,
            ip: 0,
            src1: None,
            src2: None,
            mem_level: MemLevel::L1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_classification() {
        assert!(UopKind::Load.is_load());
        assert!(UopKind::FpLoad.is_load());
        assert!(UopKind::FpLoad.is_fp());
        assert!(UopKind::Store.is_store());
        assert!(UopKind::Branch { taken: true }.is_branch());
        assert!(!UopKind::Int.is_load());
        assert!(UopKind::Fp.is_fp());
        assert!(!UopKind::Simd.is_fp());
    }

    #[test]
    fn nop_is_independent() {
        let u = Uop::nop();
        assert_eq!(u.src1, None);
        assert_eq!(u.src2, None);
        assert_eq!(u.kind, UopKind::Int);
    }
}
