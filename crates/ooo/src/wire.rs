//! The ten Table-4 wire paths as first-class experiment handles.

use crate::config::WireConfig;

/// One functional path of Table 4 whose pipe stages the 3D floorplan
/// shortens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WirePath {
    /// Front-end pipeline (12.5% of stages eliminated).
    FrontEnd,
    /// Trace cache read (20%).
    TraceCache,
    /// Rename allocation (25%).
    RenameAlloc,
    /// FP instruction latency (variable; the RF–SIMD–FP detour).
    FpLatency,
    /// Integer register file read (25%).
    IntRfRead,
    /// Data cache read (25%).
    DcacheRead,
    /// Instruction loop (17%).
    InstructionLoop,
    /// Retire to de-allocation (20%).
    RetireDealloc,
    /// FP load latency (35%).
    FpLoad,
    /// Store lifetime (30%).
    StoreLifetime,
}

impl WirePath {
    /// All ten paths in Table 4's row order.
    pub fn all() -> [WirePath; 10] {
        use WirePath::*;
        [
            FrontEnd,
            TraceCache,
            RenameAlloc,
            FpLatency,
            IntRfRead,
            DcacheRead,
            InstructionLoop,
            RetireDealloc,
            FpLoad,
            StoreLifetime,
        ]
    }

    /// Table 4's "Functionality" label.
    pub fn name(&self) -> &'static str {
        match self {
            WirePath::FrontEnd => "Front-end pipeline",
            WirePath::TraceCache => "Trace cache read",
            WirePath::RenameAlloc => "Rename allocation",
            WirePath::FpLatency => "FP inst. latency",
            WirePath::IntRfRead => "Int register file read",
            WirePath::DcacheRead => "Data cache read",
            WirePath::InstructionLoop => "Instruction loop",
            WirePath::RetireDealloc => "Retire to de-allocation",
            WirePath::FpLoad => "FP load latency",
            WirePath::StoreLifetime => "Store lifetime",
        }
    }

    /// Table 4's "% of Stages Eliminated" column.
    pub fn paper_stage_reduction(&self) -> &'static str {
        match self {
            WirePath::FrontEnd => "12.5%",
            WirePath::TraceCache => "20%",
            WirePath::RenameAlloc => "25%",
            WirePath::FpLatency => "Variable",
            WirePath::IntRfRead => "25%",
            WirePath::DcacheRead => "25%",
            WirePath::InstructionLoop => "17%",
            WirePath::RetireDealloc => "20%",
            WirePath::FpLoad => "35%",
            WirePath::StoreLifetime => "30%",
        }
    }

    /// Table 4's reported performance gain, in percent.
    pub fn paper_gain_pct(&self) -> f64 {
        match self {
            WirePath::FrontEnd => 0.2,
            WirePath::TraceCache => 0.33,
            WirePath::RenameAlloc => 0.66,
            WirePath::FpLatency => 4.0,
            WirePath::IntRfRead => 0.5,
            WirePath::DcacheRead => 1.5,
            WirePath::InstructionLoop => 1.0,
            WirePath::RetireDealloc => 1.0,
            WirePath::FpLoad => 2.0,
            WirePath::StoreLifetime => 3.0,
        }
    }

    /// Applies only this path's 3D improvement to a wire configuration,
    /// leaving every other path planar — the per-row Table 4 experiment.
    pub fn apply(&self, base: WireConfig) -> WireConfig {
        let d3 = WireConfig::folded_3d();
        let mut w = base;
        match self {
            WirePath::FrontEnd => w.front_end = d3.front_end,
            WirePath::TraceCache => w.trace_cache = d3.trace_cache,
            WirePath::RenameAlloc => w.rename_alloc = d3.rename_alloc,
            WirePath::FpLatency => w.fp_bypass = d3.fp_bypass,
            WirePath::IntRfRead => w.int_rf_read = d3.int_rf_read,
            WirePath::DcacheRead => w.dcache_read = d3.dcache_read,
            WirePath::InstructionLoop => w.instruction_loop = d3.instruction_loop,
            WirePath::RetireDealloc => w.retire_dealloc = d3.retire_dealloc,
            WirePath::FpLoad => w.fp_load = d3.fp_load,
            WirePath::StoreLifetime => w.store_lifetime = d3.store_lifetime,
        }
        w
    }
}

impl std::fmt::Display for WirePath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applying_all_paths_reaches_the_3d_config() {
        let mut w = WireConfig::planar();
        for p in WirePath::all() {
            w = p.apply(w);
        }
        assert_eq!(w, WireConfig::folded_3d());
    }

    #[test]
    fn each_path_changes_exactly_one_field() {
        let planar = WireConfig::planar();
        for p in WirePath::all() {
            let w = p.apply(planar);
            assert_ne!(w, planar, "{p} must change something");
            // applying twice is idempotent
            assert_eq!(p.apply(w), w);
        }
    }

    #[test]
    fn paper_gains_total_about_15_percent() {
        let total: f64 = WirePath::all().iter().map(|p| p.paper_gain_pct()).sum();
        assert!(
            (total - 14.19).abs() < 0.5,
            "Table 4 rows sum to ~15%: {total}"
        );
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> =
            WirePath::all().iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 10);
    }
}
